#include "supervisor/supervisor.hpp"

#include <algorithm>
#include <limits>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>

#include "bench/gate_batch_runner.hpp"
#include "core/ga_core.hpp"
#include "mem/ga_memory.hpp"
#include "prng/rng_module.hpp"
#include "rtl/scan.hpp"
#include "system/ga_system.hpp"

namespace gaip::supervisor {

namespace {

using core::GaCore;

/// Init-handshake cycle bound: 6 parameters x a few 200 MHz cycles each,
/// with wide slack (same bound the SEU injector uses).
constexpr std::uint64_t kInitBound = 4096;

/// One 50 MHz GA cycle (the 200 MHz peripheral domain advances inside).
void ga_cycle(system::GaSystem& sys) { sys.kernel().run_cycles(sys.ga_clock(), 1); }

system::GaSystemConfig system_config(const SupervisorConfig& cfg, std::uint16_t seed) {
    system::GaSystemConfig scfg;
    scfg.params = cfg.params;
    scfg.params.seed = seed;
    scfg.internal_fems = {cfg.fn};
    scfg.keep_populations = false;
    return scfg;
}

/// Deterministic retry seed: mixed, never 0 (the RNG remaps 0 to 1 anyway).
std::uint16_t reseed(std::uint16_t base, unsigned attempt) {
    const std::uint16_t s =
        static_cast<std::uint16_t>(base ^ static_cast<std::uint16_t>(0x9E37u * (attempt + 1)));
    return s == 0 ? 1 : s;
}

/// True while the core's effective parameter registers still describe the
/// requested job. kStart loads them once from the programmed registers and
/// nothing writes them afterwards, so any deviation is an upset — a run (or
/// snapshot) carrying it belongs to a different job and must not be
/// delivered. Seed is excluded: effective_parameters() reports it as 0.
bool effective_params_intact(system::GaSystem& sys, const core::GaParameters& requested) {
    core::GaParameters want = core::resolve_parameters(0, requested);
    want.seed = 0;
    return sys.core().effective_parameters() == want;
}

/// Formula cycle bound used across the repo for a fault-free run.
std::uint64_t formula_cycles(const core::GaParameters& params) {
    const core::GaParameters eff = core::resolve_parameters(0, params);
    const std::uint64_t evals = static_cast<std::uint64_t>(eff.pop_size) *
                                (static_cast<std::uint64_t>(eff.n_gens) + 1);
    return evals * (64ull + 8ull * eff.pop_size) + 100'000ull;
}

}  // namespace

Checkpoint capture_checkpoint(system::GaSystem& sys, std::uint64_t cycle) {
    Checkpoint cp;
    cp.generation = sys.core().generation();
    cp.cycle = cycle;
    cp.core_bits = sys.core().scan_chain().snapshot();
    for (const rtl::RegBase* r : sys.rng_module().registers()) cp.rng_bits.push_back(r->bits());
    cp.memory.resize(mem::kGaMemoryDepth);
    for (std::size_t a = 0; a < mem::kGaMemoryDepth; ++a)
        cp.memory[a] = sys.memory().peek(a);
    cp.memory_dout = sys.memory().registers().front()->bits();
    return cp;
}

void restore_checkpoint(system::GaSystem& sys, const Checkpoint& cp) {
    sys.core().scan_chain().load(cp.core_bits);
    sys.core().input_changed();
    const std::span<rtl::RegBase* const> rng_regs = sys.rng_module().registers();
    if (rng_regs.size() != cp.rng_bits.size())
        throw std::logic_error("MissionSupervisor: RNG register census changed under a checkpoint");
    for (std::size_t i = 0; i < rng_regs.size(); ++i) rng_regs[i]->set_bits(cp.rng_bits[i]);
    sys.rng_module().input_changed();
    for (std::size_t a = 0; a < mem::kGaMemoryDepth; ++a)
        sys.memory().poke(a, cp.memory[a]);
    sys.memory().registers().front()->set_bits(cp.memory_dout);
    sys.memory().input_changed();
}

MissionSupervisor::MissionSupervisor(SupervisorConfig cfg) : cfg_(std::move(cfg)) {
    if (cfg_.watchdog_factor < 2)
        throw std::invalid_argument("MissionSupervisor: watchdog_factor must be >= 2");
    if ((cfg_.ladder.fallback_preset & ~std::uint8_t{0x3}) != 0)
        throw std::invalid_argument("MissionSupervisor: fallback_preset must be 0..3");
    if (cfg_.ladder.backoff_factor < 1.0)
        throw std::invalid_argument("MissionSupervisor: backoff_factor must be >= 1");
    if (cfg_.nmr == 0)
        throw std::invalid_argument("MissionSupervisor: nmr must be >= 1");
    if (!cfg_.replica_seeds.empty() && cfg_.replica_seeds.size() != cfg_.nmr)
        throw std::invalid_argument("MissionSupervisor: replica_seeds must have nmr entries");
    if (!cfg_.replica_backends.empty() && cfg_.replica_backends.size() != cfg_.nmr)
        throw std::invalid_argument("MissionSupervisor: replica_backends must have nmr entries");

    expected_cycles_ = cfg_.expected_cycles != 0 ? cfg_.expected_cycles
                                                 : formula_cycles(cfg_.params);
    budget0_ = fault::watchdog_budget(expected_cycles_, cfg_.watchdog_factor);

    if (cfg_.ladder.fallback_preset != 0) {
        // Exact post-fallback result: the preset modes resolve parameters
        // and seed from constants, and the behavioral model is bit-exact
        // with the RTL/gate substrates — so the degraded result is known
        // without a long simulation and can be verified against.
        core::GaParameters pp = core::preset_parameters(cfg_.ladder.fallback_preset);
        pp.seed = prng::RngModule::effective_seed(cfg_.ladder.fallback_preset, 0);
        const core::RunResult pr = core::run_behavioral_ga(
            pp, [fn = cfg_.fn](std::uint16_t x) { return fitness::fitness_u16(fn, x); },
            prng::RngKind::kCellularAutomaton, /*keep_populations=*/false);
        preset_baseline_.best_fitness = pr.best_fitness;
        preset_baseline_.best_candidate = pr.best_candidate;
        preset_baseline_.generations = pp.n_gens;
    }
}

BackendKind MissionSupervisor::replica_backend(unsigned r) const {
    return cfg_.replica_backends.empty() ? cfg_.backend : cfg_.replica_backends[r];
}

std::uint16_t MissionSupervisor::replica_seed(unsigned r) const {
    return cfg_.replica_seeds.empty() ? cfg_.params.seed : cfg_.replica_seeds[r];
}

void MissionSupervisor::emit(trace::TraceEvent e) const {
    if (cfg_.sink != nullptr) cfg_.sink->on_event(e);
}

AttemptRecord MissionSupervisor::run_attempt(BackendKind backend, const AttemptInfo& info,
                                             std::uint16_t seed, std::uint64_t budget,
                                             const Checkpoint* resume,
                                             std::vector<Checkpoint>* checkpoints,
                                             SupervisorReport& rep,
                                             std::unique_ptr<system::GaSystem>* keep_idle_sys) {
    switch (backend) {
        case BackendKind::kRtl:
            return run_rtl_attempt(info, seed, budget, resume, checkpoints, rep, keep_idle_sys);
        case BackendKind::kBehavioral:
            return run_behavioral_attempt(info, seed);
        case BackendKind::kGateLane:
            return run_gate_attempt(info, seed, budget, /*preset=*/0);
    }
    throw std::logic_error("MissionSupervisor: unknown backend");
}

AttemptRecord MissionSupervisor::run_rtl_attempt(const AttemptInfo& info, std::uint16_t seed,
                                                 std::uint64_t budget, const Checkpoint* resume,
                                                 std::vector<Checkpoint>* checkpoints,
                                                 SupervisorReport& rep,
                                                 std::unique_ptr<system::GaSystem>* keep_idle_sys) {
    AttemptRecord rec;
    rec.replica = info.replica;
    rec.attempt = info.attempt;
    rec.rung = info.rung;
    rec.backend = BackendKind::kRtl;
    rec.seed = seed;
    rec.budget = budget;
    rec.resumed = resume != nullptr;
    rec.resumed_gen = resume != nullptr ? resume->generation : 0;

    auto sys = std::make_unique<system::GaSystem>(system_config(cfg_, seed));
    sys->kernel().reset();
    sys->wires().preset.drive(0);
    sys->wires().fitfunc_select.drive(0);

    // Init handshake (hook sees it with in_init = true; a hook that freezes
    // the handshake produces the kInitTimeout outcome the retries cover).
    AttemptInfo init_info = info;
    init_info.in_init = true;
    bool started = false;
    for (std::uint64_t i = 0; i < kInitBound; ++i) {
        if (sys->core().state() == GaCore::State::kStart) {
            started = true;
            break;
        }
        ga_cycle(*sys);
        if (cfg_.hook) cfg_.hook(*sys, init_info, i + 1);
    }
    if (!started) {
        rec.outcome = AttemptOutcome::kInitTimeout;
        rec.cycles = kInitBound;
        rec.final_state = static_cast<std::uint8_t>(sys->core().state());
        return rec;
    }

    if (resume != nullptr) {
        // Let the start pulse fall before overwriting state: a still-high
        // start_GA would hit the RNG's seed-reload edge detector after the
        // restore and clobber the checkpointed CA state.
        for (unsigned g = 0; g < 32 && sys->wires().start_ga.read(); ++g) ga_cycle(*sys);
        restore_checkpoint(*sys, *resume);
    }

    std::uint64_t c = 0;
    GaCore::State prev = sys->core().state();
    // Snapshots are refused once the run stops provably belonging to the
    // requested job: past its generation count (an upset eff_ngens bit) or
    // with any effective parameter register deviating (an upset eff_pop /
    // eff_xt / eff_mt bit). A poisoned snapshot is worse than none — a
    // resumed retry would re-run the corrupted job and finish "cleanly".
    const std::uint32_t gen_limit = core::resolve_parameters(0, cfg_.params).n_gens;
    while (sys->core().state() != GaCore::State::kDone && c < budget) {
        ga_cycle(*sys);
        ++c;
        const GaCore::State st = sys->core().state();
        // Checkpoint at the kGenCheck entry edge (generation boundary; no
        // memory access or handshake in flight) — BEFORE the hook runs, so
        // a fault injected this very cycle cannot contaminate the snapshot.
        if (checkpoints != nullptr && cfg_.ladder.checkpoint_every != 0 &&
            st == GaCore::State::kGenCheck && prev != GaCore::State::kGenCheck) {
            const std::uint32_t gen = sys->core().generation();
            if (gen > 0 && gen <= gen_limit && gen % cfg_.ladder.checkpoint_every == 0 &&
                (checkpoints->empty() || gen > checkpoints->back().generation) &&
                effective_params_intact(*sys, cfg_.params)) {
                checkpoints->push_back(capture_checkpoint(*sys, c));
                ++rep.checkpoints;
                emit(trace::TraceEvent(trace::kind::kSupCheckpoint, 0, c)
                         .add("replica", std::uint64_t{info.replica})
                         .add("attempt", std::uint64_t{info.attempt})
                         .add("gen", std::uint64_t{gen}));
            }
        }
        prev = st;
        if (cfg_.hook) cfg_.hook(*sys, info, c);
    }

    rec.cycles = c;
    const GaCore::State final_state = sys->core().state();
    rec.final_state = static_cast<std::uint8_t>(final_state);
    if (final_state == GaCore::State::kDone) {
        if (!effective_params_intact(*sys, cfg_.params)) {
            // Finished, but not the requested job: an upset effective
            // parameter register (possibly restored from a snapshot taken
            // before the capture-time guard existed in the ladder walk) ran
            // a different GA to completion. Discard instead of delivering.
            rec.outcome = AttemptOutcome::kCorrupted;
        } else {
            rec.outcome = AttemptOutcome::kFinished;
            rec.best_fitness = sys->best_fitness();
            rec.best_candidate = sys->best_candidate();
            rec.generations = sys->core().generation();
        }
    } else if (final_state == GaCore::State::kIdle) {
        rec.outcome = AttemptOutcome::kWatchdogIdle;
        // Keep the tripped system alive: the restart and fallback rungs can
        // recover it in place (start_GA is sampled in kIdle — no reset).
        if (keep_idle_sys != nullptr) *keep_idle_sys = std::move(sys);
    } else {
        rec.outcome = AttemptOutcome::kWatchdogWedged;
    }
    return rec;
}

AttemptRecord MissionSupervisor::run_behavioral_attempt(const AttemptInfo& info,
                                                        std::uint16_t seed) {
    AttemptRecord rec;
    rec.replica = info.replica;
    rec.attempt = info.attempt;
    rec.rung = info.rung;
    rec.backend = BackendKind::kBehavioral;
    rec.seed = seed;
    core::GaParameters p = cfg_.params;
    p.seed = seed;
    const core::RunResult r = core::run_behavioral_ga(
        p, [fn = cfg_.fn](std::uint16_t x) { return fitness::fitness_u16(fn, x); },
        prng::RngKind::kCellularAutomaton, /*keep_populations=*/false);
    rec.outcome = AttemptOutcome::kFinished;
    rec.best_fitness = r.best_fitness;
    rec.best_candidate = r.best_candidate;
    rec.generations = core::resolve_parameters(0, p).n_gens;
    return rec;
}

AttemptRecord MissionSupervisor::run_gate_attempt(const AttemptInfo& info, std::uint16_t seed,
                                                  std::uint64_t budget, std::uint8_t preset) {
    AttemptRecord rec;
    rec.replica = info.replica;
    rec.attempt = info.attempt;
    rec.rung = info.rung;
    rec.backend = BackendKind::kGateLane;
    rec.seed = seed;
    rec.budget = budget;
    core::GaParameters p = cfg_.params;
    p.seed = seed;
    bench::BatchGateRunner runner(cfg_.fn, {p});
    if (preset != 0) runner.set_lane_preset(0, preset);
    // run_bounded counts from reset, so the init handshake rides on the
    // budget; give it the same slack the RT-level path gets.
    const std::vector<bench::BatchLaneResult> res = runner.run_bounded(budget + kInitBound);
    if (res.front().finished) {
        rec.outcome = AttemptOutcome::kFinished;
        rec.best_fitness = res.front().best_fitness;
        rec.best_candidate = res.front().best_candidate;
        rec.generations = res.front().generations;
        rec.cycles = res.front().ga_cycles;
    } else {
        rec.cycles = runner.cycles();
        rec.final_state = runner.lane_state(0);
        rec.outcome = rec.final_state == static_cast<std::uint8_t>(GaCore::State::kIdle)
                          ? AttemptOutcome::kWatchdogIdle
                          : AttemptOutcome::kWatchdogWedged;
    }
    return rec;
}

MissionSupervisor::ReplicaResult MissionSupervisor::run_ladder(unsigned replica,
                                                               BackendKind backend,
                                                               std::uint16_t seed,
                                                               unsigned& attempt_no,
                                                               SupervisorReport& rep) {
    ReplicaResult out;
    std::vector<Checkpoint> checkpoints;
    std::unique_ptr<system::GaSystem> idle_sys;
    std::uint16_t idle_seed = seed;

    // --- primary + backoff retries ---------------------------------------
    double scale = 1.0;
    const unsigned attempts_max = 1 + cfg_.ladder.max_retries;
    for (unsigned k = 0; k < attempts_max; ++k, scale *= cfg_.ladder.backoff_factor) {
        const double scaled = static_cast<double>(budget0_) * scale;
        const std::uint64_t budget =
            scaled >= static_cast<double>(std::numeric_limits<std::uint64_t>::max())
                ? std::numeric_limits<std::uint64_t>::max()
                : static_cast<std::uint64_t>(scaled);
        AttemptInfo info;
        info.replica = replica;
        info.attempt = attempt_no;
        info.rung = k == 0 ? Rung::kPrimary : Rung::kRetry;
        const Checkpoint* resume =
            (k > 0 && !checkpoints.empty()) ? &checkpoints.back() : nullptr;
        info.resumed = resume != nullptr;
        info.resumed_gen = resume != nullptr ? resume->generation : 0;
        std::uint16_t att_seed = seed;
        if (k > 0 && cfg_.ladder.reseed_on_retry && resume == nullptr)
            att_seed = reseed(seed, attempt_no);
        if (k > 0) {
            ++rep.retries;
            emit(trace::TraceEvent(trace::kind::kSupRetry, 0, rep.total_cycles)
                     .add("replica", std::uint64_t{replica})
                     .add("attempt", std::uint64_t{attempt_no})
                     .add("budget", budget)
                     .add("seed", std::uint64_t{att_seed})
                     .add("resumed_gen", std::uint64_t{info.resumed_gen}));
            if (resume != nullptr) {
                ++rep.rollbacks;
                emit(trace::TraceEvent(trace::kind::kSupRollback, 0, rep.total_cycles)
                         .add("replica", std::uint64_t{replica})
                         .add("gen", std::uint64_t{resume->generation})
                         .add("checkpoint_cycle", resume->cycle));
            }
        }

        std::unique_ptr<system::GaSystem> tripped;
        const AttemptRecord rec =
            run_attempt(backend, info, att_seed, budget, resume, &checkpoints, rep, &tripped);
        if (tripped) {
            idle_sys = std::move(tripped);
            idle_seed = att_seed;
        }
        rep.attempts.push_back(rec);
        ++attempt_no;
        rep.total_cycles += rec.cycles;
        if (rec.outcome == AttemptOutcome::kFinished) {
            out.status = Status::kOk;
            out.rung = info.rung;
            out.best_fitness = rec.best_fitness;
            out.best_candidate = rec.best_candidate;
            out.generations = rec.generations;
            return out;
        }
        if (rec.outcome == AttemptOutcome::kWatchdogIdle ||
            rec.outcome == AttemptOutcome::kWatchdogWedged) {
            ++rep.watchdog_trips;
            emit(trace::TraceEvent(trace::kind::kWatchdogTrip, 0, rep.total_cycles)
                     .add("replica", std::uint64_t{replica})
                     .add("attempt", std::uint64_t{rec.attempt})
                     .add("budget", rec.budget)
                     .add("final_state", std::uint64_t{rec.final_state})
                     .add("outcome", std::string(attempt_outcome_name(rec.outcome))));
        }
        // A retry that resumed from a checkpoint and still failed (or came
        // back corrupted) walks the checkpoint stack back one generation —
        // the snapshot itself may have captured corrupted state.
        if (resume != nullptr) checkpoints.pop_back();
    }

    // --- in-place restart (hung-run recovery, no reset) -------------------
    if (cfg_.ladder.restart_recovery && backend == BackendKind::kRtl && idle_sys != nullptr) {
        // Only provably useful when the programmed parameter registers and
        // the RNG seed register survived: kStart re-resolves the effective
        // parameters from them, so intact registers make the restarted run
        // reproduce the requested job exactly. Corrupted registers would
        // deliver a silently wrong job — skip straight to the fallback.
        core::GaParameters got = idle_sys->core().programmed_parameters();
        got.seed = idle_sys->rng_module().seed_register();
        core::GaParameters want = cfg_.params;
        want.seed = idle_seed;
        if (core::resolve_parameters(0, got) == core::resolve_parameters(0, want)) {
            ++rep.restarts;
            emit(trace::TraceEvent(trace::kind::kSupRestart, 0, rep.total_cycles)
                     .add("replica", std::uint64_t{replica})
                     .add("attempt", std::uint64_t{attempt_no}));
            AttemptRecord rec;
            rec.replica = replica;
            rec.attempt = attempt_no;
            rec.rung = Rung::kRestart;
            rec.backend = BackendKind::kRtl;
            rec.seed = idle_seed;
            rec.budget = budget0_;
            AttemptInfo info;
            info.replica = replica;
            info.attempt = attempt_no;
            info.rung = Rung::kRestart;
            idle_sys->app_module().request_restart();
            std::uint64_t c = 0;
            for (; c < 8; ++c) ga_cycle(*idle_sys);  // start pulse crosses domains
            while (idle_sys->core().state() != GaCore::State::kDone && c < budget0_) {
                ga_cycle(*idle_sys);
                ++c;
                if (cfg_.hook) cfg_.hook(*idle_sys, info, c);
            }
            rec.cycles = c;
            rec.final_state = static_cast<std::uint8_t>(idle_sys->core().state());
            if (idle_sys->core().state() == GaCore::State::kDone) {
                rec.outcome = AttemptOutcome::kFinished;
                rec.best_fitness = idle_sys->best_fitness();
                rec.best_candidate = idle_sys->best_candidate();
                rec.generations = idle_sys->core().generation();
            } else {
                rec.outcome = idle_sys->core().state() == GaCore::State::kIdle
                                  ? AttemptOutcome::kWatchdogIdle
                                  : AttemptOutcome::kWatchdogWedged;
            }
            rep.attempts.push_back(rec);
            ++attempt_no;
            rep.total_cycles += rec.cycles;
            if (rec.outcome == AttemptOutcome::kFinished) {
                out.status = Status::kOk;
                out.rung = Rung::kRestart;
                out.best_fitness = rec.best_fitness;
                out.best_candidate = rec.best_candidate;
                out.generations = rec.generations;
                return out;
            }
            ++rep.watchdog_trips;
            emit(trace::TraceEvent(trace::kind::kWatchdogTrip, 0, rep.total_cycles)
                     .add("replica", std::uint64_t{replica})
                     .add("attempt", std::uint64_t{rec.attempt})
                     .add("budget", rec.budget)
                     .add("final_state", std::uint64_t{rec.final_state})
                     .add("outcome", std::string(attempt_outcome_name(rec.outcome))));
            if (rec.outcome != AttemptOutcome::kWatchdogIdle) idle_sys.reset();
        }
    }

    // --- PRESET fallback (Table IV pins, no reset) ------------------------
    if (cfg_.ladder.fallback_preset != 0) {
        const std::uint8_t pm = cfg_.ladder.fallback_preset;
        const core::GaParameters pp = core::preset_parameters(pm);
        const std::uint64_t fb_bound = static_cast<std::uint64_t>(pp.pop_size) *
                                           (static_cast<std::uint64_t>(pp.n_gens) + 1) *
                                           (64ull + 8ull * pp.pop_size) +
                                       100'000ull;
        const bool in_place = backend == BackendKind::kRtl && idle_sys != nullptr;
        ++rep.fallbacks;
        emit(trace::TraceEvent(trace::kind::kSupFallback, 0, rep.total_cycles)
                 .add("replica", std::uint64_t{replica})
                 .add("attempt", std::uint64_t{attempt_no})
                 .add("preset", std::uint64_t{pm})
                 .add("in_place", std::uint64_t{in_place ? 1u : 0u}));

        AttemptRecord rec;
        rec.replica = replica;
        rec.attempt = attempt_no;
        rec.rung = Rung::kPresetFallback;
        rec.backend = backend;
        rec.budget = fb_bound;
        AttemptInfo info;
        info.replica = replica;
        info.attempt = attempt_no;
        info.rung = Rung::kPresetFallback;

        if (backend == BackendKind::kBehavioral) {
            rec.outcome = AttemptOutcome::kFinished;
            rec.best_fitness = preset_baseline_.best_fitness;
            rec.best_candidate = preset_baseline_.best_candidate;
            rec.generations = preset_baseline_.generations;
        } else if (backend == BackendKind::kGateLane) {
            rec = run_gate_attempt(info, cfg_.params.seed, fb_bound, pm);
            rec.rung = Rung::kPresetFallback;
        } else {
            system::GaSystem* sys = idle_sys.get();
            std::unique_ptr<system::GaSystem> fresh;
            std::uint64_t c = 0;
            if (in_place) {
                // The paper's recovery move: preset pins + start_GA, no
                // reset — the preset path depends on no programmed state.
                sys->wires().preset.drive(pm);
                idle_sys->app_module().request_restart();
                for (; c < 8; ++c) ga_cycle(*sys);
            } else {
                // No live kIdle system (e.g. every trip wedged the FSM):
                // fresh system in preset mode with the init handshake
                // skipped — the init-failure scenario of Table IV.
                system::GaSystemConfig scfg = system_config(cfg_, cfg_.params.seed);
                scfg.preset = pm;
                scfg.skip_initialization = true;
                fresh = std::make_unique<system::GaSystem>(scfg);
                sys = fresh.get();
                sys->kernel().reset();
                sys->wires().preset.drive(pm);
                sys->wires().fitfunc_select.drive(0);
            }
            while (sys->core().state() != GaCore::State::kDone && c < fb_bound + kInitBound) {
                ga_cycle(*sys);
                ++c;
                if (cfg_.hook) cfg_.hook(*sys, info, c);
            }
            rec.cycles = c;
            rec.final_state = static_cast<std::uint8_t>(sys->core().state());
            if (sys->core().state() == GaCore::State::kDone) {
                rec.outcome = AttemptOutcome::kFinished;
                rec.best_fitness = sys->best_fitness();
                rec.best_candidate = sys->best_candidate();
                rec.generations = sys->core().generation();
            } else {
                rec.outcome = sys->core().state() == GaCore::State::kIdle
                                  ? AttemptOutcome::kWatchdogIdle
                                  : AttemptOutcome::kWatchdogWedged;
            }
        }
        rep.attempts.push_back(rec);
        ++attempt_no;
        rep.total_cycles += rec.cycles;

        if (rec.outcome == AttemptOutcome::kFinished) {
            // Verify against the exact behavioral preset baseline: a
            // degraded run that cannot even reproduce the Table IV job is
            // silent corruption — abort instead of delivering it.
            if (rec.best_fitness == preset_baseline_.best_fitness &&
                rec.best_candidate == preset_baseline_.best_candidate) {
                out.status = Status::kOkDegraded;
                out.rung = Rung::kPresetFallback;
                out.best_fitness = rec.best_fitness;
                out.best_candidate = rec.best_candidate;
                out.generations = rec.generations;
                return out;
            }
            rep.abort_reason = "preset fallback finished but mismatched the behavioral baseline "
                               "(silent corruption)";
        } else {
            rep.abort_reason = "preset fallback missed its cycle bound";
        }
    } else {
        rep.abort_reason = "recovery ladder exhausted (no fallback configured)";
    }

    out.status = Status::kAborted;
    out.rung = Rung::kAbort;
    return out;
}

SupervisorReport MissionSupervisor::run() {
    SupervisorReport rep;

    std::vector<ReplicaResult> results(cfg_.nmr);
    std::vector<unsigned> attempt_no(cfg_.nmr, 0);
    for (unsigned r = 0; r < cfg_.nmr; ++r)
        results[r] = run_ladder(r, replica_backend(r), replica_seed(r), attempt_no[r], rep);

    if (cfg_.nmr == 1) {
        const ReplicaResult& r = results[0];
        rep.status = r.status;
        rep.final_rung = r.status == Status::kAborted ? Rung::kAbort : r.rung;
        rep.best_fitness = r.best_fitness;
        rep.best_candidate = r.best_candidate;
        rep.generations = r.generations;
    } else {
        // --- NMR majority vote on the delivered (fitness, candidate) pair --
        rep.voted = true;
        auto key_of = [](const ReplicaResult& r) {
            return (static_cast<std::uint32_t>(r.best_fitness) << 16) | r.best_candidate;
        };
        std::uint32_t best_key = 0;
        unsigned best_count = 0;
        for (unsigned r = 0; r < cfg_.nmr; ++r) {
            if (results[r].status == Status::kAborted) continue;
            const std::uint32_t k = key_of(results[r]);
            unsigned count = 0;
            for (unsigned q = 0; q < cfg_.nmr; ++q)
                if (results[q].status != Status::kAborted && key_of(results[q]) == k) ++count;
            if (count > best_count) {
                best_count = count;
                best_key = k;
            }
        }
        const bool majority = best_count > cfg_.nmr / 2;
        emit(trace::TraceEvent(trace::kind::kSupVote, 0, rep.total_cycles)
                 .add("replicas", std::uint64_t{cfg_.nmr})
                 .add("agree", std::uint64_t{best_count})
                 .add("majority", std::uint64_t{majority ? 1u : 0u})
                 .add("best_fit", std::uint64_t{best_key >> 16})
                 .add("best_ind", std::uint64_t{best_key & 0xFFFFu}));

        for (unsigned r = 0; r < cfg_.nmr; ++r) {
            ReplicaVerdict v;
            v.replica = r;
            v.backend = replica_backend(r);
            v.status = results[r].status;
            v.best_fitness = results[r].best_fitness;
            v.best_candidate = results[r].best_candidate;
            v.in_majority = majority && results[r].status != Status::kAborted &&
                            key_of(results[r]) == best_key;
            rep.verdicts.push_back(v);
        }

        if (!majority) {
            rep.status = Status::kAborted;
            rep.final_rung = Rung::kAbort;
            rep.abort_reason = "no NMR majority (" + std::to_string(best_count) + "/" +
                               std::to_string(cfg_.nmr) + " replicas agree)";
        } else {
            // Replace every dissenting or aborted replica: re-run its ladder
            // (attempt numbering continues, so hooks keyed to the replica's
            // early attempts do not re-fire) and record whether the
            // replacement rejoined the majority.
            for (unsigned r = 0; r < cfg_.nmr; ++r) {
                if (rep.verdicts[r].in_majority) continue;
                ++rep.replicas_replaced;
                rep.verdicts[r].replaced = true;
                results[r] = run_ladder(r, replica_backend(r), replica_seed(r), attempt_no[r], rep);
                rep.verdicts[r].status = results[r].status;
                rep.verdicts[r].best_fitness = results[r].best_fitness;
                rep.verdicts[r].best_candidate = results[r].best_candidate;
                rep.verdicts[r].in_majority = results[r].status != Status::kAborted &&
                                              key_of(results[r]) == best_key;
            }
            rep.vote_agree = 0;
            Status status = Status::kOk;
            Rung rung = Rung::kPrimary;
            std::uint32_t gens = 0;
            for (unsigned r = 0; r < cfg_.nmr; ++r) {
                if (!rep.verdicts[r].in_majority) continue;
                ++rep.vote_agree;
                if (results[r].status == Status::kOkDegraded) status = Status::kOkDegraded;
                rung = std::max(rung, results[r].rung);
                gens = results[r].generations;
            }
            rep.status = status;
            rep.final_rung = rung;
            rep.best_fitness = static_cast<std::uint16_t>(best_key >> 16);
            rep.best_candidate = static_cast<std::uint16_t>(best_key & 0xFFFFu);
            rep.generations = gens;
        }
    }

    if (rep.status != Status::kAborted) {
        rep.abort_reason.clear();
    } else {
        emit(trace::TraceEvent(trace::kind::kSupAbort, 0, rep.total_cycles)
                 .add("reason", rep.abort_reason));
    }
    emit(trace::TraceEvent(trace::kind::kSupResult, 0, rep.total_cycles)
             .add("status", std::string(status_name(rep.status)))
             .add("rung", std::string(rung_name(rep.final_rung)))
             .add("best_fit", std::uint64_t{rep.best_fitness})
             .add("best_ind", std::uint64_t{rep.best_candidate})
             .add("watchdog_trips", std::uint64_t{rep.watchdog_trips})
             .add("retries", std::uint64_t{rep.retries})
             .add("restarts", std::uint64_t{rep.restarts})
             .add("rollbacks", std::uint64_t{rep.rollbacks})
             .add("fallbacks", std::uint64_t{rep.fallbacks})
             .add("replaced", std::uint64_t{rep.replicas_replaced}));
    if (cfg_.sink != nullptr) cfg_.sink->flush();
    return rep;
}

}  // namespace gaip::supervisor
