// Mission supervisor: runs one GA job end to end with production-grade
// fault handling — the software half of the paper's fault-tolerance story
// (Sec. III-C: scan-chain testability + Table IV PRESET modes). Where
// fault/seu_injector.hpp *studies* upsets one at a time, the supervisor
// *survives* them: it arms a cycle-budget watchdog around the run and, on a
// missed budget or a failed init handshake, walks a recovery ladder:
//
//   kPrimary          the supervised attempt itself;
//   kRetry            bounded re-runs on a fresh system, cycle budget grown
//                     by an exponential backoff factor per attempt — and,
//                     when generation checkpoints are armed, resumed from
//                     the last good checkpoint instead of from scratch;
//   kRestart          the hung-run recovery of AppModule::request_restart():
//                     a watchdog trip that parked the FSM in kIdle is
//                     restartable in place (start_GA re-pulsed, no reset) —
//                     taken only after verifying the programmed parameter
//                     registers and the RNG seed register survived intact,
//                     so the rerun provably reproduces the requested job;
//   kPresetFallback   Table IV pins + start_GA, no reset: the run completes
//                     with the built-in preset parameters, independent of
//                     all (possibly corrupted) programmed state. The result
//                     is verified against the exact behavioral preset
//                     baseline — a mismatch aborts instead of delivering a
//                     silently wrong answer;
//   kAbort            structured failure: the report says what was tried
//                     and why each rung failed.
//
// Optionally the job runs as N-modular redundancy: `nmr` replicas (same
// parameters; independent seeds or mixed simulation substrates on request)
// each walk the ladder, the supervisor majority-votes on the delivered
// (best fitness, best candidate) pair, and any dissenting or aborted
// replica is re-run (replaced) after the vote. Because the behavioral,
// RT-level and gate-level substrates are bit-exact for the same seed,
// mixed-backend replicas vote meaningfully.
//
// Every decision is emitted as a trace::TraceEvent (kinds sup_* and
// watchdog_trip in trace/event.hpp), so `gaip-trace` tooling records and
// diffs supervised runs like any other telemetry stream. The
// tools/gaip-supervise CLI wraps this class.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/behavioral.hpp"
#include "core/params.hpp"
#include "fault/fault_model.hpp"
#include "fitness/functions.hpp"
#include "trace/event.hpp"

namespace gaip::system {
class GaSystem;
}

namespace gaip::supervisor {

/// Simulation substrate an attempt runs on. All three deliver bit-identical
/// results for the same parameters/seed (the repo's central cross-check),
/// which is what makes mixed-backend NMR replicas comparable.
enum class BackendKind : std::uint8_t { kRtl = 0, kBehavioral, kGateLane };

inline const char* backend_kind_name(BackendKind b) noexcept {
    switch (b) {
        case BackendKind::kRtl: return "rtl";
        case BackendKind::kBehavioral: return "behavioral";
        case BackendKind::kGateLane: return "gate-lane";
    }
    return "?";
}

/// Rungs of the recovery ladder, in escalation order.
enum class Rung : std::uint8_t { kPrimary = 0, kRetry, kRestart, kPresetFallback, kAbort };

inline const char* rung_name(Rung r) noexcept {
    switch (r) {
        case Rung::kPrimary: return "primary";
        case Rung::kRetry: return "retry";
        case Rung::kRestart: return "restart";
        case Rung::kPresetFallback: return "preset-fallback";
        case Rung::kAbort: return "abort";
    }
    return "?";
}

/// How one supervised attempt ended.
enum class AttemptOutcome : std::uint8_t {
    kFinished = 0,      ///< GA_done within the cycle budget
    kInitTimeout,       ///< init handshake never started the optimizer
    kWatchdogIdle,      ///< budget missed, FSM settled in kIdle (restartable)
    kWatchdogWedged,    ///< budget missed, FSM wedged outside kIdle
    kCorrupted,         ///< finished, but the effective parameters no longer
                        ///< match the requested job (poisoned resume state) —
                        ///< the result is discarded, never delivered
};

inline const char* attempt_outcome_name(AttemptOutcome o) noexcept {
    switch (o) {
        case AttemptOutcome::kFinished: return "finished";
        case AttemptOutcome::kInitTimeout: return "init-timeout";
        case AttemptOutcome::kWatchdogIdle: return "watchdog-idle";
        case AttemptOutcome::kWatchdogWedged: return "watchdog-wedged";
        case AttemptOutcome::kCorrupted: return "corrupted";
    }
    return "?";
}

/// Final verdict of a supervised job.
enum class Status : std::uint8_t {
    kOk = 0,       ///< requested job delivered (primary, retry, or restart)
    kOkDegraded,   ///< PRESET fallback delivered the Table IV job instead
    kAborted,      ///< ladder exhausted; see SupervisorReport::abort_reason
};

inline const char* status_name(Status s) noexcept {
    switch (s) {
        case Status::kOk: return "ok";
        case Status::kOkDegraded: return "ok-degraded";
        case Status::kAborted: return "aborted";
    }
    return "?";
}

/// Context handed to the per-cycle hook (fault-injection surface for tests
/// and campaigns; only RT-level attempts invoke it).
struct AttemptInfo {
    unsigned replica = 0;   ///< NMR replica index (0 when nmr == 1)
    unsigned attempt = 0;   ///< per-replica attempt counter (0 = primary)
    Rung rung = Rung::kPrimary;
    bool in_init = false;   ///< true while the init handshake is running
    bool resumed = false;   ///< attempt resumed from a checkpoint
    std::uint32_t resumed_gen = 0;  ///< generation resumed from (when resumed)
};

/// Called after every GA cycle of an RT-level attempt (init cycles included,
/// with in_init = true and the cycle counting the handshake cycles; run
/// cycles count from the kStart cycle like the SEU injector's numbering).
/// The hook may poke the system (flip scan bits, drive pins) — exactly what
/// the fault-injection tests do to exercise the ladder.
using CycleHook =
    std::function<void(system::GaSystem&, const AttemptInfo&, std::uint64_t cycle)>;

/// Recovery-ladder policy.
struct LadderConfig {
    /// Retry attempts after the primary (fresh system each time).
    unsigned max_retries = 2;
    /// Cycle-budget growth per retry: attempt k runs with
    /// budget x backoff_factor^k (saturating).
    double backoff_factor = 2.0;
    /// Derive a fresh deterministic seed per retry (ignored for retries that
    /// resume from a checkpoint — the checkpointed RNG state carries over).
    bool reseed_on_retry = false;
    /// Attempt AppModule::request_restart() in place after the retries, when
    /// a watchdog trip parked the FSM in kIdle with intact parameters.
    bool restart_recovery = true;
    /// Table IV preset the final fallback rung runs (1..3; 0 disables it).
    std::uint8_t fallback_preset = 1;
    /// Snapshot the scan chain + memory banks every N generations (0 = no
    /// checkpoints; retries then always restart from scratch).
    std::uint32_t checkpoint_every = 0;
};

/// One generation-boundary snapshot: everything needed to resume the
/// optimizer mid-run on a fresh system. Captured at the kGenCheck entry
/// edge, where no memory access or handshake is in flight.
struct Checkpoint {
    std::uint32_t generation = 0;
    std::uint64_t cycle = 0;                 ///< run cycle of the capture
    std::vector<bool> core_bits;             ///< 405-bit scan-chain snapshot
    std::vector<std::uint64_t> rng_bits;     ///< RNG registers, attach order
    std::vector<std::uint32_t> memory;       ///< 256 x 32 GA memory words
    std::uint64_t memory_dout = 0;           ///< BRAM synchronous-read register
};

/// Snapshot a running RT-level system (scan chain, RNG registers, both GA
/// memory banks, BRAM output register). Public so the island ensemble can
/// checkpoint each member system at its migration boundaries with the same
/// audited capture the supervisor ladder uses.
Checkpoint capture_checkpoint(system::GaSystem& sys, std::uint64_t cycle);

/// Load a checkpoint into a system that has completed its init handshake
/// and whose start pulse has fallen (so the RNG's seed-reload edge is in
/// the past). Every touched module gets input_changed() so the
/// event-driven scheduler re-settles its Moore outputs before the next
/// edge. Throws std::logic_error if the RNG register census changed.
void restore_checkpoint(system::GaSystem& sys, const Checkpoint& cp);

/// One supervised attempt, as recorded in the report.
struct AttemptRecord {
    unsigned replica = 0;
    unsigned attempt = 0;
    Rung rung = Rung::kPrimary;
    BackendKind backend = BackendKind::kRtl;
    AttemptOutcome outcome = AttemptOutcome::kFinished;
    bool resumed = false;
    std::uint32_t resumed_gen = 0;
    std::uint16_t seed = 0;          ///< seed the attempt ran with
    std::uint64_t budget = 0;        ///< armed cycle budget
    std::uint64_t cycles = 0;        ///< cycles actually consumed
    std::uint8_t final_state = 0;    ///< FSM state at the trip (when not finished)
    std::uint16_t best_fitness = 0;  ///< delivered result (when finished)
    std::uint16_t best_candidate = 0;
    std::uint32_t generations = 0;
};

/// Per-replica verdict of an NMR vote.
struct ReplicaVerdict {
    unsigned replica = 0;
    BackendKind backend = BackendKind::kRtl;
    Status status = Status::kAborted;
    std::uint16_t best_fitness = 0;
    std::uint16_t best_candidate = 0;
    bool in_majority = false;
    bool replaced = false;  ///< re-run after dissenting from the vote
};

/// Structured outcome of a supervised job.
struct SupervisorReport {
    Status status = Status::kAborted;
    Rung final_rung = Rung::kAbort;   ///< rung that delivered (or kAbort)
    std::uint16_t best_fitness = 0;
    std::uint16_t best_candidate = 0;
    std::uint32_t generations = 0;
    std::uint64_t total_cycles = 0;   ///< GA cycles across every attempt

    unsigned watchdog_trips = 0;
    unsigned retries = 0;
    unsigned restarts = 0;
    unsigned rollbacks = 0;           ///< retries resumed from a checkpoint
    unsigned checkpoints = 0;         ///< snapshots taken
    unsigned fallbacks = 0;

    bool voted = false;               ///< NMR vote happened
    unsigned vote_agree = 0;          ///< replicas agreeing with the majority
    unsigned replicas_replaced = 0;
    std::vector<ReplicaVerdict> verdicts;

    std::vector<AttemptRecord> attempts;
    std::string abort_reason;         ///< set when status == kAborted

    bool ok() const noexcept { return status != Status::kAborted; }
};

struct SupervisorConfig {
    fitness::FitnessId fn = fitness::FitnessId::kMBf6_2;
    core::GaParameters params{};
    BackendKind backend = BackendKind::kRtl;

    /// Watchdog = factor x expected cycles (same convention as the SEU
    /// injector; fault::watchdog_budget adds the slack and overflow-checks).
    unsigned watchdog_factor = 4;
    /// Expected fault-free GA cycle count. 0 selects the formula estimate
    /// evals x (64 + 8 x pop) + 100000 used across the repo's cycle bounds.
    std::uint64_t expected_cycles = 0;

    LadderConfig ladder{};

    /// N-modular redundancy: replicas of the job voted on majority.
    /// 1 = plain supervised run. Use an odd count for a meaningful vote.
    unsigned nmr = 1;
    /// Optional per-replica seed override (size nmr). Empty = every replica
    /// runs params.seed, so agreement is bit-exact by construction.
    std::vector<std::uint16_t> replica_seeds;
    /// Optional per-replica substrate (size nmr). Empty = `backend` for all.
    std::vector<BackendKind> replica_backends;

    /// Telemetry sink for the sup_* decision events (borrowed; may be null).
    trace::TraceSink* sink = nullptr;
    /// Per-cycle hook on RT-level attempts (fault injection in tests).
    CycleHook hook;
};

class MissionSupervisor {
public:
    explicit MissionSupervisor(SupervisorConfig cfg);

    const SupervisorConfig& config() const noexcept { return cfg_; }

    /// Primary-attempt cycle budget (before backoff).
    std::uint64_t primary_budget() const noexcept { return budget0_; }

    /// Exact behavioral result of the fallback preset (valid when the
    /// fallback rung is enabled) — what a degraded run must deliver.
    const fault::GoldenRun& preset_baseline() const noexcept { return preset_baseline_; }

    /// Run the supervised job (all replicas, the vote, replacements) and
    /// return the structured report. Never throws on faults the ladder
    /// covers — those end as status kAborted with a reason.
    SupervisorReport run();

private:
    struct ReplicaResult {
        Status status = Status::kAborted;
        Rung rung = Rung::kAbort;
        std::uint16_t best_fitness = 0;
        std::uint16_t best_candidate = 0;
        std::uint32_t generations = 0;
    };

    BackendKind replica_backend(unsigned r) const;
    std::uint16_t replica_seed(unsigned r) const;

    void emit(trace::TraceEvent e) const;

    AttemptRecord run_attempt(BackendKind backend, const AttemptInfo& info, std::uint16_t seed,
                              std::uint64_t budget, const Checkpoint* resume,
                              std::vector<Checkpoint>* checkpoints, SupervisorReport& rep,
                              std::unique_ptr<system::GaSystem>* keep_idle_sys);
    AttemptRecord run_rtl_attempt(const AttemptInfo& info, std::uint16_t seed,
                                  std::uint64_t budget, const Checkpoint* resume,
                                  std::vector<Checkpoint>* checkpoints, SupervisorReport& rep,
                                  std::unique_ptr<system::GaSystem>* keep_idle_sys);
    AttemptRecord run_behavioral_attempt(const AttemptInfo& info, std::uint16_t seed);
    AttemptRecord run_gate_attempt(const AttemptInfo& info, std::uint16_t seed,
                                   std::uint64_t budget, std::uint8_t preset);

    /// Walk the full ladder for one replica; appends attempts to `rep`.
    ReplicaResult run_ladder(unsigned replica, BackendKind backend, std::uint16_t seed,
                             unsigned& attempt_no, SupervisorReport& rep);

    SupervisorConfig cfg_;
    std::uint64_t expected_cycles_ = 0;
    std::uint64_t budget0_ = 0;
    fault::GoldenRun preset_baseline_{};
};

}  // namespace gaip::supervisor
