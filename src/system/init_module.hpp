// Initialization module (Fig. 4): "a simple finite state machine to perform
// the two-way handshaking operation using the data_valid and data_ack
// signals to initialize the various GA parameters one by one." Runs in the
// fast (200 MHz) peripheral clock domain, as in the paper's FPGA setup.
//
// The parameter program (the index/value pairs to write) is configured in
// software before reset — the hardware analog is the small config ROM such
// an FSM would carry.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "core/params.hpp"
#include "rtl/module.hpp"

namespace gaip::system {

struct InitModulePorts {
    rtl::Wire<bool>& ga_load;      // out
    rtl::Wire<std::uint8_t>& index;    // out
    rtl::Wire<std::uint16_t>& value;   // out
    rtl::Wire<bool>& data_valid;   // out
    rtl::Wire<bool>& data_ack;     // in
    rtl::Wire<bool>& init_done;    // out
};

class InitModule final : public rtl::Module {
public:
    InitModule(InitModulePorts ports) : Module("init_module"), p_(ports) {
        attach_all(state_, item_);
        sense();  // eval() reads the FSM registers (and the pre-run program) only
    }

    /// Replace the parameter program with the six writes covering Table III
    /// for `params` (both halves of n_gens, pop size, both rates, seed).
    void program_parameters(const core::GaParameters& params) {
        program_ = {
            {static_cast<std::uint8_t>(core::ParamIndex::kNumGensLo),
             static_cast<std::uint16_t>(params.n_gens & 0xFFFF)},
            {static_cast<std::uint8_t>(core::ParamIndex::kNumGensHi),
             static_cast<std::uint16_t>(params.n_gens >> 16)},
            {static_cast<std::uint8_t>(core::ParamIndex::kPopSize), params.pop_size},
            {static_cast<std::uint8_t>(core::ParamIndex::kCrossoverRate), params.xover_threshold},
            {static_cast<std::uint8_t>(core::ParamIndex::kMutationRate), params.mut_threshold},
            {static_cast<std::uint8_t>(core::ParamIndex::kRngSeed), params.seed},
        };
    }

    /// Arbitrary write program (tests exercise partial initialization).
    void set_program(std::vector<std::pair<std::uint8_t, std::uint16_t>> program) {
        program_ = std::move(program);
    }

    /// Append one write to the program — extension registers (e.g. the
    /// island interconnect's migration registers at indices 6/7) ride the
    /// same handshake after the six Table III parameters. The core ACKs
    /// every index; modules that own extension registers snoop the bus.
    void append_write(std::uint8_t index, std::uint16_t value) {
        program_.emplace_back(index, value);
    }

    void eval() override {
        const State s = state_.read();
        const bool active = s == State::kAssert || s == State::kDrop;
        p_.ga_load.drive(active);
        p_.data_valid.drive(s == State::kAssert);
        p_.init_done.drive(s == State::kDone);
        if (active && item_.read() < program_.size()) {
            p_.index.drive(program_[item_.read()].first);
            p_.value.drive(program_[item_.read()].second);
        } else {
            p_.index.drive(0);
            p_.value.drive(0);
        }
    }

    void tick() override {
        switch (state_.read()) {
            case State::kIdle:
                state_.load(program_.empty() ? State::kDone : State::kAssert);
                break;
            case State::kAssert:
                if (p_.data_ack.read()) state_.load(State::kDrop);
                break;
            case State::kDrop:
                if (!p_.data_ack.read()) {
                    const std::uint16_t next = static_cast<std::uint16_t>(item_.read() + 1);
                    if (next >= program_.size()) {
                        state_.load(State::kDone);
                    } else {
                        item_.load(next);
                        state_.load(State::kAssert);
                    }
                }
                break;
            case State::kDone:
                break;
        }
    }

    bool done() const noexcept { return state_.read() == State::kDone; }

private:
    enum class State : std::uint8_t { kIdle = 0, kAssert, kDrop, kDone };

    InitModulePorts p_;
    std::vector<std::pair<std::uint8_t, std::uint16_t>> program_;
    rtl::Reg<State> state_{"init_state", State::kIdle, 2};
    rtl::Reg<std::uint16_t> item_{"init_item", 0, 8};
};

}  // namespace gaip::system
