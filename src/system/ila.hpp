// Integrated logic analyzer (ILA) — the substrate behind the paper's
// ChipScope Pro usage. ChipScope cores are trigger-based capture buffers
// dropped into the fabric: they watch a set of probes every clock, and when
// a trigger condition fires they freeze a window of pre- and post-trigger
// samples into block RAM for readout. GenerationMonitor covers the paper's
// specific "best fitness and sum of fitness per generation" recording; this
// module provides the general instrument, used by tests to capture protocol
// windows (e.g. the cycles around a fitness handshake).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "rtl/module.hpp"

namespace gaip::system {

class IntegratedLogicAnalyzer final : public rtl::Module {
public:
    /// A probe samples one value per clock (usually a lambda over wires).
    struct Probe {
        std::string name;
        std::function<std::uint64_t()> read;
    };

    struct Config {
        unsigned pre_trigger = 8;    ///< samples kept before the trigger
        unsigned post_trigger = 24;  ///< samples captured after it
        bool one_shot = true;        ///< stop after the first window
    };

    struct Sample {
        std::uint64_t cycle;                 ///< module-local cycle counter
        std::vector<std::uint64_t> values;   ///< one per probe
        bool at_trigger = false;
    };

    IntegratedLogicAnalyzer(std::vector<Probe> probes, std::function<bool()> trigger,
                            Config cfg)
        : Module("ila"), probes_(std::move(probes)), trigger_(std::move(trigger)), cfg_(cfg) {}

    // Separate overload: a `Config cfg = {}` default argument is ill-formed
    // inside the class (the nested aggregate is incomplete there for GCC).
    IntegratedLogicAnalyzer(std::vector<Probe> probes, std::function<bool()> trigger)
        : IntegratedLogicAnalyzer(std::move(probes), std::move(trigger), Config{}) {}

    void tick() override {
        Sample s;
        s.cycle = cycle_++;
        s.values.reserve(probes_.size());
        for (const Probe& p : probes_) s.values.push_back(p.read());

        if (capturing_) {
            capture_.push_back(std::move(s));
            if (--remaining_ == 0) {
                capturing_ = false;
                ++windows_;
                if (cfg_.one_shot) armed_ = false;
            }
            return;
        }
        if (armed_ && trigger_()) {
            // Freeze the pre-trigger history plus this (trigger) sample.
            for (const Sample& h : history_) capture_.push_back(h);
            s.at_trigger = true;
            capture_.push_back(std::move(s));
            history_.clear();
            if (cfg_.post_trigger == 0) {
                ++windows_;
                if (cfg_.one_shot) armed_ = false;
            } else {
                capturing_ = true;
                remaining_ = cfg_.post_trigger;
            }
            return;
        }
        history_.push_back(std::move(s));
        while (history_.size() > cfg_.pre_trigger) history_.pop_front();
    }

    void reset_state() override {
        history_.clear();
        capture_.clear();
        capturing_ = false;
        armed_ = true;
        remaining_ = 0;
        cycle_ = 0;
        windows_ = 0;
    }

    bool triggered() const noexcept { return windows_ > 0; }
    unsigned windows() const noexcept { return windows_; }
    const std::vector<Sample>& capture() const noexcept { return capture_; }
    const std::vector<Probe>& probes() const noexcept { return probes_; }

    /// Index of probe `name` (throws if absent).
    std::size_t probe_index(const std::string& name) const;

    /// Column of one probe across the capture window.
    std::vector<std::uint64_t> column(const std::string& name) const;

private:
    std::vector<Probe> probes_;
    std::function<bool()> trigger_;
    Config cfg_;

    std::deque<Sample> history_;
    std::vector<Sample> capture_;
    bool capturing_ = false;
    bool armed_ = true;
    unsigned remaining_ = 0;
    std::uint64_t cycle_ = 0;
    unsigned windows_ = 0;
};

}  // namespace gaip::system
