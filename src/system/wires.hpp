// Wire bundle owning every net of a single-core GA system. Testbenches and
// the GaSystem builder instantiate one bundle and pass the derived port
// structs to the modules; the bundle is the "top-level netlist" of Fig. 4.
#pragma once

#include <cstdint>

#include "core/ga_core.hpp"
#include "fitness/fem.hpp"
#include "fitness/fem_mux.hpp"
#include "mem/ga_memory.hpp"
#include "prng/rng_module.hpp"
#include "rtl/signal.hpp"

namespace gaip::system {

struct CoreWireBundle {
    // init interface
    rtl::Wire<bool> ga_load;
    rtl::Wire<std::uint8_t> index;
    rtl::Wire<std::uint16_t> value;
    rtl::Wire<bool> data_valid;
    rtl::Wire<bool> data_ack;

    // fitness interface (core side, after the mux)
    rtl::Wire<std::uint16_t> fit_value;
    rtl::Wire<bool> fit_request;
    rtl::Wire<bool> fit_valid;
    rtl::Wire<std::uint16_t> candidate;

    // memory interface
    rtl::Wire<std::uint8_t> mem_address;
    rtl::Wire<std::uint32_t> mem_data_out;
    rtl::Wire<bool> mem_wr;
    rtl::Wire<std::uint32_t> mem_data_in;

    // control
    rtl::Wire<bool> start_ga;
    rtl::Wire<bool> ga_done;

    // scan test
    rtl::Wire<bool> test;
    rtl::Wire<bool> scanin;
    rtl::Wire<bool> scanout;

    // preset / RNG / fitness select / external FEM
    rtl::Wire<std::uint8_t> preset;
    rtl::Wire<std::uint16_t> rn;
    rtl::Wire<std::uint8_t> fitfunc_select;
    rtl::Wire<std::uint16_t> fit_value_ext;
    rtl::Wire<bool> fit_valid_ext;

    // extensions
    rtl::Wire<bool> rn_next;
    rtl::Wire<bool> sel_found;
    rtl::Wire<bool> sel_force_found;

    // monitor taps
    rtl::Wire<bool> mon_gen_pulse;
    rtl::Wire<std::uint32_t> mon_gen_id;
    rtl::Wire<std::uint16_t> mon_best_fit;
    rtl::Wire<std::uint32_t> mon_fit_sum;
    rtl::Wire<std::uint16_t> mon_best_ind;
    rtl::Wire<bool> mon_bank;
    rtl::Wire<std::uint8_t> mon_pop_size;

    // per-fitness-slot nets (internal FEMs behind the mux)
    struct SlotWires {
        rtl::Wire<bool> request;
        rtl::Wire<std::uint16_t> value;
        rtl::Wire<bool> valid;
    };
    SlotWires slots[fitness::kMaxFitnessSlots];

    core::GaCorePorts core_ports() {
        return core::GaCorePorts{
            ga_load, index, value, data_valid, data_ack, fit_value, fit_request, fit_valid,
            candidate, mem_address, mem_data_out, mem_wr, mem_data_in, start_ga, ga_done, test,
            scanin, scanout, preset, rn, fitfunc_select, fit_value_ext, fit_valid_ext, rn_next,
            sel_found, sel_force_found, mon_gen_pulse, mon_gen_id, mon_best_fit, mon_fit_sum,
            mon_best_ind, mon_bank, mon_pop_size};
    }

    prng::RngModulePorts rng_ports() {
        return prng::RngModulePorts{ga_load, index, value, data_valid, preset,
                                    start_ga, rn_next, rn};
    }

    mem::GaMemoryPorts memory_ports() {
        return mem::GaMemoryPorts{mem_address, mem_data_out, mem_wr, mem_data_in};
    }

    fitness::FemMuxPorts mux_ports() {
        return fitness::FemMuxPorts{fit_request, fitfunc_select, fit_value, fit_valid};
    }

    fitness::FemPorts slot_fem_ports(std::size_t i) {
        return fitness::FemPorts{slots[i].request, candidate, slots[i].value, slots[i].valid};
    }

    fitness::FemPorts external_fem_ports() {
        return fitness::FemPorts{fit_request, candidate, fit_value_ext, fit_valid_ext};
    }
};

}  // namespace gaip::system
