#include "system/ila.hpp"

#include <stdexcept>

namespace gaip::system {

std::size_t IntegratedLogicAnalyzer::probe_index(const std::string& name) const {
    for (std::size_t i = 0; i < probes_.size(); ++i)
        if (probes_[i].name == name) return i;
    throw std::invalid_argument("ILA: no probe named " + name);
}

std::vector<std::uint64_t> IntegratedLogicAnalyzer::column(const std::string& name) const {
    const std::size_t idx = probe_index(name);
    std::vector<std::uint64_t> out;
    out.reserve(capture_.size());
    for (const Sample& s : capture_) out.push_back(s.values[idx]);
    return out;
}

}  // namespace gaip::system
