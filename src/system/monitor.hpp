// Generation monitor: the model's stand-in for the ChipScope Pro cores the
// authors used to "observe and record the best fitness and sum of fitness
// values for each generation on the FPGA" (Sec. IV-B). Bound to the GA
// clock; samples the core's monitor taps at each kGenCheck pulse and
// (optionally) snapshots the full population from GA memory via simulator
// backdoor access — the data behind the convergence plots (Figs. 8-16).
#pragma once

#include <cstdint>
#include <vector>

#include "core/behavioral.hpp"
#include "mem/ga_memory.hpp"
#include "rtl/module.hpp"

namespace gaip::system {

struct MonitorPorts {
    rtl::Wire<bool>& gen_pulse;
    rtl::Wire<std::uint32_t>& gen_id;
    rtl::Wire<std::uint16_t>& best_fit;
    rtl::Wire<std::uint16_t>& best_ind;
    rtl::Wire<std::uint32_t>& fit_sum;
    rtl::Wire<bool>& bank;
    rtl::Wire<std::uint8_t>& pop_size;
};

class GenerationMonitor final : public rtl::Module {
public:
    GenerationMonitor(MonitorPorts ports, const mem::GaMemory* memory = nullptr,
                      bool keep_populations = true)
        : Module("generation_monitor"), p_(ports), memory_(memory),
          keep_populations_(keep_populations) {
        sense();  // no eval(): purely a sampling tap on its clock edges
    }

    void tick() override {
        if (!p_.gen_pulse.read()) return;
        core::GenerationStats s;
        s.gen = p_.gen_id.read();
        s.best_fit = p_.best_fit.read();
        s.best_ind = p_.best_ind.read();
        s.fit_sum = p_.fit_sum.read();
        if (keep_populations_ && memory_ != nullptr) {
            const bool bank = p_.bank.read();
            const std::uint8_t n = p_.pop_size.read();
            s.population.reserve(n);
            for (std::uint8_t i = 0; i < n; ++i) {
                s.population.push_back(
                    {memory_->candidate_at(bank, i), memory_->fitness_at(bank, i)});
            }
        }
        history_.push_back(std::move(s));
    }

    void reset_state() override { history_.clear(); }

    const std::vector<core::GenerationStats>& history() const noexcept { return history_; }

private:
    MonitorPorts p_;
    const mem::GaMemory* memory_;
    bool keep_populations_;
    std::vector<core::GenerationStats> history_;
};

}  // namespace gaip::system
