#include "system/parallel.hpp"

#include <stdexcept>

#include "fitness/fem.hpp"
#include "fitness/fem_mux.hpp"
#include "fitness/rom_builder.hpp"
#include "mem/ga_memory.hpp"
#include "prng/rng_module.hpp"
#include "system/app_module.hpp"
#include "system/init_module.hpp"
#include "system/monitor.hpp"
#include "system/wires.hpp"

namespace gaip::system {

/// One complete GA instance (the Fig. 4 system) inside the parallel array.
struct ParallelGaSystem::Engine {
    CoreWireBundle wires;
    rtl::Wire<bool> init_done;
    rtl::Wire<bool> app_done;
    std::unique_ptr<core::GaCore> core;
    std::unique_ptr<prng::RngModule> rng;
    std::unique_ptr<mem::GaMemory> memory;
    std::unique_ptr<fitness::FemMux> mux;
    std::unique_ptr<fitness::RomFitnessModule> fem;
    std::unique_ptr<InitModule> init;
    std::unique_ptr<AppModule> app;
    std::unique_ptr<GenerationMonitor> monitor;

    Engine(std::size_t idx, const ParallelGaConfig& cfg, rtl::Kernel& kernel, rtl::Clock& ga_clk,
           rtl::Clock& app_clk) {
        const std::string tag = "_e" + std::to_string(idx);
        core = std::make_unique<core::GaCore>("ga_core" + tag, wires.core_ports(),
                                              core::GaCoreConfig{.external_slot_mask = 0xF0});
        rng = std::make_unique<prng::RngModule>(wires.rng_ports(), cfg.rng_kind);
        memory = std::make_unique<mem::GaMemory>(wires.memory_ports());
        mux = std::make_unique<fitness::FemMux>(wires.mux_ports());
        fem = std::make_unique<fitness::RomFitnessModule>(
            "fem" + tag, wires.slot_fem_ports(0), fitness::fitness_rom(cfg.fitness));
        mux->set_slot(0, fitness::FemMuxSlot{&wires.slots[0].request, &wires.slots[0].value,
                                             &wires.slots[0].valid});
        init = std::make_unique<InitModule>(InitModulePorts{
            wires.ga_load, wires.index, wires.value, wires.data_valid, wires.data_ack,
            init_done});
        core::GaParameters p = cfg.params;
        p.seed = cfg.seeds.at(idx);
        init->program_parameters(p);
        app = std::make_unique<AppModule>(AppModulePorts{init_done, wires.start_ga,
                                                         wires.ga_done, wires.candidate,
                                                         app_done});
        monitor = std::make_unique<GenerationMonitor>(
            MonitorPorts{wires.mon_gen_pulse, wires.mon_gen_id, wires.mon_best_fit,
                         wires.mon_best_ind, wires.mon_fit_sum, wires.mon_bank,
                         wires.mon_pop_size},
            memory.get(), /*keep_populations=*/false);

        kernel.bind(*core, ga_clk);
        kernel.bind(*rng, ga_clk);
        kernel.bind(*memory, ga_clk);
        kernel.bind(*monitor, ga_clk);
        kernel.bind(*init, app_clk);
        kernel.bind(*app, app_clk);
        kernel.bind(*fem, app_clk);
        kernel.add_combinational(*mux);
    }
};

ParallelGaSystem::ParallelGaSystem(ParallelGaConfig cfg) : cfg_(std::move(cfg)) {
    if (cfg_.seeds.empty()) throw std::invalid_argument("ParallelGaSystem: no seeds");
    const ClockTree clocks = make_clock_tree(kernel_);
    ga_clk_ = &clocks.ga_clk;
    app_clk_ = &clocks.app_clk;

    for (std::size_t i = 0; i < cfg_.seeds.size(); ++i)
        engines_.push_back(std::make_unique<Engine>(i, cfg_, kernel_, *ga_clk_, *app_clk_));

    std::vector<BestOfCombiner::EnginePorts> taps;
    taps.reserve(engines_.size());
    for (const auto& e : engines_)
        taps.push_back(BestOfCombiner::EnginePorts{&e->wires.ga_done, &e->wires.candidate,
                                                   &e->wires.mon_best_fit});
    combiner_ = std::make_unique<BestOfCombiner>(std::move(taps));
    kernel_.bind(*combiner_, *ga_clk_);
}

ParallelRunResult ParallelGaSystem::run() {
    kernel_.reset();

    const core::GaParameters eff = core::resolve_parameters(0, cfg_.params);
    const std::uint64_t evals =
        static_cast<std::uint64_t>(eff.pop_size) * (static_cast<std::uint64_t>(eff.n_gens) + 1);
    const std::uint64_t max_edges = (evals * (64ull + 8ull * eff.pop_size) + 100'000) * 4;

    std::vector<std::uint64_t> done_edge(engines_.size(), 0);
    const bool finished = kernel_.run_until(
        *app_clk_,
        [&] {
            for (std::size_t i = 0; i < engines_.size(); ++i) {
                if (done_edge[i] == 0 && engines_[i]->wires.ga_done.read())
                    done_edge[i] = ga_clk_->edges();
            }
            return combiner_->all_done();
        },
        max_edges);
    if (!finished)
        throw std::runtime_error("ParallelGaSystem::run: did not complete within cycle bound");

    ParallelRunResult result;
    result.best_candidate = combiner_->best_candidate();
    result.best_fitness = combiner_->best_fitness();
    result.best_engine = combiner_->best_engine();
    for (std::size_t i = 0; i < engines_.size(); ++i) {
        core::RunResult r;
        r.best_candidate = engines_[i]->core->best_candidate();
        r.best_fitness = engines_[i]->core->best_fitness();
        r.evaluations = engines_[i]->fem->evaluations();
        r.history = engines_[i]->monitor->history();
        result.ga_cycles = std::max(result.ga_cycles, done_edge[i]);
        result.per_engine.push_back(std::move(r));
    }
    return result;
}

// Out-of-line so the unique_ptr<Engine> members destruct with a complete type.
ParallelGaSystem::~ParallelGaSystem() = default;

IslandRunResult run_island_ga(const IslandGaConfig& cfg, const core::FitnessFn& fitness) {
    if (!fitness) throw std::invalid_argument("run_island_ga: null fitness");
    if (cfg.islands == 0) throw std::invalid_argument("run_island_ga: zero islands");

    using core::Member;
    const core::GaParameters p = core::resolve_parameters(0, cfg.params);

    struct Island {
        core::RngState rng;
        std::vector<Member> pop;
        std::uint32_t fit_sum = 0;
        std::uint16_t best_fit = 0;
        std::uint16_t best_ind = 0;
    };

    IslandRunResult result;
    std::vector<Island> islands;
    for (unsigned i = 0; i < cfg.islands; ++i) {
        Island isl{core::RngState(static_cast<std::uint16_t>(
                       cfg.seed_base ^ static_cast<std::uint16_t>(i * 0x9E37u)),
                       cfg.rng_kind),
                   {}, 0, 0, 0};
        isl.pop.resize(p.pop_size);
        for (Member& m : isl.pop) {
            m.candidate = isl.rng.next16();
            m.fitness = fitness(m.candidate);
            ++result.evaluations;
            isl.fit_sum += m.fitness;
            if (m.fitness > isl.best_fit) {
                isl.best_fit = m.fitness;
                isl.best_ind = m.candidate;
            }
        }
        islands.push_back(std::move(isl));
    }

    std::vector<Member> next(p.pop_size);
    for (std::uint32_t gen = 0; gen < p.n_gens; ++gen) {
        for (Island& isl : islands) {
            next[0] = {isl.best_ind, isl.best_fit};
            std::uint32_t sum_new = isl.best_fit;
            std::size_t idx = 1;
            while (idx < p.pop_size) {
                const std::size_t i1 =
                    core::proportionate_select(isl.pop, isl.fit_sum, isl.rng.next16());
                const std::size_t i2 =
                    core::proportionate_select(isl.pop, isl.fit_sum, isl.rng.next16());
                const std::uint16_t rx = isl.rng.next16();
                std::uint16_t o1 = isl.pop[i1].candidate;
                std::uint16_t o2 = isl.pop[i2].candidate;
                if ((rx & 0xF) < p.xover_threshold)
                    std::tie(o1, o2) = core::crossover_pair(o1, o2, (rx >> 4) & 0xF);
                for (std::uint16_t off : {o1, o2}) {
                    const std::uint16_t rm = isl.rng.next16();
                    if ((rm & 0xF) < p.mut_threshold)
                        off ^= static_cast<std::uint16_t>(1u << ((rm >> 4) & 0xF));
                    const std::uint16_t f = fitness(off);
                    ++result.evaluations;
                    next[idx] = {off, f};
                    sum_new += f;
                    if (f > isl.best_fit) {
                        isl.best_fit = f;
                        isl.best_ind = off;
                    }
                    ++idx;
                    if (idx >= p.pop_size) break;
                }
            }
            isl.pop.swap(next);
            isl.fit_sum = sum_new;
        }

        // Ring migration: island i's best-ever member replaces island
        // (i+1)'s worst member (a second-BRAM-port write in hardware).
        if (cfg.migration_interval != 0 && (gen + 1) % cfg.migration_interval == 0 &&
            islands.size() > 1) {
            for (std::size_t i = 0; i < islands.size(); ++i) {
                Island& dst = islands[(i + 1) % islands.size()];
                const Island& src = islands[i];
                auto worst = std::min_element(
                    dst.pop.begin(), dst.pop.end(),
                    [](const Member& a, const Member& b) { return a.fitness < b.fitness; });
                if (src.best_fit > worst->fitness) {
                    dst.fit_sum = dst.fit_sum - worst->fitness + src.best_fit;
                    *worst = {src.best_ind, src.best_fit};
                    if (src.best_fit > dst.best_fit) {
                        dst.best_fit = src.best_fit;
                        dst.best_ind = src.best_ind;
                    }
                }
            }
        }
    }

    for (const Island& isl : islands) {
        result.island_best.push_back(isl.best_fit);
        if (isl.best_fit > result.best_fitness) {
            result.best_fitness = isl.best_fit;
            result.best_candidate = isl.best_ind;
        }
    }
    return result;
}

}  // namespace gaip::system
