#include "system/parallel.hpp"

#include <algorithm>
#include <stdexcept>

#include "fitness/fem.hpp"
#include "fitness/fem_mux.hpp"
#include "fitness/rom_builder.hpp"
#include "mem/ga_memory.hpp"
#include "prng/rng_module.hpp"
#include "system/app_module.hpp"
#include "system/init_module.hpp"
#include "system/monitor.hpp"
#include "system/wires.hpp"
#include "util/bits.hpp"
#include "util/worker_pool.hpp"

namespace gaip::system {

/// One complete GA instance (the Fig. 4 system) inside the parallel array.
/// Owns its private kernel and clock tree: engines share no simulation
/// state, which is what lets the pool run them on independent threads while
/// staying bit-identical to a sequential simulation.
struct ParallelGaSystem::Engine {
    rtl::Kernel kernel;
    rtl::Clock* ga_clk = nullptr;
    rtl::Clock* app_clk = nullptr;

    CoreWireBundle wires;
    rtl::Wire<bool> init_done;
    rtl::Wire<bool> app_done;
    std::unique_ptr<core::GaCore> core;
    std::unique_ptr<prng::RngModule> rng;
    std::unique_ptr<mem::GaMemory> memory;
    std::unique_ptr<fitness::FemMux> mux;
    std::unique_ptr<fitness::RomFitnessModule> fem;
    std::unique_ptr<InitModule> init;
    std::unique_ptr<AppModule> app;
    std::unique_ptr<GenerationMonitor> monitor;

    // run() results (filled on the worker thread, read after join).
    core::RunResult result;
    std::uint64_t done_edge = 0;

    Engine(std::size_t idx, const ParallelGaConfig& cfg) {
        const ClockTree clocks = make_clock_tree(kernel);
        ga_clk = &clocks.ga_clk;
        app_clk = &clocks.app_clk;

        const std::string tag = "_e" + std::to_string(idx);
        core = std::make_unique<core::GaCore>("ga_core" + tag, wires.core_ports(),
                                              core::GaCoreConfig{.external_slot_mask = 0xF0});
        rng = std::make_unique<prng::RngModule>(wires.rng_ports(), cfg.rng_kind);
        memory = std::make_unique<mem::GaMemory>(wires.memory_ports());
        mux = std::make_unique<fitness::FemMux>(wires.mux_ports());
        fem = std::make_unique<fitness::RomFitnessModule>(
            "fem" + tag, wires.slot_fem_ports(0), fitness::fitness_rom(cfg.fitness));
        mux->set_slot(0, fitness::FemMuxSlot{&wires.slots[0].request, &wires.slots[0].value,
                                             &wires.slots[0].valid});
        init = std::make_unique<InitModule>(InitModulePorts{
            wires.ga_load, wires.index, wires.value, wires.data_valid, wires.data_ack,
            init_done});
        core::GaParameters p = cfg.params;
        p.seed = cfg.seeds.at(idx);
        init->program_parameters(p);
        app = std::make_unique<AppModule>(AppModulePorts{init_done, wires.start_ga,
                                                         wires.ga_done, wires.candidate,
                                                         app_done});
        monitor = std::make_unique<GenerationMonitor>(
            MonitorPorts{wires.mon_gen_pulse, wires.mon_gen_id, wires.mon_best_fit,
                         wires.mon_best_ind, wires.mon_fit_sum, wires.mon_bank,
                         wires.mon_pop_size},
            memory.get(), /*keep_populations=*/false);

        kernel.bind(*core, *ga_clk);
        kernel.bind(*rng, *ga_clk);
        kernel.bind(*memory, *ga_clk);
        kernel.bind(*monitor, *ga_clk);
        kernel.bind(*init, *app_clk);
        kernel.bind(*app, *app_clk);
        kernel.bind(*fem, *app_clk);
        kernel.add_combinational(*mux);
    }

    /// Simulate this engine's full flow (init handshake, start pulse, GA,
    /// GA_done) to completion. Must be called by exactly one thread at a
    /// time; every touched object is owned by this engine.
    void run(std::uint64_t max_edges) {
        kernel.reset();

        bool done_seen = false;
        const bool finished = kernel.run_until(
            *app_clk,
            [&] {
                if (!done_seen && wires.ga_done.read()) {
                    done_seen = true;
                    done_edge = ga_clk->edges();
                }
                return app_done.read();
            },
            max_edges);
        if (!finished)
            throw std::runtime_error("ParallelGaSystem::run: engine did not complete "
                                     "within cycle bound");

        result = core::RunResult{};
        result.best_candidate = core->best_candidate();
        result.best_fitness = core->best_fitness();
        result.evaluations = fem->evaluations();
        result.history = monitor->history();
    }
};

ParallelGaSystem::ParallelGaSystem(ParallelGaConfig cfg) : cfg_(std::move(cfg)) {
    if (cfg_.seeds.empty()) throw std::invalid_argument("ParallelGaSystem: no seeds");
    // Engines are built on the calling thread; this also warms the shared
    // fitness-ROM cache before any worker starts.
    for (std::size_t i = 0; i < cfg_.seeds.size(); ++i)
        engines_.push_back(std::make_unique<Engine>(i, cfg_));
}

unsigned ParallelGaSystem::resolved_threads() const noexcept {
    return util::resolve_threads(cfg_.threads, engines_.size());
}

rtl::Kernel& ParallelGaSystem::engine_kernel(std::size_t i) {
    return engines_.at(i)->kernel;
}

ParallelRunResult ParallelGaSystem::run() {
    // Saturating formula bound: adversarial pop/gens configs clamp to
    // "effectively unbounded" instead of wrapping to a tiny bound that
    // would abort healthy engines (same fix as BatchGateRunner's
    // default_cycle_bound).
    const core::GaParameters eff = core::resolve_parameters(0, cfg_.params);
    const std::uint64_t evals =
        util::sat_mul_u64(eff.pop_size, std::uint64_t{eff.n_gens} + 1);
    const std::uint64_t per_eval = util::sat_add_u64(64, util::sat_mul_u64(8, eff.pop_size));
    const std::uint64_t max_edges = util::sat_mul_u64(
        util::sat_add_u64(util::sat_mul_u64(evals, per_eval), 100'000ull), 4);

    // Pool pulling engine indices off a shared counter (the pattern now
    // lives in util::parallel_for_n, shared with FaultCampaign). Each
    // engine is simulated entirely by one worker; the first exception is
    // rethrown after the join.
    util::parallel_for_n(resolved_threads(), engines_.size(),
                         [&](std::size_t i) { engines_[i]->run(max_edges); });

    // Join-time best-of reduction over the engines' exported results.
    BestOfCombiner combiner;
    ParallelRunResult result;
    for (std::size_t i = 0; i < engines_.size(); ++i) {
        combiner.offer(i, engines_[i]->result.best_fitness,
                       engines_[i]->result.best_candidate);
        result.ga_cycles = std::max(result.ga_cycles, engines_[i]->done_edge);
        result.per_engine.push_back(engines_[i]->result);
    }
    result.best_candidate = combiner.best_candidate();
    result.best_fitness = combiner.best_fitness();
    result.best_engine = combiner.best_engine();
    return result;
}

// Out-of-line so the unique_ptr<Engine> members destruct with a complete type.
ParallelGaSystem::~ParallelGaSystem() = default;

IslandRunResult run_island_ga(const IslandGaConfig& cfg, const core::FitnessFn& fitness) {
    if (!fitness) throw std::invalid_argument("run_island_ga: null fitness");
    if (cfg.islands == 0) throw std::invalid_argument("run_island_ga: zero islands");

    using core::Member;
    const core::GaParameters p = core::resolve_parameters(0, cfg.params);

    struct Island {
        core::RngState rng;
        std::vector<Member> pop;
        std::uint32_t fit_sum = 0;
        std::uint16_t best_fit = 0;
        std::uint16_t best_ind = 0;
    };

    IslandRunResult result;
    std::vector<Island> islands;
    for (unsigned i = 0; i < cfg.islands; ++i) {
        Island isl{core::RngState(static_cast<std::uint16_t>(
                       cfg.seed_base ^ static_cast<std::uint16_t>(i * 0x9E37u)),
                       cfg.rng_kind),
                   {}, 0, 0, 0};
        isl.pop.resize(p.pop_size);
        for (Member& m : isl.pop) {
            m.candidate = isl.rng.next16();
            m.fitness = fitness(m.candidate);
            ++result.evaluations;
            isl.fit_sum += m.fitness;
            if (m.fitness > isl.best_fit) {
                isl.best_fit = m.fitness;
                isl.best_ind = m.candidate;
            }
        }
        islands.push_back(std::move(isl));
    }

    std::vector<Member> next(p.pop_size);
    for (std::uint32_t gen = 0; gen < p.n_gens; ++gen) {
        for (Island& isl : islands) {
            next[0] = {isl.best_ind, isl.best_fit};
            std::uint32_t sum_new = isl.best_fit;
            std::size_t idx = 1;
            while (idx < p.pop_size) {
                const std::size_t i1 =
                    core::proportionate_select(isl.pop, isl.fit_sum, isl.rng.next16());
                const std::size_t i2 =
                    core::proportionate_select(isl.pop, isl.fit_sum, isl.rng.next16());
                const std::uint16_t rx = isl.rng.next16();
                std::uint16_t o1 = isl.pop[i1].candidate;
                std::uint16_t o2 = isl.pop[i2].candidate;
                if ((rx & 0xF) < p.xover_threshold)
                    std::tie(o1, o2) = core::crossover_pair(o1, o2, (rx >> 4) & 0xF);
                for (std::uint16_t off : {o1, o2}) {
                    const std::uint16_t rm = isl.rng.next16();
                    if ((rm & 0xF) < p.mut_threshold)
                        off ^= static_cast<std::uint16_t>(1u << ((rm >> 4) & 0xF));
                    const std::uint16_t f = fitness(off);
                    ++result.evaluations;
                    next[idx] = {off, f};
                    sum_new += f;
                    if (f > isl.best_fit) {
                        isl.best_fit = f;
                        isl.best_ind = off;
                    }
                    ++idx;
                    if (idx >= p.pop_size) break;
                }
            }
            isl.pop.swap(next);
            isl.fit_sum = sum_new;
        }

        // Ring migration: island i's best-ever member replaces island
        // (i+1)'s worst member (a second-BRAM-port write in hardware).
        if (cfg.migration_interval != 0 && (gen + 1) % cfg.migration_interval == 0 &&
            islands.size() > 1) {
            for (std::size_t i = 0; i < islands.size(); ++i) {
                Island& dst = islands[(i + 1) % islands.size()];
                const Island& src = islands[i];
                auto worst = std::min_element(
                    dst.pop.begin(), dst.pop.end(),
                    [](const Member& a, const Member& b) { return a.fitness < b.fitness; });
                if (src.best_fit > worst->fitness) {
                    dst.fit_sum = dst.fit_sum - worst->fitness + src.best_fit;
                    *worst = {src.best_ind, src.best_fit};
                    if (src.best_fit > dst.best_fit) {
                        dst.best_fit = src.best_fit;
                        dst.best_ind = src.best_ind;
                    }
                }
            }
        }
    }

    for (const Island& isl : islands) {
        result.island_best.push_back(isl.best_fit);
        if (isl.best_fit > result.best_fitness) {
            result.best_fitness = isl.best_fit;
            result.best_candidate = isl.best_ind;
        }
    }
    return result;
}

}  // namespace gaip::system
