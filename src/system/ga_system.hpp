// GaSystem: the complete single-core system of Fig. 4 — GA core, RNG
// module, GA memory, fitness-mux with up to eight FEM slots (internal
// lookup FEMs and an optional external FEM with inter-chip latency),
// initialization module, application module, and generation monitor — all
// wired and clocked (50 MHz GA domain / 200 MHz peripheral domain). This is
// the entry point examples and benches use.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/behavioral.hpp"
#include "core/ga_core.hpp"
#include "gates/ga_core_gates.hpp"
#include "gates/rng_gates.hpp"
#include "fitness/fem.hpp"
#include "fitness/fem_mux.hpp"
#include "fitness/functions.hpp"
#include "mem/ga_memory.hpp"
#include "prng/rng_module.hpp"
#include "rtl/kernel.hpp"
#include "trace/event.hpp"
#include "trace/jsonl.hpp"
#include "trace/tap.hpp"
#include "trace/vcd.hpp"
#include "system/app_module.hpp"
#include "system/dcm.hpp"
#include "system/init_module.hpp"
#include "system/monitor.hpp"
#include "system/wires.hpp"

namespace gaip::system {

struct GaSystemConfig {
    core::GaParameters params;

    /// Preset pins (Table IV): 0 = user mode (parameters are programmed via
    /// the init handshake), 1..3 = the built-in parameter/seed presets.
    std::uint8_t preset = 0;

    /// If true, the init module is left unprogrammed — the fault-tolerance
    /// scenario where parameter initialization failed and a preset mode
    /// carries the run.
    bool skip_initialization = false;

    /// Extra {index, value} writes appended to the init program after the
    /// six Table III parameters. The core's handshake ACKs every 3-bit
    /// index (unknown ones land in no core register), so extension
    /// registers — the island interconnect's migration interval/count/
    /// policy at indices 6/7 — are programmed over the same two-way
    /// handshake and latched by whichever module snoops the bus, exactly
    /// like the RNG module snoops the seed write.
    std::vector<std::pair<std::uint8_t, std::uint16_t>> extra_init_writes;

    /// Internal lookup FEMs occupying mux slots 0..n-1 (at most the slots
    /// the core's external_slot_mask leaves internal).
    std::vector<fitness::FitnessId> internal_fems = {fitness::FitnessId::kMBf6_2};

    /// Application-specific lookup tables. When non-empty these occupy the
    /// internal slots instead of `internal_fems` — how a real integration
    /// attaches its own fitness modules (e.g. the adaptive-healing example's
    /// temperature-dependent tables).
    std::vector<std::shared_ptr<const mem::BlockRom>> custom_roms;

    /// Optional FEM on the external ports (second-chip device, Fig. 5).
    std::optional<fitness::FitnessId> external_fem;
    unsigned external_latency_cycles = 24;

    /// Which fitness slot the run uses (3-bit fitfunc_select pin).
    std::uint8_t fitfunc_select = 0;

    prng::RngKind rng_kind = prng::RngKind::kCellularAutomaton;
    core::GaCoreConfig core_config{};

    /// Record full population snapshots per generation (needed by the
    /// convergence-scatter benches; costs memory for long runs).
    bool keep_populations = true;

    /// When non-empty, dump a VCD waveform to this path — the GA-module
    /// registers (core, RNG, memory output register) plus the top-level
    /// protocol nets, under a `ga_system` hierarchy — the model's
    /// NC-Verilog/ModelSim waveform visibility (loads in GTKWave).
    std::string vcd_path;

    /// Structured run telemetry (trace/event.hpp). When either field is set
    /// a SystemTap is instantiated and protocol/generation events flow to
    /// the sink(s); when both are unset tracing costs nothing. `trace_sink`
    /// is borrowed (not owned) and must outlive the system; `trace_path`
    /// opens a JSONL file sink owned by the system. Both may be active.
    trace::TraceSink* trace_sink = nullptr;
    std::string trace_path;

    /// Instantiate the fully gate-level GA module (gates::GateLevelGaCore
    /// + gates::GateLevelRngModule) instead of the RT-level models — the
    /// paper's gate-level netlist deliverable running inside the complete
    /// system. Bit- and cycle-exact with the RT level (tested), just
    /// slower to simulate. Requires the CA RNG kind.
    bool use_gate_level_core = false;
};

class GaSystem {
public:
    explicit GaSystem(GaSystemConfig cfg);

    /// Reset and run the whole flow (initialization handshake, start pulse,
    /// optimization, GA_done) to completion. Throws std::runtime_error if
    /// the system does not finish within the internal cycle bound.
    core::RunResult run();

    // --- post-run metrics ---
    /// 50 MHz cycles from the start_GA pulse to GA_done (the GA execution
    /// time the paper measures with its on-fabric counter, Sec. IV-C).
    std::uint64_t ga_cycles() const noexcept { return ga_cycles_; }
    /// Same, in seconds of modeled hardware time.
    double ga_seconds() const noexcept {
        return static_cast<double>(ga_cycles_) / static_cast<double>(kGaClockHz);
    }
    std::uint64_t fitness_evaluations() const noexcept;

    // --- component access (tests, resource report) ---
    rtl::Kernel& kernel() noexcept { return kernel_; }
    rtl::Clock& ga_clock() noexcept { return *ga_clk_; }
    rtl::Clock& app_clock() noexcept { return *app_clk_; }
    /// RT-level core access (only valid when use_gate_level_core is off).
    core::GaCore& core() noexcept { return *core_; }
    bool gate_level() const noexcept { return gate_core_ != nullptr; }
    const gates::GateLevelGaCore& gate_core() const noexcept { return *gate_core_; }
    std::uint16_t best_candidate() const noexcept {
        return gate_core_ ? gate_core_->best_candidate() : core_->best_candidate();
    }
    std::uint16_t best_fitness() const noexcept {
        return gate_core_ ? gate_core_->best_fitness() : core_->best_fitness();
    }
    const mem::GaMemory& memory() const noexcept { return *memory_; }
    /// Mutable memory access: the supervisor's checkpoint/rollback backdoor
    /// (restore the 256x32 population store alongside the scan chain).
    mem::GaMemory& memory() noexcept { return *memory_; }
    /// RT-level RNG module (only valid when use_gate_level_core is off);
    /// exposed so checkpoints can capture/restore the CA state alongside the
    /// core's scan chain — the RNG registers are not stitched into it.
    prng::RngModule& rng_module() noexcept { return *rng_; }
    CoreWireBundle& wires() noexcept { return wires_; }
    InitModule& init_module() noexcept { return *init_; }
    AppModule& app_module() noexcept { return *app_; }
    const GenerationMonitor& monitor() const noexcept { return *monitor_; }
    /// Telemetry tap, or nullptr when tracing is off.
    const trace::SystemTap* tap() const noexcept { return tap_.get(); }
    const GaSystemConfig& config() const noexcept { return cfg_; }

    /// All FEMs (internal slots then the external one, if any).
    std::vector<const fitness::RomFitnessModule*> fems() const;

private:
    GaSystemConfig cfg_;
    rtl::Kernel kernel_;
    rtl::Clock* ga_clk_ = nullptr;
    rtl::Clock* app_clk_ = nullptr;

    CoreWireBundle wires_;
    rtl::Wire<bool> init_done_;
    rtl::Wire<bool> app_done_;

    std::unique_ptr<core::GaCore> core_;
    std::unique_ptr<gates::GateLevelGaCore> gate_core_;
    std::unique_ptr<prng::RngModule> rng_;
    std::unique_ptr<gates::GateLevelRngModule> gate_rng_;
    std::unique_ptr<mem::GaMemory> memory_;
    std::unique_ptr<fitness::FemMux> mux_;
    std::vector<std::unique_ptr<fitness::RomFitnessModule>> internal_fems_;
    std::unique_ptr<fitness::RomFitnessModule> external_fem_;
    std::unique_ptr<InitModule> init_;
    std::unique_ptr<AppModule> app_;
    std::unique_ptr<GenerationMonitor> monitor_;
    std::unique_ptr<trace::VcdWriter> vcd_;
    std::unique_ptr<trace::JsonlSink> trace_file_;
    trace::TeeSink trace_tee_;
    std::unique_ptr<trace::SystemTap> tap_;

    std::uint64_t ga_cycles_ = 0;
};

/// Convenience: build, run, and return the result in one call.
core::RunResult run_ga_system(const GaSystemConfig& cfg);

}  // namespace gaip::system
