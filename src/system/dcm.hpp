// Clock tree of the experimental setup (Sec. IV-B): "A digital clock
// manager core is used to generate the two clocks from the on-board 100 MHz
// clock" — 50 MHz for the GA module (core, RNG, GA memory) and 200 MHz for
// the initialization and application (fitness) modules.
#pragma once

#include "rtl/kernel.hpp"

namespace gaip::system {

inline constexpr std::uint64_t kBoardClockHz = 100'000'000;
inline constexpr std::uint64_t kGaClockHz = 50'000'000;
inline constexpr std::uint64_t kAppClockHz = 200'000'000;

struct ClockTree {
    rtl::Clock& ga_clk;
    rtl::Clock& app_clk;
};

/// Instantiate the DCM-derived clocks on a kernel.
inline ClockTree make_clock_tree(rtl::Kernel& kernel) {
    rtl::Clock& ga = kernel.add_clock("ga_clk_50mhz", kGaClockHz);
    rtl::Clock& app = kernel.add_clock("app_clk_200mhz", kAppClockHz);
    return ClockTree{ga, app};
}

}  // namespace gaip::system
