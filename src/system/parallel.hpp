// Parallel GA extension (the hardware-acceleration direction of Sec. II-B:
// Graham & Nelson [11], Jelodar et al. [12], Nedjah & Mourelle [13], and
// Tang & Yip's parallel configurations [9]).
//
// Two levels are provided:
//
//  * ParallelGaSystem — K complete GA engines (core + RNG + memory + FEM)
//    side by side on one simulated FPGA, each programmed with a different
//    RNG seed, plus a best-of reduction that reports the fittest candidate
//    across engines. This is the "independent parallel runs" configuration:
//    zero inter-core wiring, K x the throughput per unit wall-clock, and it
//    directly exploits the core's headline programmable-seed feature.
//    Everything is cycle-level. Each engine owns its own simulation kernel,
//    so the engines simulate concurrently on a small worker-thread pool —
//    exactly like the K independent fabrics they model — and the result is
//    bit-identical regardless of the thread count.
//
//  * run_island_ga — a behavioral island model with ring migration (each
//    island pushes its best-ever member over its neighbor's worst slot
//    every `migration_interval` generations). Migration needs a write path
//    into a neighbor's population (a second BRAM port in hardware); it is
//    modeled behaviorally and compared against the RTL-parallel and
//    single-population configurations in bench_ablation_parallel.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/behavioral.hpp"
#include "fitness/functions.hpp"
#include "system/ga_system.hpp"

namespace gaip::system {

struct ParallelGaConfig {
    core::GaParameters params;                 ///< shared by every engine
    std::vector<std::uint16_t> seeds;          ///< one engine per seed
    fitness::FitnessId fitness = fitness::FitnessId::kMBf6_2;
    prng::RngKind rng_kind = prng::RngKind::kCellularAutomaton;

    /// Worker threads simulating the engines. 0 = one thread per engine,
    /// capped at the host's hardware concurrency; 1 = run sequentially on
    /// the calling thread. Engines share no wires or kernels, so the
    /// ParallelRunResult is bit-identical for every thread count.
    unsigned threads = 0;
};

struct ParallelRunResult {
    std::uint16_t best_candidate = 0;
    std::uint16_t best_fitness = 0;
    std::size_t best_engine = 0;
    std::vector<core::RunResult> per_engine;
    std::uint64_t ga_cycles = 0;  ///< slowest engine (they run concurrently)
};

/// Best-of reduction applied when the engine workers join: the fittest
/// result wins; ties go to the lowest engine index (the same policy the
/// former clocked combiner module implemented by scanning engines in order
/// with a strict > compare).
class BestOfCombiner {
public:
    void offer(std::size_t engine, std::uint16_t fitness, std::uint16_t candidate) noexcept {
        if (fitness > best_fit_) {
            best_fit_ = fitness;
            best_cand_ = candidate;
            best_idx_ = engine;
        }
    }

    std::uint16_t best_fitness() const noexcept { return best_fit_; }
    std::uint16_t best_candidate() const noexcept { return best_cand_; }
    std::size_t best_engine() const noexcept { return best_idx_; }

private:
    std::uint16_t best_fit_ = 0;
    std::uint16_t best_cand_ = 0;
    std::size_t best_idx_ = 0;
};

class ParallelGaSystem {
public:
    explicit ParallelGaSystem(ParallelGaConfig cfg);
    ~ParallelGaSystem();  // out-of-line: Engine is an incomplete type here

    /// Simulate every engine to completion (concurrently when configured)
    /// and reduce the per-engine results. Deterministic: the result is
    /// independent of the thread count and identical across repeat calls.
    ParallelRunResult run();

    std::size_t engine_count() const noexcept { return engines_.size(); }

    /// Number of worker threads the last/next run() uses after resolving
    /// threads == 0 against the engine count and host concurrency.
    unsigned resolved_threads() const noexcept;

    /// Per-engine kernel access (tests, scheduler statistics).
    rtl::Kernel& engine_kernel(std::size_t i);

private:
    struct Engine;  // full wire bundle + kernel + modules for one GA instance

    ParallelGaConfig cfg_;
    std::vector<std::unique_ptr<Engine>> engines_;
};

struct IslandGaConfig {
    core::GaParameters params;        ///< per-island parameters
    unsigned islands = 4;
    unsigned migration_interval = 8;  ///< generations between migrations
    std::uint16_t seed_base = 0x2961; ///< island i seeds with base ^ (i * 0x9E37)
    prng::RngKind rng_kind = prng::RngKind::kCellularAutomaton;
};

struct IslandRunResult {
    std::uint16_t best_candidate = 0;
    std::uint16_t best_fitness = 0;
    std::uint64_t evaluations = 0;
    std::vector<std::uint16_t> island_best;  ///< per-island best fitness
};

IslandRunResult run_island_ga(const IslandGaConfig& cfg, const core::FitnessFn& fitness);

}  // namespace gaip::system
