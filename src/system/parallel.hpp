// Parallel GA extension (the hardware-acceleration direction of Sec. II-B:
// Graham & Nelson [11], Jelodar et al. [12], Nedjah & Mourelle [13], and
// Tang & Yip's parallel configurations [9]).
//
// Two levels are provided:
//
//  * ParallelGaSystem — an RTL system instantiating K complete GA engines
//    (core + RNG + memory + FEM) side by side on one simulated FPGA, each
//    programmed with a different RNG seed, plus a best-of combiner module
//    that tracks the fittest candidate across engines. This is the
//    "independent parallel runs" configuration: zero inter-core wiring, K x
//    the throughput per unit wall-clock, and it directly exploits the
//    core's headline programmable-seed feature. Everything is cycle-level.
//
//  * run_island_ga — a behavioral island model with ring migration (each
//    island pushes its best-ever member over its neighbor's worst slot
//    every `migration_interval` generations). Migration needs a write path
//    into a neighbor's population (a second BRAM port in hardware); it is
//    modeled behaviorally and compared against the RTL-parallel and
//    single-population configurations in bench_ablation_parallel.
#pragma once

#include <memory>
#include <vector>

#include "core/behavioral.hpp"
#include "fitness/functions.hpp"
#include "system/ga_system.hpp"

namespace gaip::system {

struct ParallelGaConfig {
    core::GaParameters params;                 ///< shared by every engine
    std::vector<std::uint16_t> seeds;          ///< one engine per seed
    fitness::FitnessId fitness = fitness::FitnessId::kMBf6_2;
    prng::RngKind rng_kind = prng::RngKind::kCellularAutomaton;
};

struct ParallelRunResult {
    std::uint16_t best_candidate = 0;
    std::uint16_t best_fitness = 0;
    std::size_t best_engine = 0;
    std::vector<core::RunResult> per_engine;
    std::uint64_t ga_cycles = 0;  ///< slowest engine (they run concurrently)
};

/// Best-of combiner: watches every engine's GA_done/candidate pair and
/// registers the fittest result (it re-evaluates nothing — it compares the
/// engines' exported best fitness taps).
class BestOfCombiner final : public rtl::Module {
public:
    struct EnginePorts {
        rtl::Wire<bool>* done;
        rtl::Wire<std::uint16_t>* candidate;
        rtl::Wire<std::uint16_t>* best_fit;
    };

    explicit BestOfCombiner(std::vector<EnginePorts> engines)
        : Module("best_of_combiner"), engines_(std::move(engines)) {
        attach_all(best_fit_, best_cand_, best_idx_, all_done_);
    }

    void tick() override {
        bool done = !engines_.empty();
        for (std::size_t i = 0; i < engines_.size(); ++i) {
            const EnginePorts& e = engines_[i];
            done = done && e.done->read();
            if (e.done->read() && e.best_fit->read() > best_fit_.read()) {
                best_fit_.load(e.best_fit->read());
                best_cand_.load(e.candidate->read());
                best_idx_.load(static_cast<std::uint8_t>(i));
            }
        }
        all_done_.load(done);
    }

    bool all_done() const noexcept { return all_done_.read(); }
    std::uint16_t best_fitness() const noexcept { return best_fit_.read(); }
    std::uint16_t best_candidate() const noexcept { return best_cand_.read(); }
    std::uint8_t best_engine() const noexcept { return best_idx_.read(); }

private:
    std::vector<EnginePorts> engines_;
    rtl::Reg<std::uint16_t> best_fit_{"comb_best_fit", 0};
    rtl::Reg<std::uint16_t> best_cand_{"comb_best_cand", 0};
    rtl::Reg<std::uint8_t> best_idx_{"comb_best_idx", 0};
    rtl::Reg<bool> all_done_{"comb_all_done", false, 1};
};

class ParallelGaSystem {
public:
    explicit ParallelGaSystem(ParallelGaConfig cfg);
    ~ParallelGaSystem();  // out-of-line: Engine is an incomplete type here

    ParallelRunResult run();

    std::size_t engine_count() const noexcept { return engines_.size(); }
    rtl::Kernel& kernel() noexcept { return kernel_; }
    const BestOfCombiner& combiner() const noexcept { return *combiner_; }

private:
    struct Engine;  // full wire bundle + modules for one GA instance

    ParallelGaConfig cfg_;
    rtl::Kernel kernel_;
    rtl::Clock* ga_clk_ = nullptr;
    rtl::Clock* app_clk_ = nullptr;
    std::vector<std::unique_ptr<Engine>> engines_;
    std::unique_ptr<BestOfCombiner> combiner_;
};

struct IslandGaConfig {
    core::GaParameters params;        ///< per-island parameters
    unsigned islands = 4;
    unsigned migration_interval = 8;  ///< generations between migrations
    std::uint16_t seed_base = 0x2961; ///< island i seeds with base ^ (i * 0x9E37)
    prng::RngKind rng_kind = prng::RngKind::kCellularAutomaton;
};

struct IslandRunResult {
    std::uint16_t best_candidate = 0;
    std::uint16_t best_fitness = 0;
    std::uint64_t evaluations = 0;
    std::vector<std::uint16_t> island_best;  ///< per-island best fitness
};

IslandRunResult run_island_ga(const IslandGaConfig& cfg, const core::FitnessFn& fitness);

}  // namespace gaip::system
