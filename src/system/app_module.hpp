// Application module: the target-application side of the handshakes. Waits
// for the initialization module to finish, issues the start_GA pulse
// (stretched across the 200->50 MHz domain crossing), waits for GA_done and
// latches the delivered best candidate. Supports repeated runs for the
// adaptive (EHW-style) scenarios where the application re-invokes the GA
// whenever the environment drifts.
#pragma once

#include <cstdint>

#include "rtl/module.hpp"

namespace gaip::system {

struct AppModulePorts {
    rtl::Wire<bool>& init_done;   // in
    rtl::Wire<bool>& start_ga;    // out
    rtl::Wire<bool>& ga_done;     // in
    rtl::Wire<std::uint16_t>& candidate;  // in
    rtl::Wire<bool>& app_done;    // out
};

class AppModule final : public rtl::Module {
public:
    explicit AppModule(AppModulePorts ports) : Module("app_module"), p_(ports) {
        attach_all(state_, hold_, result_);
        sense();  // eval() reads the FSM state register only
    }

    void eval() override {
        p_.start_ga.drive(state_.read() == State::kStart);
        p_.app_done.drive(state_.read() == State::kDone);
    }

    void tick() override {
        switch (state_.read()) {
            case State::kWaitInit:
                if (p_.init_done.read()) {
                    hold_.load(kStartHoldCycles);
                    state_.load(State::kStart);
                }
                break;
            case State::kStart:
                // Hold start_GA long enough for the slow domain to sample it.
                if (hold_.read() > 0) {
                    hold_.load(static_cast<std::uint8_t>(hold_.read() - 1));
                } else {
                    state_.load(State::kWaitDone);
                }
                break;
            case State::kWaitDone:
                if (p_.ga_done.read()) {
                    result_.load(p_.candidate.read());
                    state_.load(State::kDone);
                } else if (restart_pending_) {
                    // Supervisor watchdog path: GA_done never came (e.g. an
                    // SEU corrupted the run) and the application re-issues
                    // the start pulse — typically after selecting a PRESET
                    // mode so the rerun cannot depend on corrupted state.
                    restart_pending_ = false;
                    hold_.load(kStartHoldCycles);
                    state_.load(State::kStart);
                }
                break;
            case State::kDone:
                if (restart_pending_) {
                    restart_pending_ = false;
                    hold_.load(kStartHoldCycles);
                    state_.load(State::kStart);
                }
                break;
        }
    }

    void reset_state() override { restart_pending_ = false; }

    bool done() const noexcept { return state_.read() == State::kDone; }
    std::uint16_t result() const noexcept { return result_.read(); }

    /// Software request (from the scenario driver) to run the GA again.
    /// Honored from kDone (adaptive re-invocation) and from kWaitDone (the
    /// supervisor's hung-run recovery: re-pulse start_GA without a reset).
    void request_restart() noexcept { restart_pending_ = true; }

private:
    enum class State : std::uint8_t { kWaitInit = 0, kStart, kWaitDone, kDone };

    /// 8 cycles at 200 MHz = two full 50 MHz periods: the slow domain is
    /// guaranteed to see the start pulse exactly once (edge-detected there).
    static constexpr std::uint8_t kStartHoldCycles = 8;

    AppModulePorts p_;
    bool restart_pending_ = false;
    rtl::Reg<State> state_{"app_state", State::kWaitInit, 2};
    rtl::Reg<std::uint8_t> hold_{"app_hold", 0, 4};
    rtl::Reg<std::uint16_t> result_{"app_result", 0};
};

}  // namespace gaip::system
