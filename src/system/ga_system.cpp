#include "system/ga_system.hpp"

#include <stdexcept>

#include "fitness/rom_builder.hpp"

namespace gaip::system {

GaSystem::GaSystem(GaSystemConfig cfg) : cfg_(std::move(cfg)) {
    const ClockTree clocks = make_clock_tree(kernel_);
    ga_clk_ = &clocks.ga_clk;
    app_clk_ = &clocks.app_clk;

    if (cfg_.use_gate_level_core) {
        gate_core_ = std::make_unique<gates::GateLevelGaCore>("ga_core_gates",
                                                              wires_.core_ports(),
                                                              cfg_.core_config);
    } else {
        core_ = std::make_unique<core::GaCore>("ga_core", wires_.core_ports(),
                                               cfg_.core_config);
    }
    if (cfg_.use_gate_level_core) {
        if (cfg_.rng_kind != prng::RngKind::kCellularAutomaton)
            throw std::invalid_argument(
                "GaSystem: the gate-level GA module only implements the CA RNG");
        gate_rng_ = std::make_unique<gates::GateLevelRngModule>(wires_.rng_ports());
    } else {
        rng_ = std::make_unique<prng::RngModule>(wires_.rng_ports(), cfg_.rng_kind);
    }
    memory_ = std::make_unique<mem::GaMemory>(wires_.memory_ports());
    mux_ = std::make_unique<fitness::FemMux>(wires_.mux_ports());

    // Internal FEM slots: either application-specific tables or the named
    // benchmark functions.
    std::vector<std::pair<std::string, std::shared_ptr<const mem::BlockRom>>> slots;
    if (!cfg_.custom_roms.empty()) {
        for (std::size_t i = 0; i < cfg_.custom_roms.size(); ++i)
            slots.emplace_back("fem_custom_" + std::to_string(i), cfg_.custom_roms[i]);
    } else {
        for (const fitness::FitnessId id : cfg_.internal_fems)
            slots.emplace_back("fem_" + fitness::fitness_name(id), fitness::fitness_rom(id));
    }
    if (slots.size() > fitness::kMaxFitnessSlots)
        throw std::invalid_argument("GaSystem: too many internal FEMs");
    for (std::size_t i = 0; i < slots.size(); ++i) {
        auto fem = std::make_unique<fitness::RomFitnessModule>(
            slots[i].first, wires_.slot_fem_ports(i), slots[i].second);
        mux_->set_slot(i, fitness::FemMuxSlot{&wires_.slots[i].request, &wires_.slots[i].value,
                                              &wires_.slots[i].valid});
        internal_fems_.push_back(std::move(fem));
    }
    if (cfg_.external_fem.has_value()) {
        external_fem_ = std::make_unique<fitness::RomFitnessModule>(
            "ext_fem_" + fitness::fitness_name(*cfg_.external_fem), wires_.external_fem_ports(),
            fitness::fitness_rom(*cfg_.external_fem),
            fitness::FemConfig{.extra_latency_cycles = cfg_.external_latency_cycles});
    }

    init_ = std::make_unique<InitModule>(
        InitModulePorts{wires_.ga_load, wires_.index, wires_.value, wires_.data_valid,
                        wires_.data_ack, init_done_});
    if (!cfg_.skip_initialization) {
        init_->program_parameters(cfg_.params);
        for (const auto& [index, value] : cfg_.extra_init_writes)
            init_->append_write(index, value);
    }

    app_ = std::make_unique<AppModule>(
        AppModulePorts{init_done_, wires_.start_ga, wires_.ga_done, wires_.candidate, app_done_});

    monitor_ = std::make_unique<GenerationMonitor>(
        MonitorPorts{wires_.mon_gen_pulse, wires_.mon_gen_id, wires_.mon_best_fit,
                     wires_.mon_best_ind, wires_.mon_fit_sum, wires_.mon_bank,
                     wires_.mon_pop_size},
        memory_.get(), cfg_.keep_populations);

    // Static pins.
    wires_.preset.drive(cfg_.preset & 0x3);
    wires_.fitfunc_select.drive(cfg_.fitfunc_select & 0x7);

    // Clock domain assignment per the paper's setup.
    if (gate_core_) {
        kernel_.bind(*gate_core_, *ga_clk_);
    } else {
        kernel_.bind(*core_, *ga_clk_);
    }
    if (gate_rng_) {
        kernel_.bind(*gate_rng_, *ga_clk_);
    } else {
        kernel_.bind(*rng_, *ga_clk_);
    }
    kernel_.bind(*memory_, *ga_clk_);
    kernel_.bind(*monitor_, *ga_clk_);
    kernel_.bind(*init_, *app_clk_);
    kernel_.bind(*app_, *app_clk_);
    for (auto& fem : internal_fems_) kernel_.bind(*fem, *app_clk_);
    if (external_fem_) kernel_.bind(*external_fem_, *app_clk_);
    kernel_.add_combinational(*mux_);

    if (!cfg_.vcd_path.empty()) {
        vcd_ = std::make_unique<trace::VcdWriter>(cfg_.vcd_path);
        if (core_) vcd_->add_module(*core_, "ga_system." + core_->name());
        if (rng_) vcd_->add_module(*rng_, "ga_system." + rng_->name());
        vcd_->add_module(*memory_, "ga_system." + memory_->name());
        // Top-level protocol nets — the waveform view of Figs. 8-12 (init
        // handshake, start pulse, fitness handshake, monitor taps).
        const std::string ports = "ga_system.ports";
        vcd_->add_wire(ports, "ga_load", wires_.ga_load, 1);
        vcd_->add_wire(ports, "index", wires_.index, 3);
        vcd_->add_wire(ports, "value", wires_.value);
        vcd_->add_wire(ports, "data_valid", wires_.data_valid, 1);
        vcd_->add_wire(ports, "data_ack", wires_.data_ack, 1);
        vcd_->add_wire(ports, "start_GA", wires_.start_ga, 1);
        vcd_->add_wire(ports, "GA_done", wires_.ga_done, 1);
        vcd_->add_wire(ports, "fitness_request", wires_.fit_request, 1);
        vcd_->add_wire(ports, "fitness_valid", wires_.fit_valid, 1);
        vcd_->add_wire(ports, "fitness_value", wires_.fit_value);
        vcd_->add_wire(ports, "candidate", wires_.candidate);
        vcd_->add_wire(ports, "rn", wires_.rn);
        vcd_->add_wire(ports, "preset", wires_.preset, 2);
        vcd_->add_wire(ports, "mon_gen_pulse", wires_.mon_gen_pulse, 1);
        vcd_->add_wire(ports, "mon_bank", wires_.mon_bank, 1);
        kernel_.add_observer(vcd_.get());
    }

    if (cfg_.trace_sink != nullptr || !cfg_.trace_path.empty()) {
        if (!cfg_.trace_path.empty()) {
            trace_file_ = std::make_unique<trace::JsonlSink>(cfg_.trace_path);
            trace_tee_.add(trace_file_.get());
        }
        trace_tee_.add(cfg_.trace_sink);
        tap_ = std::make_unique<trace::SystemTap>(
            trace::SystemTapPorts{wires_.ga_load, wires_.index, wires_.value,
                                  wires_.data_valid, wires_.data_ack, init_done_,
                                  wires_.start_ga, wires_.ga_done, wires_.preset,
                                  wires_.fit_request, wires_.fit_valid, wires_.fit_value,
                                  wires_.candidate, wires_.mon_gen_pulse, wires_.mon_gen_id,
                                  wires_.mon_best_fit, wires_.mon_fit_sum, wires_.mon_best_ind,
                                  wires_.mon_bank, wires_.mon_pop_size},
            &trace_tee_, &kernel_, ga_clk_, core_.get());
        // Bound to the fast peripheral clock: every GA edge coincides with
        // an app edge, so the tap sees every protocol transition.
        kernel_.bind(*tap_, *app_clk_);
    }
}

std::uint64_t GaSystem::fitness_evaluations() const noexcept {
    std::uint64_t n = 0;
    for (const auto& fem : internal_fems_) n += fem->evaluations();
    if (external_fem_) n += external_fem_->evaluations();
    return n;
}

std::vector<const fitness::RomFitnessModule*> GaSystem::fems() const {
    std::vector<const fitness::RomFitnessModule*> out;
    for (const auto& fem : internal_fems_) out.push_back(fem.get());
    if (external_fem_) out.push_back(external_fem_.get());
    return out;
}

core::RunResult GaSystem::run() {
    kernel_.reset();

    // Static pins must be re-driven after reset (reset clears nothing, but
    // keep them authoritative in case a test poked them).
    wires_.preset.drive(cfg_.preset & 0x3);
    wires_.fitfunc_select.drive(cfg_.fitfunc_select & 0x7);

    // Cycle bound: evaluations x (handshake + selection scan) with a wide
    // safety margin, plus the external FEM latency if configured.
    const core::GaParameters eff = core::resolve_parameters(cfg_.preset, cfg_.params);
    const std::uint64_t evals =
        static_cast<std::uint64_t>(eff.pop_size) * (static_cast<std::uint64_t>(eff.n_gens) + 1);
    const std::uint64_t per_eval =
        64ull + 8ull * eff.pop_size + 4ull * cfg_.external_latency_cycles;
    const std::uint64_t max_ga_cycles = evals * per_eval + 100'000;

    std::uint64_t start_edge = 0;
    bool start_seen = false;
    std::uint64_t done_edge = 0;
    bool done_seen = false;

    const bool finished = kernel_.run_until(
        *app_clk_,
        [&] {
            if (!start_seen && wires_.start_ga.read()) {
                start_seen = true;
                start_edge = ga_clk_->edges();
            }
            if (start_seen && !done_seen && wires_.ga_done.read()) {
                done_seen = true;
                done_edge = ga_clk_->edges();
            }
            return app_done_.read();
        },
        max_ga_cycles * 4 + 10'000);  // in 200 MHz edges
    if (!finished) throw std::runtime_error("GaSystem::run: did not complete within cycle bound");

    ga_cycles_ = done_seen ? (done_edge - start_edge) : 0;

    trace_tee_.flush();

    core::RunResult result;
    result.best_candidate = best_candidate();
    result.best_fitness = best_fitness();
    result.evaluations = fitness_evaluations();
    result.history = monitor_->history();
    return result;
}

core::RunResult run_ga_system(const GaSystemConfig& cfg) {
    GaSystem sys(cfg);
    return sys.run();
}

}  // namespace gaip::system
