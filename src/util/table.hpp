// ASCII / CSV table formatting shared by every bench binary so that the
// reproduced tables print in a consistent, paper-like layout.
#pragma once

#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace gaip::util {

/// A simple column-aligned text table with an optional CSV sink.
class TextTable {
public:
    explicit TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

    void add_row(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

    /// Convenience: build a row out of heterogeneous cells.
    template <typename... Ts>
    void add(const Ts&... cells) {
        std::vector<std::string> row;
        (row.push_back(to_cell(cells)), ...);
        add_row(std::move(row));
    }

    void print(std::ostream& os = std::cout) const {
        std::vector<std::size_t> w(header_.size(), 0);
        auto widen = [&](const std::vector<std::string>& row) {
            for (std::size_t i = 0; i < row.size() && i < w.size(); ++i)
                w[i] = std::max(w[i], row[i].size());
        };
        widen(header_);
        for (const auto& r : rows_) widen(r);

        auto rule = [&] {
            os << '+';
            for (std::size_t x : w) os << std::string(x + 2, '-') << '+';
            os << '\n';
        };
        auto line = [&](const std::vector<std::string>& row) {
            os << '|';
            for (std::size_t i = 0; i < w.size(); ++i) {
                const std::string& c = i < row.size() ? row[i] : std::string{};
                os << ' ' << std::setw(static_cast<int>(w[i])) << std::left << c << " |";
            }
            os << '\n';
        };
        rule();
        line(header_);
        rule();
        for (const auto& r : rows_) line(r);
        rule();
    }

    /// Write the same data as CSV (header + rows). Returns false on IO error.
    bool write_csv(const std::string& path) const {
        std::ofstream f(path);
        if (!f) return false;
        auto emit = [&](const std::vector<std::string>& row) {
            for (std::size_t i = 0; i < row.size(); ++i) {
                if (i) f << ',';
                f << row[i];
            }
            f << '\n';
        };
        emit(header_);
        for (const auto& r : rows_) emit(r);
        return static_cast<bool>(f);
    }

    template <typename T>
    static std::string to_cell(const T& v) {
        if constexpr (std::is_same_v<T, std::string>) {
            return v;
        } else if constexpr (std::is_convertible_v<T, const char*>) {
            return std::string(v);
        } else if constexpr (std::is_floating_point_v<T>) {
            std::ostringstream ss;
            ss << std::fixed << std::setprecision(3) << v;
            return ss.str();
        } else {
            return std::to_string(v);
        }
    }

private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/// Format an unsigned value as fixed-width uppercase hex (paper-style seeds).
inline std::string hex16(std::uint32_t v) {
    std::ostringstream ss;
    ss << std::uppercase << std::hex << std::setw(4) << std::setfill('0') << (v & 0xFFFFu);
    return ss.str();
}

}  // namespace gaip::util
