// Bit-manipulation helpers shared across the RTL model, the PRNG, and the
// genetic operators. Everything here mirrors an operation that is trivially
// realizable in FPGA fabric (masks, slices, concatenation), so the software
// model and the modeled hardware agree bit-for-bit.
#pragma once

#include <concepts>
#include <cstdint>
#include <limits>

namespace gaip::util {

/// Mask with the low `n` bits set. `n == 0` gives 0; `n >= 64` gives all-ones.
constexpr std::uint64_t low_mask(unsigned n) noexcept {
    return n >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << n) - 1;
}

/// Extract bits [hi:lo] of `v` (Verilog-style slice, inclusive bounds).
constexpr std::uint64_t bit_slice(std::uint64_t v, unsigned hi, unsigned lo) noexcept {
    return (v >> lo) & low_mask(hi - lo + 1);
}

/// Test bit `i` of `v`.
constexpr bool bit_test(std::uint64_t v, unsigned i) noexcept {
    return ((v >> i) & 1u) != 0;
}

/// Set (b==true) or clear (b==false) bit `i` of `v`.
constexpr std::uint64_t bit_assign(std::uint64_t v, unsigned i, bool b) noexcept {
    const std::uint64_t m = std::uint64_t{1} << i;
    return b ? (v | m) : (v & ~m);
}

/// Concatenate: `hi` in the upper `lo_width` ... i.e. {hi, lo} with `lo`
/// occupying the low `lo_width` bits (Verilog `{hi, lo}`).
constexpr std::uint64_t bit_concat(std::uint64_t hi, std::uint64_t lo, unsigned lo_width) noexcept {
    return (hi << lo_width) | (lo & low_mask(lo_width));
}

/// Single-point-crossover mask: ones in positions [0, cut), zeros above.
/// This is exactly the mask generator described in Sec. III-B.3 of the paper.
constexpr std::uint16_t crossover_mask(unsigned cut) noexcept {
    return static_cast<std::uint16_t>(low_mask(cut));
}

/// Saturating conversion of a wide non-negative value to u16.
constexpr std::uint16_t sat_u16(std::int64_t v) noexcept {
    if (v < 0) return 0;
    if (v > std::numeric_limits<std::uint16_t>::max()) return 0xFFFFu;
    return static_cast<std::uint16_t>(v);
}

/// Saturating u64 addition: clamps to UINT64_MAX instead of wrapping.
/// Cycle-bound computations (bench/gate_batch_runner.hpp,
/// src/system/parallel.cpp) use these so adversarial pop/gens configs
/// produce "effectively unbounded" instead of a tiny wrapped bound that
/// would flag healthy runs as hangs.
constexpr std::uint64_t sat_add_u64(std::uint64_t a, std::uint64_t b) noexcept {
    std::uint64_t r = 0;
    return __builtin_add_overflow(a, b, &r) ? ~std::uint64_t{0} : r;
}

/// Saturating u64 multiplication: clamps to UINT64_MAX instead of wrapping.
constexpr std::uint64_t sat_mul_u64(std::uint64_t a, std::uint64_t b) noexcept {
    std::uint64_t r = 0;
    return __builtin_mul_overflow(a, b, &r) ? ~std::uint64_t{0} : r;
}

/// In-place 64x64 bit-matrix transpose (Hacker's Delight fig. 7-3,
/// generalized to 64 rows): afterwards bit c of a[r] holds what bit r of
/// a[c] held. The SWAR lane engines use it to convert between "one word
/// per signal bit, one lane per word bit" (the compiled-netlist layout)
/// and "one word per lane" (what per-lane peripheral models want) in
/// ~6*64 word ops instead of width*64 single-bit probes.
inline void transpose64(std::uint64_t a[64]) noexcept {
    std::uint64_t m = 0x00000000FFFFFFFFull;
    for (unsigned j = 32; j != 0; j >>= 1, m ^= m << j) {
        for (unsigned k = 0; k < 64; k = (k + j + 1) & ~j) {
            const std::uint64_t t = ((a[k] >> j) ^ a[k + j]) & m;
            a[k] ^= t << j;
            a[k + j] ^= t;
        }
    }
}

/// Width (in bits) needed to represent `v`.
constexpr unsigned bit_width_of(std::uint64_t v) noexcept {
    unsigned w = 0;
    while (v != 0) { ++w; v >>= 1; }
    return w == 0 ? 1 : w;
}

}  // namespace gaip::util
