// Bit-manipulation helpers shared across the RTL model, the PRNG, and the
// genetic operators. Everything here mirrors an operation that is trivially
// realizable in FPGA fabric (masks, slices, concatenation), so the software
// model and the modeled hardware agree bit-for-bit.
#pragma once

#include <concepts>
#include <cstdint>
#include <limits>

namespace gaip::util {

/// Mask with the low `n` bits set. `n == 0` gives 0; `n >= 64` gives all-ones.
constexpr std::uint64_t low_mask(unsigned n) noexcept {
    return n >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << n) - 1;
}

/// Extract bits [hi:lo] of `v` (Verilog-style slice, inclusive bounds).
constexpr std::uint64_t bit_slice(std::uint64_t v, unsigned hi, unsigned lo) noexcept {
    return (v >> lo) & low_mask(hi - lo + 1);
}

/// Test bit `i` of `v`.
constexpr bool bit_test(std::uint64_t v, unsigned i) noexcept {
    return ((v >> i) & 1u) != 0;
}

/// Set (b==true) or clear (b==false) bit `i` of `v`.
constexpr std::uint64_t bit_assign(std::uint64_t v, unsigned i, bool b) noexcept {
    const std::uint64_t m = std::uint64_t{1} << i;
    return b ? (v | m) : (v & ~m);
}

/// Concatenate: `hi` in the upper `lo_width` ... i.e. {hi, lo} with `lo`
/// occupying the low `lo_width` bits (Verilog `{hi, lo}`).
constexpr std::uint64_t bit_concat(std::uint64_t hi, std::uint64_t lo, unsigned lo_width) noexcept {
    return (hi << lo_width) | (lo & low_mask(lo_width));
}

/// Single-point-crossover mask: ones in positions [0, cut), zeros above.
/// This is exactly the mask generator described in Sec. III-B.3 of the paper.
constexpr std::uint16_t crossover_mask(unsigned cut) noexcept {
    return static_cast<std::uint16_t>(low_mask(cut));
}

/// Saturating conversion of a wide non-negative value to u16.
constexpr std::uint16_t sat_u16(std::int64_t v) noexcept {
    if (v < 0) return 0;
    if (v > std::numeric_limits<std::uint16_t>::max()) return 0xFFFFu;
    return static_cast<std::uint16_t>(v);
}

/// Width (in bits) needed to represent `v`.
constexpr unsigned bit_width_of(std::uint64_t v) noexcept {
    unsigned w = 0;
    while (v != 0) { ++w; v >>= 1; }
    return w == 0 ? 1 : w;
}

}  // namespace gaip::util
