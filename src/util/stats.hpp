// Small summary-statistics helpers used by the benches (convergence
// analysis, RNG quality metrics) and by the property tests.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <span>
#include <vector>

namespace gaip::util {

struct Summary {
    double mean = 0.0;
    double stddev = 0.0;
    double min = 0.0;
    double max = 0.0;
    std::size_t n = 0;
};

/// Mean / population-stddev / min / max of a sample.
template <typename T>
Summary summarize(std::span<const T> xs) {
    Summary s;
    s.n = xs.size();
    if (xs.empty()) return s;
    double sum = 0.0;
    double mn = static_cast<double>(xs.front());
    double mx = mn;
    for (const T& x : xs) {
        const double v = static_cast<double>(x);
        sum += v;
        mn = std::min(mn, v);
        mx = std::max(mx, v);
    }
    s.mean = sum / static_cast<double>(xs.size());
    double acc = 0.0;
    for (const T& x : xs) {
        const double d = static_cast<double>(x) - s.mean;
        acc += d * d;
    }
    s.stddev = std::sqrt(acc / static_cast<double>(xs.size()));
    s.min = mn;
    s.max = mx;
    return s;
}

template <typename T>
Summary summarize(const std::vector<T>& xs) {
    return summarize(std::span<const T>(xs));
}

/// Pearson chi-square statistic of observed bucket counts against a uniform
/// expectation. Used by the PRNG quality tests.
inline double chi_square_uniform(std::span<const std::size_t> buckets, std::size_t total) {
    if (buckets.empty() || total == 0) return 0.0;
    const double expect = static_cast<double>(total) / static_cast<double>(buckets.size());
    double chi = 0.0;
    for (std::size_t c : buckets) {
        const double d = static_cast<double>(c) - expect;
        chi += d * d / expect;
    }
    return chi;
}

/// Lag-1 serial correlation coefficient of a sequence; near 0 for a good RNG.
template <typename T>
double serial_correlation(std::span<const T> xs) {
    if (xs.size() < 2) return 0.0;
    const Summary s = summarize(xs);
    if (s.stddev == 0.0) return 0.0;
    double acc = 0.0;
    for (std::size_t i = 0; i + 1 < xs.size(); ++i) {
        acc += (static_cast<double>(xs[i]) - s.mean) * (static_cast<double>(xs[i + 1]) - s.mean);
    }
    return acc / (static_cast<double>(xs.size() - 1) * s.stddev * s.stddev);
}

/// First generation index at which the mean-fitness improvement to the next
/// generation drops below `frac` (the paper's literal Table V "convergence"
/// definition: "difference in average fitness between the current
/// generation and next generation is less than 5%"). Returns the last index
/// if the series never settles.
inline std::size_t convergence_generation(std::span<const double> mean_fitness, double frac = 0.05) {
    if (mean_fitness.size() < 2) return 0;
    for (std::size_t g = 0; g + 1 < mean_fitness.size(); ++g) {
        const double cur = mean_fitness[g];
        const double nxt = mean_fitness[g + 1];
        if (cur > 0.0 && std::abs(nxt - cur) / cur < frac) return g;
    }
    return mean_fitness.size() - 1;
}

/// Range-normalized settling generation: the first generation whose mean
/// fitness has covered `frac` of the total rise over the run. The paper's
/// literal 5%-of-current-mean rule degenerates for functions riding a large
/// offset (BF6's +3200 makes every step "< 5%" from generation zero), so
/// the Table V bench reports this normalized variant alongside it.
inline std::size_t settling_generation(std::span<const double> mean_fitness, double frac = 0.95) {
    if (mean_fitness.empty()) return 0;
    const double start = mean_fitness.front();
    double peak = start;
    for (double v : mean_fitness) peak = std::max(peak, v);
    if (peak <= start) return 0;
    const double target = start + frac * (peak - start);
    for (std::size_t g = 0; g < mean_fitness.size(); ++g) {
        if (mean_fitness[g] >= target) return g;
    }
    return mean_fitness.size() - 1;
}

}  // namespace gaip::util
