// Minimal work-stealing-free worker pool: parallel_for_n runs `count`
// index-addressed jobs on up to `threads` std::threads with an atomic
// fetch-add cursor — the same scheduling pattern ParallelGaSystem::run has
// used since PR 4, extracted here so FaultCampaign batches and future
// sweeps share one audited implementation instead of growing copies.
//
// Guarantees:
//   * job(i) is invoked exactly once for each i in [0, count);
//   * threads == 1 (or count <= 1) degrades to a plain sequential loop on
//     the calling thread — bit-identical scheduling, no thread creation;
//   * exceptions are captured per worker and the FIRST one (by worker
//     index) is rethrown on the calling thread after all workers join, so
//     a throwing job cannot leak detached threads or torn state;
//   * determinism is the CALLER's job: jobs must write only to
//     index-owned slots (results[i]), never to shared accumulators.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <exception>
#include <thread>
#include <vector>

namespace gaip::util {

/// Resolve a thread-count request against the machine: 0 means "all
/// hardware threads", anything is capped to `jobs` (no idle workers).
inline unsigned resolve_threads(unsigned requested, std::size_t jobs) noexcept {
    unsigned n = requested;
    if (n == 0) {
        n = std::thread::hardware_concurrency();
        if (n == 0) n = 1;
    }
    if (std::size_t{n} > jobs) n = static_cast<unsigned>(jobs == 0 ? 1 : jobs);
    return std::max(1u, n);
}

/// Run job(worker, i) for every i in [0, count) on up to `threads` workers.
/// `worker` is the executing worker's index (0 <= worker < resolved thread
/// count; worker 0 is the calling thread in the sequential degradation), so
/// callers can reuse ONE expensive per-worker context — e.g. a compiled
/// gate engine — across every job that worker picks up.
template <typename Job>
void parallel_for_workers(unsigned threads, std::size_t count, Job&& job) {
    threads = resolve_threads(threads, count);
    if (threads <= 1) {
        for (std::size_t i = 0; i < count; ++i) job(0u, i);
        return;
    }

    std::atomic<std::size_t> next{0};
    std::vector<std::exception_ptr> errors(threads);
    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) {
        workers.emplace_back([&, t] {
            try {
                for (;;) {
                    const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
                    if (i >= count) break;
                    job(t, i);
                }
            } catch (...) {
                errors[t] = std::current_exception();
                // Drain the cursor so siblings stop picking up new jobs.
                next.store(count, std::memory_order_relaxed);
            }
        });
    }
    for (std::thread& w : workers) w.join();
    for (const std::exception_ptr& e : errors)
        if (e) std::rethrow_exception(e);
}

/// Run job(i) for every i in [0, count) on up to `threads` workers.
/// `Job` is invoked as job(std::size_t index).
template <typename Job>
void parallel_for_n(unsigned threads, std::size_t count, Job&& job) {
    parallel_for_workers(threads, count, [&job](unsigned, std::size_t i) { job(i); });
}

}  // namespace gaip::util
