// Kernel template shared by every ISA translation unit. Included inside
// each TU's anonymous namespace so the same source compiles under
// different -m flags without ODR collisions; the surrounding TU then
// exports its table function (generic()/avx2()/avx512()) returning
// pointers to these instantiations.
//
// The whole engine is one expression per gate:
//
//     dst = ((a & b) & ma) ^ ((a ^ b) & mx) ^ inv
//
// applied to W-word lane blocks. GCC/Clang vector extensions give us the
// W=2/4/8 forms as single variables of vector type; with may_alias they
// may legally overlay the plain uint64_t storage, and since slot blocks
// are naturally aligned (storage is 64-byte aligned, each block is W*8
// bytes), plain vector loads/stores are aligned. Scalar masks broadcast
// implicitly in vector-scalar binary ops.

typedef std::uint64_t v2u64 __attribute__((vector_size(16), may_alias));
typedef std::uint64_t v4u64 __attribute__((vector_size(32), may_alias));
typedef std::uint64_t v8u64 __attribute__((vector_size(64), may_alias));

template <unsigned W>
struct VecOf;
template <>
struct VecOf<1> {
    using type = std::uint64_t;
};
template <>
struct VecOf<2> {
    using type = v2u64;
};
template <>
struct VecOf<4> {
    using type = v4u64;
};
template <>
struct VecOf<8> {
    using type = v8u64;
};

template <unsigned W>
void eval_w(const gaip::gates::LaneInstr* code, std::size_t n, std::uint64_t* values) {
    using V = typename VecOf<W>::type;
    V* const v = reinterpret_cast<V*>(values);
    for (std::size_t i = 0; i < n; ++i) {
        const gaip::gates::LaneInstr& c = code[i];
        const V a = v[c.a];
        const V b = v[c.b];
        v[c.dst] = ((a & b) & c.ma) ^ ((a ^ b) & c.mx) ^ c.inv;
    }
}

inline gaip::gates::kernels::KernelFn table(unsigned words) {
    switch (words) {
        case 1: return &eval_w<1>;
        case 2: return &eval_w<2>;
        case 4: return &eval_w<4>;
        case 8: return &eval_w<8>;
        default: return nullptr;
    }
}
