// Word-level construction helpers over the gate netlist: the "simple
// components such as adders, multiplexers" vocabulary the AUDI datapath is
// made of, synthesized down to two-input gates.
#pragma once

#include <string>
#include <vector>

#include "gates/netlist.hpp"

namespace gaip::gates {

/// A word is a vector of nets, LSB first.
using Word = std::vector<Net>;

/// Declare a `width`-bit input word named name[0..width-1].
Word word_input(GateNetlist& nl, const std::string& name, unsigned width);

/// Declare a `width`-bit register word; connect with connect_word_reg.
Word word_reg(GateNetlist& nl, const std::string& name, unsigned width);
void connect_word_reg(GateNetlist& nl, const Word& q, const Word& d);

/// Constant word.
Word word_const(GateNetlist& nl, std::uint64_t value, unsigned width);

// Bitwise operations (operands must have equal width).
Word word_not(GateNetlist& nl, const Word& a);
Word word_and(GateNetlist& nl, const Word& a, const Word& b);
Word word_or(GateNetlist& nl, const Word& a, const Word& b);
Word word_xor(GateNetlist& nl, const Word& a, const Word& b);

/// 2:1 word multiplexer: sel ? when1 : when0.
Word word_mux(GateNetlist& nl, Net sel, const Word& when1, const Word& when0);

/// Ripple-carry adder; result has the operand width (carry-out returned
/// separately).
struct AddResult {
    Word sum;
    Net carry_out;
};
AddResult word_add(GateNetlist& nl, const Word& a, const Word& b, Net carry_in = kNoNet);

/// Unsigned comparison a < b (returns a single net).
Net word_less_than(GateNetlist& nl, const Word& a, const Word& b);

/// Equality a == b.
Net word_equal(GateNetlist& nl, const Word& a, const Word& b);

/// Binary-to-one-hot decoder (2^width outputs).
Word decoder(GateNetlist& nl, const Word& sel);

/// Thermometer mask of `width` bits from a selector: bit i = (i < sel).
/// This is exactly the crossover-mask generator of Sec. III-B.3.
Word thermometer_mask(GateNetlist& nl, const Word& sel, unsigned width);

/// Reduction OR / AND over a word.
Net reduce_or(GateNetlist& nl, const Word& a);
Net reduce_and(GateNetlist& nl, const Word& a);

}  // namespace gaip::gates
