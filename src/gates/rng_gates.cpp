#include "gates/rng_gates.hpp"

#include "prng/ca_prng.hpp"

namespace gaip::gates {

std::vector<Net> RngNetlist::observable_port_nets() const {
    std::vector<Net> keep;
    keep.insert(keep.end(), rn.begin(), rn.end());
    keep.insert(keep.end(), seed_reg.begin(), seed_reg.end());
    return keep;
}

std::unique_ptr<RngNetlist> build_rng_netlist(std::uint16_t rule150_mask) {
    auto out = std::make_unique<RngNetlist>();
    GateNetlist& nl = out->nl;

    // Registers first (their Q nets feed the combinational cones).
    const Word seed = word_reg(nl, "seed", 16);
    const Word state = word_reg(nl, "ca", 16);
    const Word sd = word_reg(nl, "start_d", 1);

    out->reset = nl.input("reset");
    out->ga_load = nl.input("ga_load");
    out->index = word_input(nl, "idx", 3);
    out->value = word_input(nl, "val", 16);
    out->data_valid = nl.input("data_valid");
    out->preset = word_input(nl, "preset", 2);
    out->start = nl.input("start");
    out->rn_next = nl.input("rn_next");

    const Net c0 = nl.constant(false);

    // Seed capture: ga_load & data_valid & index == 5; a zero value remaps
    // to 1 (the CA fixed point guard).
    const Word idxdec = decoder(nl, out->index);
    const Net wr_seed = nl.g_and(out->ga_load, nl.g_and(out->data_valid, idxdec[5]));
    const Net value_zero = nl.g_not(reduce_or(nl, out->value));
    Word seed_in = out->value;
    seed_in[0] = nl.g_or(seed_in[0], value_zero);  // 0 -> 1

    // Start edge detection.
    const Net start_rising = nl.g_and(out->start, nl.g_not(sd[0]));

    // Effective seed: user seed in preset mode 00, built-ins otherwise.
    const Word pdec = decoder(nl, out->preset);
    Word eff_seed;
    eff_seed.reserve(16);
    const Word p1 = word_const(nl, prng::kPresetSeeds[0], 16);
    const Word p2 = word_const(nl, prng::kPresetSeeds[1], 16);
    const Word p3 = word_const(nl, prng::kPresetSeeds[2], 16);
    for (unsigned i = 0; i < 16; ++i) {
        Net v = nl.g_and(pdec[0], seed[i]);
        v = nl.g_or(v, nl.g_and(pdec[1], p1[i]));
        v = nl.g_or(v, nl.g_and(pdec[2], p2[i]));
        v = nl.g_or(v, nl.g_and(pdec[3], p3[i]));
        eff_seed.push_back(v);
    }

    // CA step (rule 90/150 hybrid, null boundary).
    Word next;
    next.reserve(16);
    for (unsigned i = 0; i < 16; ++i) {
        const Net left = (i + 1 < 16) ? state[i + 1] : c0;
        const Net right = (i > 0) ? state[i - 1] : c0;
        Net n = nl.g_xor(left, right);
        if ((rule150_mask >> i) & 1u) n = nl.g_xor(n, state[i]);
        next.push_back(n);
    }

    // Register D logic, mirroring prng::RngModule::tick's priority:
    // seed write > start reload > rn_next step > hold; sync reset to 1.
    for (unsigned i = 0; i < 16; ++i) {
        // seed register: load on seed write, else hold.
        Net d_seed = nl.g_mux(wr_seed, seed_in[i], seed[i]);
        d_seed = nl.g_mux(out->reset, nl.constant(i == 0), d_seed);  // reset value 1
        nl.connect_reg(seed[i], d_seed);

        // CA state: priority wr_seed (hold), start reload, rn_next step.
        Net d_state = state[i];
        d_state = nl.g_mux(out->rn_next, next[i], d_state);
        d_state = nl.g_mux(start_rising, eff_seed[i], d_state);
        d_state = nl.g_mux(wr_seed, state[i], d_state);  // seed write wins: hold
        d_state = nl.g_mux(out->reset, nl.constant(i == 0), d_state);  // reset 1
        nl.connect_reg(state[i], d_state);
    }
    {
        Net d_sd = out->start;
        d_sd = nl.g_mux(out->reset, c0, d_sd);
        nl.connect_reg(sd[0], d_sd);
    }

    out->rn = state;
    out->seed_reg = seed;
    return out;
}

GateLevelRngModule::GateLevelRngModule(prng::RngModulePorts ports)
    : Module("rng_module_gates"), p_(ports), g_(build_rng_netlist()) {}

void GateLevelRngModule::push_inputs() {
    GateNetlist& nl = g_->nl;
    nl.set_input(g_->reset, false);
    nl.set_input(g_->ga_load, p_.ga_load.read());
    nl.set_input(g_->data_valid, p_.data_valid.read());
    nl.set_input(g_->start, p_.start.read());
    nl.set_input(g_->rn_next, p_.rn_next.read());
    auto push_word = [&](const Word& w, std::uint64_t v) {
        for (std::size_t i = 0; i < w.size(); ++i) nl.set_input(w[i], (v >> i) & 1u);
    };
    push_word(g_->index, p_.index.read());
    push_word(g_->value, p_.value.read());
    push_word(g_->preset, p_.preset.read());
}

void GateLevelRngModule::eval() {
    push_inputs();
    g_->nl.eval();
    p_.rn.drive(static_cast<std::uint16_t>(g_->nl.word_value(g_->rn)));
}

void GateLevelRngModule::tick() {
    push_inputs();
    g_->nl.eval();
    g_->nl.clock();
}

void GateLevelRngModule::reset_state() {
    push_inputs();
    g_->nl.set_input(g_->reset, true);
    g_->nl.eval();
    g_->nl.clock();
    g_->nl.set_input(g_->reset, false);
    g_->nl.eval();
}

std::uint16_t GateLevelRngModule::current_state() const {
    return static_cast<std::uint16_t>(g_->nl.word_value(g_->rn));
}

std::uint16_t GateLevelRngModule::seed_register() const {
    return static_cast<std::uint16_t>(g_->nl.word_value(g_->seed_reg));
}

}  // namespace gaip::gates
