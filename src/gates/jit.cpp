#include "gates/jit.hpp"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <future>
#include <map>
#include <mutex>
#include <sstream>
#include <stdexcept>

#if defined(__unix__) || defined(__APPLE__)
#include <dlfcn.h>
#include <unistd.h>
#define GAIP_JIT_POSIX 1
#endif

#include "gates/compiled.hpp"
#include "trace/event.hpp"

namespace gaip::gates::jit {

namespace {

// ---------------------------------------------------------------------------
// Stats + trace plumbing.

struct Counters {
    std::atomic<std::uint64_t> memory_hits{0};
    std::atomic<std::uint64_t> disk_hits{0};
    std::atomic<std::uint64_t> misses{0};
    std::atomic<std::uint64_t> compiles{0};
    std::atomic<std::uint64_t> compile_failures{0};
    std::atomic<std::uint64_t> fallbacks{0};
    std::atomic<std::uint64_t> compile_us_total{0};
};

Counters& counters() {
    static Counters c;
    return c;
}

std::atomic<trace::TraceSink*> g_sink{nullptr};

void emit(trace::TraceEvent e) {
    if (trace::TraceSink* s = g_sink.load(std::memory_order_acquire)) s->on_event(std::move(e));
}

// ---------------------------------------------------------------------------
// Content hash: FNV-1a 64 run twice with different offset bases over the
// same serialized request -> 32 hex chars. Not cryptographic — it only has
// to make accidental collisions between netlist variants implausible.

class Fnv {
public:
    explicit Fnv(std::uint64_t basis) : h_(basis) {}
    void bytes(const void* p, std::size_t n) {
        const auto* b = static_cast<const unsigned char*>(p);
        for (std::size_t i = 0; i < n; ++i) {
            h_ ^= b[i];
            h_ *= 0x100000001B3ull;
        }
    }
    void u64(std::uint64_t v) { bytes(&v, sizeof v); }
    void str(const std::string& s) {
        u64(s.size());
        bytes(s.data(), s.size());
    }
    std::uint64_t value() const noexcept { return h_; }

private:
    std::uint64_t h_;
};

std::string hex64(std::uint64_t v) {
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(v));
    return buf;
}

void hash_request(Fnv& f, const Request& req, const std::string& cxx_id,
                  const std::string& flags) {
    f.str("gaip-jit-abi1");
    f.u64(req.words);
    f.u64(req.slots);
    f.u64(req.n);
    for (std::size_t i = 0; i < req.n; ++i) {
        const LaneInstr& c = req.code[i];
        f.u64(c.dst);
        f.u64(c.a);
        f.u64(c.b);
        f.u64(c.ma);
        f.u64(c.mx);
        f.u64(c.inv);
    }
    f.u64(req.regs_q.size());
    for (const std::uint32_t q : req.regs_q) f.u64(q);
    f.u64(req.regs_d.size());
    for (const std::uint32_t d : req.regs_d) f.u64(d);
    f.str(cxx_id);
    f.str(flags);
}

// ---------------------------------------------------------------------------
// Compiler resolution. GAIP_JIT_CXX wins (set-but-unusable means
// "unavailable" — that is how tests and CI simulate a compilerless host);
// otherwise the compiler that built this binary, then PATH.

bool executable_file(const std::string& path) {
#if defined(GAIP_JIT_POSIX)
    return !path.empty() && path.find('/') != std::string::npos &&
           ::access(path.c_str(), X_OK) == 0;
#else
    (void)path;
    return false;
#endif
}

std::string search_path(const char* name) {
    const char* path = std::getenv("PATH");
    if (path == nullptr) return {};
    std::stringstream ss{std::string(path)};
    std::string dir;
    while (std::getline(ss, dir, ':')) {
        if (dir.empty()) continue;
        const std::string cand = dir + "/" + name;
        if (executable_file(cand)) return cand;
    }
    return {};
}

/// Absolute path of the host compiler, empty when none is usable.
std::string resolve_compiler() {
#if !defined(GAIP_JIT_POSIX)
    return {};
#else
    if (const char* env = std::getenv("GAIP_JIT_CXX")) {
        std::string p = env;
        if (executable_file(p)) return p;
        if (!p.empty() && p.find('/') == std::string::npos) {
            const std::string found = search_path(p.c_str());
            if (!found.empty()) return found;
        }
        return {};  // explicitly requested compiler is unusable -> unavailable
    }
#if defined(GAIP_JIT_HOST_CXX)
    if (executable_file(GAIP_JIT_HOST_CXX)) return GAIP_JIT_HOST_CXX;
#endif
    for (const char* name : {"c++", "g++", "clang++"}) {
        const std::string found = search_path(name);
        if (!found.empty()) return found;
    }
    return {};
#endif
}

struct Toolchain {
    std::string cxx;   // resolved compiler path ("" = unavailable)
    std::string id;    // "path (version first line)"
    std::string flags; // codegen flags, part of the cache key
};

std::string compiler_version_line(const std::string& cxx) {
#if defined(GAIP_JIT_POSIX)
    const std::string cmd = "'" + cxx + "' --version 2>/dev/null";
    std::string line;
    if (FILE* p = ::popen(cmd.c_str(), "r")) {
        char buf[256];
        if (std::fgets(buf, sizeof(buf), p) != nullptr) {
            line = buf;
            while (!line.empty() && (line.back() == '\n' || line.back() == '\r'))
                line.pop_back();
        }
        ::pclose(p);
    }
    return line;
#else
    (void)cxx;
    return {};
#endif
}

const Toolchain& toolchain() {
    // Resolved once per process: compiler identity is part of every cache
    // key, and spawning `--version` per compile would double the
    // subprocess cost. GAIP_JIT_CXX/GAIP_JIT_FLAGS are therefore read at
    // first use — tests that flip them do so before the first compile or
    // accept the pinned resolution.
    static const Toolchain tc = [] {
        Toolchain t;
        t.cxx = resolve_compiler();
        if (!t.cxx.empty()) t.id = t.cxx + " (" + compiler_version_line(t.cxx) + ")";
        // -O2 buys measurably better vector codegen than -O1 on the wide
        // (W=4/8) lane types and still compiles the ~6k-statement GA-core
        // stream in single-digit seconds once the stream is split into
        // modest chunks (see kChunk below).
        t.flags = "-O2 -march=native -fPIC -shared -fno-plt";
        if (const char* extra = std::getenv("GAIP_JIT_FLAGS")) {
            t.flags += ' ';
            t.flags += extra;
        }
        return t;
    }();
    return tc;
}

// ---------------------------------------------------------------------------
// Cache directory.

std::string resolve_cache_dir() {
    const char* env = std::getenv("GAIP_JIT_CACHE");
    if (env != nullptr && *env != '\0') return env;
    if (const char* xdg = std::getenv("XDG_CACHE_HOME"); xdg != nullptr && *xdg != '\0')
        return std::string(xdg) + "/gaip-jit";
    if (const char* home = std::getenv("HOME"); home != nullptr && *home != '\0')
        return std::string(home) + "/.cache/gaip-jit";
    return "/tmp/gaip-jit-cache";
}

// ---------------------------------------------------------------------------
// Code generation.

/// Specialized C++ expression for one instruction. The kernel form
/// ((a & b) & ma) ^ ((a ^ b) & mx) ^ inv with ma/mx/inv in {0, ~0}
/// collapses to the exact operator; non-canonical masks (impossible in the
/// current lowering, but the generator must not silently miscompile) fall
/// back to the literal mask form.
void emit_instr(std::string& out, const LaneInstr& c) {
    constexpr std::uint64_t kAll = ~std::uint64_t{0};
    char buf[96];
    const auto canonical = [&](std::uint64_t m) { return m == 0 || m == kAll; };
    if (canonical(c.ma) && canonical(c.mx) && canonical(c.inv) && (c.ma != 0 || c.mx != 0)) {
        const char* op = nullptr;
        if (c.ma != 0 && c.mx != 0) op = "|";
        else if (c.ma != 0) op = "&";
        else op = "^";
        if (c.a == c.b && c.ma != 0) {
            // NOT (or a degenerate copy) of a single operand.
            std::snprintf(buf, sizeof(buf), "v[%u]=%sv[%u];", c.dst, c.inv ? "~" : "", c.a);
        } else if (c.inv != 0) {
            std::snprintf(buf, sizeof(buf), "v[%u]=~(v[%u]%sv[%u]);", c.dst, c.a, op, c.b);
        } else {
            std::snprintf(buf, sizeof(buf), "v[%u]=v[%u]%sv[%u];", c.dst, c.a, op, c.b);
        }
    } else {
        std::snprintf(buf, sizeof(buf),
                      "v[%u]=((v[%u]&v[%u])&C(0x%llxull))^((v[%u]^v[%u])&C(0x%llxull))^"
                      "C(0x%llxull);",
                      c.dst, c.a, c.b, static_cast<unsigned long long>(c.ma), c.a, c.b,
                      static_cast<unsigned long long>(c.mx),
                      static_cast<unsigned long long>(c.inv));
    }
    out += buf;
    out += '\n';
}

std::string generate_source(const Request& req, const std::string& key) {
    // Chunk the eval body into fixed-size static functions: one 6000-
    // statement function provokes superlinear behavior in the host
    // compiler's register allocator; ~300-statement chunks keep -O2
    // compile time near-linear and cost one direct call each.
    constexpr std::size_t kChunk = 300;
    std::string s;
    s.reserve(64 * req.n + 4096);
    s += "// auto-generated by gaip::gates::jit — do not edit.\n";
    s += "// key " + key + "\n";
    s += "typedef unsigned long long u64;\n";
    const unsigned W = req.words;
    if (W == 1) {
        s += "typedef u64 V;\n";
    } else {
        s += "typedef u64 V __attribute__((vector_size(" + std::to_string(8 * W) +
             "), may_alias));\n";
    }
    // C(x): broadcast a scalar mask to the lane-block type (vector-scalar
    // binary ops broadcast implicitly, but ^ with an explicit cast keeps
    // the generic form valid for W == 1 too).
    s += "#define C(x) ((u64)(x))\n";
    s += "#define AS_V(p) ((V*)__builtin_assume_aligned((p), 64))\n\n";

    const std::size_t chunks = (req.n + kChunk - 1) / kChunk;
    for (std::size_t ch = 0; ch < chunks; ++ch) {
        s += "static void e" + std::to_string(ch) + "(V* v){\n";
        const std::size_t end = std::min(req.n, (ch + 1) * kChunk);
        for (std::size_t i = ch * kChunk; i < end; ++i) emit_instr(s, req.code[i]);
        s += "}\n";
    }
    s += "\nextern \"C\" void gaip_jit_eval(u64* vals){\nV* v=AS_V(vals);\n";
    if (req.n == 0) s += "(void)v;\n";
    for (std::size_t ch = 0; ch < chunks; ++ch) s += "e" + std::to_string(ch) + "(v);\n";
    s += "}\n";

    // Register clocking: two-phase latch (sample every D, then write every
    // Q) with the slot lists fully unrolled. The temporary lives on the
    // stack so concurrent instances clocking DIFFERENT value arrays never
    // share state.
    const std::size_t r = req.regs_q.size();
    s += "\nextern \"C\" void gaip_jit_clock(u64* vals){\nV* v=AS_V(vals);\n";
    if (r == 0) {
        s += "(void)v;\n";
    } else {
        s += "V t[" + std::to_string(r) + "];\n";
        for (std::size_t i = 0; i < r; ++i)
            s += "t[" + std::to_string(i) + "]=v[" + std::to_string(req.regs_d[i]) + "];\n";
        for (std::size_t i = 0; i < r; ++i)
            s += "v[" + std::to_string(req.regs_q[i]) + "]=t[" + std::to_string(i) + "];\n";
    }
    s += "}\n";

    // Scan-chain shift: head gets scan_in, every register passes its value
    // down the chain, the pre-shift tail goes to scan_out — the test-mode
    // mux of GateNetlist::clock, specialized to this chain.
    s += "\nextern \"C\" void gaip_jit_scan(u64* vals, const u64* sin, u64* sout){\n";
    if (r == 0) {
        s += "(void)vals;\nif(sout){for(unsigned w=0;w<" + std::to_string(W) +
             "u;++w)sout[w]=0;}\n";
    } else {
        s += "V* v=AS_V(vals);\n";
        s += "if(sout){__builtin_memcpy(sout,&v[" + std::to_string(req.regs_q.back()) +
             "],sizeof(V));}\n";
        s += "V c;\nif(sin){__builtin_memcpy(&c,sin,sizeof(V));}else{__builtin_memset(&c,0,"
             "sizeof(V));}\n";
        for (const std::uint32_t q : req.regs_q) {
            const std::string qs = std::to_string(q);
            s += "{V t=v[" + qs + "];v[" + qs + "]=c;c=t;}\n";
        }
    }
    s += "}\n";

    // Load-time validation exports: the loader rejects an artifact whose
    // key or ABI tag does not match the request (stale or corrupted file).
    s += "\nextern \"C\" const char gaip_jit_key[] = \"" + key + "\";\n";
    s += "extern \"C\" const unsigned gaip_jit_abi = 1;\n";
    s += "extern \"C\" const unsigned gaip_jit_words = " + std::to_string(W) + "u;\n";
    return s;
}

// ---------------------------------------------------------------------------
// Module: dlopen wrapper + validation.

class ModuleImpl final : public Module {
public:
    ModuleImpl(std::string key, EvalFn e, ClockFn c, ScanFn s, bool hit, double ms)
        : key_(std::move(key)), eval_(e), clock_(c), scan_(s), hit_(hit), ms_(ms) {}

    EvalFn eval() const noexcept override { return eval_; }
    ClockFn clock() const noexcept override { return clock_; }
    ScanFn scan() const noexcept override { return scan_; }
    const std::string& key() const noexcept override { return key_; }
    bool cache_hit() const noexcept override { return hit_; }
    double compile_ms() const noexcept override { return ms_; }

private:
    std::string key_;
    EvalFn eval_;
    ClockFn clock_;
    ScanFn scan_;
    bool hit_;
    double ms_;
};

/// dlopen + validate one artifact; returns nullptr (with a reason) when
/// the file is missing, truncated, or belongs to a different key/ABI.
std::shared_ptr<const Module> load_artifact(const std::string& so_path, const std::string& key,
                                            bool cache_hit, double compile_ms,
                                            std::string* why) {
#if !defined(GAIP_JIT_POSIX)
    if (why) *why = "dlopen unavailable on this platform";
    return nullptr;
#else
    void* h = ::dlopen(so_path.c_str(), RTLD_NOW | RTLD_LOCAL);
    if (h == nullptr) {
        if (why) {
            const char* e = ::dlerror();
            *why = e != nullptr ? e : "dlopen failed";
        }
        return nullptr;
    }
    const auto sym = [&](const char* name) { return ::dlsym(h, name); };
    const char* stored_key = static_cast<const char*>(sym("gaip_jit_key"));
    const unsigned* abi = static_cast<const unsigned*>(sym("gaip_jit_abi"));
    auto eval = reinterpret_cast<Module::EvalFn>(sym("gaip_jit_eval"));
    auto clock = reinterpret_cast<Module::ClockFn>(sym("gaip_jit_clock"));
    auto scan = reinterpret_cast<Module::ScanFn>(sym("gaip_jit_scan"));
    if (stored_key == nullptr || abi == nullptr || *abi != 1 || key != stored_key ||
        eval == nullptr || clock == nullptr || scan == nullptr) {
        // Unload the invalid artifact: none of its pointers escaped, and a
        // LEAKED handle would pin the rejected object in glibc's namespace
        // under this path — dlopen dedups by name, so the post-rebuild
        // reload of the same path would keep returning the stale module
        // and poison the key for the rest of the process.
        ::dlclose(h);
        if (why) *why = "artifact failed validation (stale key, ABI mismatch, or corrupt)";
        return nullptr;
    }
    return std::make_shared<ModuleImpl>(key, eval, clock, scan, cache_hit, compile_ms);
#endif
}

// ---------------------------------------------------------------------------
// In-process registry: one shared_future per key so concurrent campaign
// workers requesting the same netlist block on ONE compile instead of
// racing the compiler. Entries live for the process lifetime (modules are
// never unloaded).

using ModuleFuture = std::shared_future<std::shared_ptr<const Module>>;

std::mutex g_registry_mu;
std::map<std::string, ModuleFuture> g_registry;

std::shared_ptr<const Module> build_module(const Request& req, const std::string& key) {
    namespace fs = std::filesystem;
    const Toolchain& tc = toolchain();
    const std::string dir = cache_dir();
    const std::string so_path = dir + "/" + key + ".so";

    // Disk hit: a valid artifact from an earlier process (or an earlier
    // registry generation) loads without any compiler involvement.
    if (fs::exists(so_path)) {
        std::string why;
        if (auto m = load_artifact(so_path, key, /*cache_hit=*/true, 0.0, &why)) {
            counters().disk_hits.fetch_add(1, std::memory_order_relaxed);
            emit(trace::TraceEvent(trace::kind::kJitCacheHit, 0, 0)
                     .add("key", key)
                     .add("source", std::string("disk"))
                     .add("artifact", so_path));
            return m;
        }
        // Corrupted/truncated/stale artifact: fall through to a clean
        // rebuild that atomically replaces the file.
    }

    counters().misses.fetch_add(1, std::memory_order_relaxed);
    if (tc.cxx.empty()) return nullptr;

    const std::string src_path = dir + "/" + key + ".cpp";
    const std::string log_path = dir + "/" + key + ".log";
    const std::string tmp_path = so_path + ".tmp." + std::to_string(::getpid());
    {
        std::ofstream src(src_path, std::ios::trunc);
        src << generate_source(req, key);
        if (!src) return nullptr;
    }
    const std::string cmd = "'" + tc.cxx + "' " + tc.flags + " -o '" + tmp_path + "' '" +
                            src_path + "' 2> '" + log_path + "'";
    const auto t0 = std::chrono::steady_clock::now();
    const int rc = std::system(cmd.c_str());
    const double ms =
        std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
            .count();
    counters().compile_us_total.fetch_add(static_cast<std::uint64_t>(ms * 1000.0),
                                          std::memory_order_relaxed);
    if (rc != 0) {
        counters().compile_failures.fetch_add(1, std::memory_order_relaxed);
        std::error_code ec;
        fs::remove(tmp_path, ec);
        return nullptr;
    }
    // Atomic publish: concurrent processes compiling the same key each
    // rename their own temp file over the final path; last writer wins and
    // every byte pattern is a complete artifact.
    std::error_code ec;
    fs::rename(tmp_path, so_path, ec);
    if (ec) {
        fs::remove(tmp_path, ec);
        return nullptr;
    }
    std::string why;
    auto m = load_artifact(so_path, key, /*cache_hit=*/false, ms, &why);
    if (!m) {
        counters().compile_failures.fetch_add(1, std::memory_order_relaxed);
        return nullptr;
    }
    counters().compiles.fetch_add(1, std::memory_order_relaxed);
    emit(trace::TraceEvent(trace::kind::kJitCompile, 0, 0)
             .add("key", key)
             .add("words", std::uint64_t{req.words})
             .add("instructions", std::uint64_t{req.n})
             .add("registers", std::uint64_t{req.regs_q.size()})
             .add("compile_ms", ms)
             .add("artifact", so_path));
    return m;
}

}  // namespace

Stats stats() {
    const Counters& c = counters();
    Stats s;
    s.memory_hits = c.memory_hits.load(std::memory_order_relaxed);
    s.disk_hits = c.disk_hits.load(std::memory_order_relaxed);
    s.misses = c.misses.load(std::memory_order_relaxed);
    s.compiles = c.compiles.load(std::memory_order_relaxed);
    s.compile_failures = c.compile_failures.load(std::memory_order_relaxed);
    s.fallbacks = c.fallbacks.load(std::memory_order_relaxed);
    s.compile_ms_total = static_cast<double>(c.compile_us_total.load(std::memory_order_relaxed)) / 1000.0;
    return s;
}

void reset_stats() {
    Counters& c = counters();
    c.memory_hits = 0;
    c.disk_hits = 0;
    c.misses = 0;
    c.compiles = 0;
    c.compile_failures = 0;
    c.fallbacks = 0;
    c.compile_us_total = 0;
}

bool available() { return !toolchain().cxx.empty(); }

std::string compiler_id() { return toolchain().id; }

std::string cache_dir() {
    const std::string dir = resolve_cache_dir();
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    return dir;
}

std::string cache_key(const Request& req) {
    const Toolchain& tc = toolchain();
    Fnv lo(0xCBF29CE484222325ull), hi(0x6C62272E07BB0142ull);
    hash_request(lo, req, tc.id, tc.flags);
    hash_request(hi, req, tc.id, tc.flags);
    return hex64(hi.value()) + hex64(lo.value());
}

void clear_module_registry() {
    const std::lock_guard<std::mutex> lock(g_registry_mu);
    g_registry.clear();
}

void set_trace_sink(trace::TraceSink* sink) {
    g_sink.store(sink, std::memory_order_release);
}

std::shared_ptr<const Module> compile(const Request& req, bool force) {
    if (req.regs_q.size() != req.regs_d.size())
        throw std::invalid_argument("jit::compile: regs_q/regs_d length mismatch");
    const std::string key = cache_key(req);

    // One shared_future per key: the first caller ("owner") compiles,
    // concurrent callers for the same netlist block on the future instead
    // of racing the host compiler.
    std::promise<std::shared_ptr<const Module>> promise;
    ModuleFuture fut;
    bool owner = false;
    {
        const std::lock_guard<std::mutex> lock(g_registry_mu);
        const auto it = g_registry.find(key);
        if (it != g_registry.end()) {
            fut = it->second;
        } else {
            fut = promise.get_future().share();
            g_registry.emplace(key, fut);
            owner = true;
        }
    }
    if (owner) {
        std::shared_ptr<const Module> m;
        try {
            m = build_module(req, key);
        } catch (...) {
            promise.set_value(nullptr);
            const std::lock_guard<std::mutex> lock(g_registry_mu);
            g_registry.erase(key);
            throw;
        }
        promise.set_value(m);
        if (!m) {
            // Do not pin a failed build in the registry: a later call with
            // a repaired environment (or rebuilt artifact) should retry.
            const std::lock_guard<std::mutex> lock(g_registry_mu);
            g_registry.erase(key);
        }
    } else {
        counters().memory_hits.fetch_add(1, std::memory_order_relaxed);
    }

    std::shared_ptr<const Module> m = fut.get();
    if (m != nullptr) {
        if (!owner)
            emit(trace::TraceEvent(trace::kind::kJitCacheHit, 0, 0)
                     .add("key", key)
                     .add("source", std::string("memory")));
        return m;
    }
    counters().fallbacks.fetch_add(1, std::memory_order_relaxed);
    const std::string reason = available()
                                   ? "compilation failed (see cache .log)"
                                   : "no host compiler available";
    emit(trace::TraceEvent(trace::kind::kJitFallback, 0, 0).add("key", key).add("reason",
                                                                                reason));
    if (force)
        throw std::runtime_error("jit::compile: forced JIT unavailable: " + reason +
                                 " (cache: " + cache_dir() + "/" + key + ".log)");
    return nullptr;
}

}  // namespace gaip::gates::jit
