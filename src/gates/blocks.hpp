// Gate-level implementations of the GA core's leaf blocks, verified
// bit-exact against the RT-level/behavioral implementations by the tests in
// tests/gates/. These are the pieces of the paper's flattened gate-level
// netlist whose correctness is nontrivial: the CA PRNG, the crossover unit
// (mask generator + merge network), the mutation unit (decoder + flip), and
// the threshold comparator that implements the programmable rates.
#pragma once

#include "gates/builder.hpp"
#include "prng/ca_prng.hpp"

namespace gaip::gates {

/// Gate-level 16-cell hybrid 90/150 CA PRNG with synchronous seed load.
/// state' = load ? seed : ca_step(state).
struct CaPrngBlock {
    Word state;        // register Q word (the rn output)
    Word seed;         // input word
    Net load;          // input
};
CaPrngBlock build_ca_prng(GateNetlist& nl, std::uint16_t rule150_mask = prng::kRule150Mask);

/// Gate-level single-point crossover unit (Sec. III-B.3 / Fig. 3):
/// mask = thermometer(cut); off1 = (p1 & mask) | (p2 & ~mask); off2
/// symmetric; do_xover bypasses to the parents.
struct CrossoverBlock {
    Word p1, p2;       // input words (16)
    Word cut;          // input word (4)
    Net do_xover;      // input
    Word off1, off2;   // output words (16)
};
CrossoverBlock build_crossover_unit(GateNetlist& nl);

/// Gate-level single-bit mutation unit (Sec. III-B.4): 4:16 decoder +
/// conditional XOR of the selected bit.
struct MutationBlock {
    Word in;           // input word (16)
    Word pos;          // input word (4)
    Net do_mutate;     // input
    Word out;          // output word (16)
};
MutationBlock build_mutation_unit(GateNetlist& nl);

/// Gate-level rate comparator: fires when rand4 < threshold4 — the
/// programmable crossover/mutation rate decision.
struct ThresholdBlock {
    Word rand4;        // input (4)
    Word threshold;    // input (4)
    Net fire;          // output
};
ThresholdBlock build_threshold_compare(GateNetlist& nl);

/// Gate-level array multiplier (shift-and-add, unsigned): a_width x b_width
/// -> a_width + b_width product. The selection-threshold computation needs
/// a 24 x 16 instance (on the FPGA a MULT18X18 plus glue; at gate level a
/// carry-save-free ripple array).
Word build_multiplier(GateNetlist& nl, const Word& a, const Word& b);

/// Gate-level selection-threshold unit (Sec. III-B.2): threshold =
/// (fit_sum * rn) >> 16 — the proportionate-selection scaling step.
struct SelectionThresholdBlock {
    Word fit_sum;     // input (24)
    Word rn;          // input (16)
    Word threshold;   // output (24)
};
SelectionThresholdBlock build_selection_threshold(GateNetlist& nl);

/// The combined genetic-operator datapath: two parents and two random
/// words in; two mutated offspring out. This is the per-pair combinational
/// core of the engine, exercised end-to-end against the behavioral
/// operators.
struct OperatorDatapath {
    Word p1, p2;           // inputs (16)
    Word rand_xo;          // input (16): [3:0] decide, [7:4] cut
    Word rand_mu1;         // input (16): [3:0] decide, [7:4] position
    Word rand_mu2;         // input (16)
    Word xover_threshold;  // input (4)
    Word mut_threshold;    // input (4)
    Word off1, off2;       // outputs (16)
};
OperatorDatapath build_operator_datapath(GateNetlist& nl);

}  // namespace gaip::gates
