// The COMPLETE GA core at gate level.
//
// The paper's shipped artifact is a flattened gate-level netlist of the
// whole engine (controller + datapath + scan chain). This module builds
// exactly that on the gates substrate: every register, every state of the
// controller, every datapath operator (including the 24x16 selection-
// threshold multiplier) synthesized to two-input gates, with the same
// Table II port surface as the RT-level GaCore.
//
// GateLevelGaCore wraps the netlist as an rtl::Module with GaCorePorts, so
// the gate-level core DROPS INTO GaSystem in place of the RT-level one
// (GaSystemConfig::use_gate_level_core). The equivalence tests run the two
// cores through complete optimizations and require bit-identical results,
// histories, and cycle counts — the full-design RT-vs-gate verification of
// the paper's Sec. III-A flow.
#pragma once

#include <memory>

#include "core/ga_core.hpp"
#include "gates/builder.hpp"

namespace gaip::gates {

/// The netlist plus its named port nets.
struct GaCoreNetlist {
    GateNetlist nl;

    // inputs
    Net reset = kNoNet;
    Net ga_load = kNoNet;
    Word index;         // 3
    Word value;         // 16
    Net data_valid = kNoNet;
    Word fit_value;     // 16
    Net fit_valid = kNoNet;
    Word mem_data_in;   // 32
    Net start_ga = kNoNet;
    Word preset;        // 2
    Word rn;            // 16
    Word fitfunc_select;  // 3
    Word fit_value_ext;   // 16
    Net fit_valid_ext = kNoNet;
    Net sel_force_found = kNoNet;

    // outputs
    Net data_ack = kNoNet;
    Net fit_request = kNoNet;
    Word candidate;       // 16
    Word mem_address;     // 8
    Word mem_data_out;    // 32
    Net mem_wr = kNoNet;
    Net ga_done = kNoNet;
    Net rn_next = kNoNet;
    Net sel_found = kNoNet;
    Net mon_gen_pulse = kNoNet;
    Word mon_gen_id;      // 32
    Word mon_best_fit;    // 16
    Word mon_fit_sum;     // 24
    Word mon_best_ind;    // 16
    Net mon_bank = kNoNet;
    Word mon_pop_size;    // 8

    // visibility for tests
    Word state;           // 6 (register word)
    Word gen_id;          // 32
    Word best_fit;        // 16
    Word best_ind;        // 16
    Net bank = kNoNet;

    /// Every output + visibility net above — the keep-roots set for
    /// CompiledNetlist::Options::prune when a caller only observes the
    /// port surface (BatchGateRunner, FaultCampaign).
    std::vector<Net> observable_port_nets() const;
};

/// Build the full core. `external_slot_mask` as in GaCoreConfig.
std::unique_ptr<GaCoreNetlist> build_ga_core_netlist(std::uint8_t external_slot_mask = 0xF0);

/// rtl::Module adapter exposing the gate-level core through GaCorePorts —
/// a drop-in replacement for core::GaCore inside any system assembly.
class GateLevelGaCore final : public rtl::Module {
public:
    GateLevelGaCore(std::string name, core::GaCorePorts ports,
                    core::GaCoreConfig cfg = {});

    void eval() override;
    void tick() override;
    void reset_state() override;

    const GaCoreNetlist& netlist() const noexcept { return *g_; }
    GateStats gate_stats() const { return g_->nl.stats(); }

    // Introspection mirroring core::GaCore (for tests).
    core::GaCore::State state() const;
    std::uint32_t generation() const;
    std::uint16_t best_fitness() const;
    std::uint16_t best_candidate() const;

private:
    void push_inputs();

    core::GaCorePorts p_;
    std::unique_ptr<GaCoreNetlist> g_;
    bool needs_reset_pulse_ = true;
};

}  // namespace gaip::gates
