#include "gates/compiled.hpp"

#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "gates/compiled_kernels.hpp"
#include "gates/jit.hpp"

namespace gaip::gates {

Backend resolve_backend(Backend requested) {
    const char* env = std::getenv("GAIP_JIT");
    if (env != nullptr && *env != '\0') {
        if (std::strcmp(env, "0") == 0 || std::strcmp(env, "off") == 0 ||
            std::strcmp(env, "interp") == 0)
            return Backend::kInterp;
        if (std::strcmp(env, "1") == 0 || std::strcmp(env, "on") == 0 ||
            std::strcmp(env, "jit") == 0)
            return Backend::kJit;
        if (std::strcmp(env, "force") == 0) return Backend::kJitForce;
        throw std::invalid_argument(
            "GAIP_JIT: unknown value \"" + std::string(env) +
            "\" (expected 0/off/interp, 1/on/jit, or force)");
    }
    return requested == Backend::kAuto ? Backend::kInterp : requested;
}

const char* backend_name(Backend b) {
    switch (b) {
        case Backend::kInterp: return "interp";
        case Backend::kJit: return "jit";
        case Backend::kJitForce: return "jit-force";
        case Backend::kAuto: break;
    }
    return "auto";
}

namespace {

constexpr std::uint64_t kAll = ~std::uint64_t{0};
constexpr std::size_t kNoDef = ~std::size_t{0};

/// Symbolic value of a net during compilation: a constant, or a reference
/// to the defining net (self for real definitions, the referent for
/// aliases).
struct Sym {
    bool is_const = false;
    bool const_val = false;
    Net ref = kNoNet;
};

/// Value-numbering key for instruction-stream CSE. The kernel form is
/// fully symmetric in (a, b) — both a&b and a^b commute — so operands are
/// canonicalized a <= b before lookup; the three masks are each 0 or ~0,
/// so they fold into three key bits.
struct VnKey {
    std::uint32_t a;
    std::uint32_t b;
    unsigned masks;  // bit0 = ma, bit1 = mx, bit2 = inv
    bool operator==(const VnKey&) const = default;
};

struct VnHash {
    std::size_t operator()(const VnKey& k) const noexcept {
        std::uint64_t h = (std::uint64_t{k.a} << 35) ^ (std::uint64_t{k.b} << 3) ^ k.masks;
        h *= 0x9E3779B97F4A7C15ull;
        h ^= h >> 29;
        h *= 0xBF58476D1CE4E5B9ull;
        h ^= h >> 32;
        return static_cast<std::size_t>(h);
    }
};

}  // namespace

CompiledNetlist::CompiledNetlist(const GateNetlist& src)
    : CompiledNetlist(src, Options()) {}

CompiledNetlist::CompiledNetlist(const GateNetlist& src, Options opts) {
    if (opts.words != 1 && opts.words != 2 && opts.words != 4 && opts.words != 8)
        throw std::invalid_argument(
            "CompiledNetlist: words must be 1, 2, 4, or 8 (64/128/256/512 lanes)");
    words_ = opts.words;
    kernel_ = kernels::select(words_);

    const std::size_t n = src.net_count();
    ops_.resize(n);

    // ---- Lowering: fold constants, chase buffers/aliases, normalize every
    // surviving gate to kernel-mask form. Instructions here use NET ids;
    // storage slots are assigned after the optimization passes.
    std::vector<Sym> sym(n);
    std::vector<Net> root_net(n, kNoNet);  // net -> defining net (self for defs)
    std::vector<LaneInstr> code;
    code.reserve(n);

    for (Net i = 0; i < n; ++i) {
        const GateOp op = src.op_of(i);
        ops_[i] = op;
        switch (op) {
            case GateOp::kConst0:
            case GateOp::kConst1:
                sym[i] = Sym{.is_const = true, .const_val = (op == GateOp::kConst1)};
                root_net[i] = i;
                ++folded_;
                continue;
            case GateOp::kInput:
            case GateOp::kState:
                sym[i] = Sym{.ref = i};
                root_net[i] = i;
                continue;
            default: break;
        }

        // Normalize the gate to kernel-mask form over the raw fanins.
        bool ka = false, kx = false, kinv = false;  // ma, mx, inv as booleans
        Net fa = src.fanin_a(i);
        Net fb = src.fanin_b(i);
        switch (op) {
            case GateOp::kBuf: fb = fa; break;
            case GateOp::kNot: fb = fa; ka = true; kinv = true; break;  // (a&a)&~0 ^ ~0
            case GateOp::kAnd: ka = true; break;
            case GateOp::kOr: ka = true; kx = true; break;
            case GateOp::kXor: kx = true; break;
            case GateOp::kNand: ka = true; kinv = true; break;
            case GateOp::kNor: ka = true; kx = true; kinv = true; break;
            default: throw std::logic_error("CompiledNetlist: unexpected op");
        }

        if (op == GateOp::kBuf) {
            const Sym s = sym[fa];
            sym[i] = s;
            root_net[i] = s.is_const ? i : s.ref;
            ++aliased_;
            continue;
        }

        const Sym sa = sym[fa];
        const Sym sb = sym[fb];

        // Evaluate symbolically to fold constants and single-operand
        // identities (AND with 1, XOR with 0, x AND x, ...). Meaningful
        // when at least one operand is constant or both refer to the same
        // dynamic net.
        const bool foldable = sa.is_const || sb.is_const ||
                              (!sa.is_const && !sb.is_const && sa.ref == sb.ref);
        if (foldable) {
            // Truth table of the output as a function of the single free
            // variable (or of nothing if both operands are constant).
            auto out_for = [&](bool var) {
                const bool va = sa.is_const ? sa.const_val : var;
                const bool vb = sb.is_const ? sb.const_val : var;
                bool r = false;
                if (ka) r ^= (va && vb);
                if (kx) r ^= (va != vb);
                return r != kinv;
            };
            const bool o0 = out_for(false);
            const bool o1 = out_for(true);
            if (o0 == o1) {  // constant output
                sym[i] = Sym{.is_const = true, .const_val = o0};
                root_net[i] = i;
                ++folded_;
                continue;
            }
            const Net ref = sa.is_const ? sb.ref : sa.ref;
            if (o1) {  // out == var: plain alias
                sym[i] = Sym{.ref = ref};
                root_net[i] = ref;
                ++aliased_;
                continue;
            }
            // out == ~var: emit a NOT instruction on the referent.
            sym[i] = Sym{.ref = i};
            root_net[i] = i;
            code.push_back(LaneInstr{i, ref, ref, kAll, 0, kAll});
            continue;
        }

        // General dynamic two-operand gate.
        sym[i] = Sym{.ref = i};
        root_net[i] = i;
        code.push_back(LaneInstr{i, sa.ref, sb.ref, ka ? kAll : 0, kx ? kAll : 0,
                                 kinv ? kAll : 0});
    }

    base_instructions_ = code.size();

    // ---- CSE: forward value numbering. The stream is single-assignment
    // and operands always reference earlier definitions, so one pass
    // converges. A duplicate's net becomes an alias of the surviving
    // definition — every net stays readable.
    if (opts.cse) {
        std::unordered_map<VnKey, Net, VnHash> vn;
        vn.reserve(code.size());
        std::vector<Net> rep(n);
        for (Net i = 0; i < n; ++i) rep[i] = i;
        std::vector<LaneInstr> kept;
        kept.reserve(code.size());
        for (const LaneInstr& inst : code) {
            std::uint32_t a = rep[inst.a];
            std::uint32_t b = rep[inst.b];
            if (a > b) std::swap(a, b);
            const unsigned masks = (inst.ma ? 1u : 0u) | (inst.mx ? 2u : 0u) |
                                   (inst.inv ? 4u : 0u);
            const auto [it, fresh] = vn.try_emplace(VnKey{a, b, masks}, inst.dst);
            if (fresh) {
                kept.push_back(LaneInstr{inst.dst, a, b, inst.ma, inst.mx, inst.inv});
            } else {
                rep[inst.dst] = it->second;
                ++cse_shared_;
            }
        }
        code = std::move(kept);
        for (Net i = 0; i < n; ++i)
            if (root_net[i] != kNoNet) root_net[i] = rep[root_net[i]];
    }

    // Registers in declaration (= scan-chain) order; D referents resolved
    // now because they seed the liveness roots.
    const std::vector<Net> qs = src.register_q_nets();
    const std::vector<Net> ds = src.register_d_nets();
    for (const Net dn : ds)
        if (dn == kNoNet)
            throw std::logic_error("CompiledNetlist: register has no D connection");

    // ---- Prune + topological reorder: depth-first postorder from the
    // liveness roots (register D pins + caller keep nets) visits exactly
    // the reachable instructions, in an order that keeps each root's cone
    // clustered — dependency-correct (operands emit before users) and
    // cache-friendlier than interleaved emission order.
    std::vector<std::size_t> def_of(n, kNoDef);
    for (std::size_t idx = 0; idx < code.size(); ++idx) def_of[code[idx].dst] = idx;

    if (opts.prune) {
        std::vector<Net> live_roots;
        live_roots.reserve(opts.keep.size() + ds.size());
        for (const Net k : opts.keep) {
            if (k >= n) throw std::invalid_argument("CompiledNetlist: keep net out of range");
            if (!sym[k].is_const) live_roots.push_back(root_net[k]);
        }
        for (const Net dn : ds)
            if (!sym[dn].is_const) live_roots.push_back(root_net[dn]);

        std::vector<char> done(n, 0);
        std::vector<LaneInstr> ordered;
        ordered.reserve(code.size());
        struct Frame {
            Net net;
            unsigned phase;
        };
        std::vector<Frame> stack;
        for (const Net r : live_roots) {
            if (def_of[r] == kNoDef || done[r]) continue;
            stack.push_back(Frame{r, 0});
            while (!stack.empty()) {
                Frame& f = stack.back();
                const LaneInstr& ci = code[def_of[f.net]];
                if (f.phase == 0) {
                    f.phase = 1;
                    const Net a = ci.a;
                    if (def_of[a] != kNoDef && !done[a]) {
                        stack.push_back(Frame{a, 0});
                        continue;
                    }
                }
                if (f.phase == 1) {
                    f.phase = 2;
                    const Net b = ci.b;
                    if (def_of[b] != kNoDef && !done[b]) {
                        stack.push_back(Frame{b, 0});
                        continue;
                    }
                }
                done[f.net] = 1;
                ordered.push_back(ci);
                stack.pop_back();
            }
        }
        pruned_ = code.size() - ordered.size();
        code = std::move(ordered);
        for (std::size_t idx = 0; idx < n; ++idx) def_of[idx] = kNoDef;
        for (std::size_t idx = 0; idx < code.size(); ++idx) def_of[code[idx].dst] = idx;
    }

    // ---- Storage compaction: slot 0/1 hold the two constants, then
    // inputs and register state in net order, then instruction results in
    // final emission order — eval() writes walk memory forward, and at
    // words == 8 every slot block is exactly one 64-byte cache line.
    std::vector<std::uint32_t> slot_of(n, kNoSlot);
    std::uint32_t next_slot = 2;
    for (Net i = 0; i < n; ++i)
        if (ops_[i] == GateOp::kInput || ops_[i] == GateOp::kState) slot_of[i] = next_slot++;
    for (const LaneInstr& inst : code)
        if (def_of[inst.dst] != kNoDef) slot_of[inst.dst] = next_slot++;
    slots_ = next_slot;

    for (LaneInstr& inst : code) {
        inst.dst = slot_of[inst.dst];
        inst.a = slot_of[inst.a];
        inst.b = slot_of[inst.b];
    }
    code_ = std::move(code);

    root_.assign(n, kNoSlot);
    for (Net i = 0; i < n; ++i) {
        if (sym[i].is_const) {
            root_[i] = sym[i].const_val ? 1u : 0u;
            continue;
        }
        root_[i] = slot_of[root_net[i]];  // kNoSlot when the definition was pruned
    }

    regs_q_.reserve(qs.size());
    for (const Net q : qs) regs_q_.push_back(slot_of[q]);
    regs_d_.reserve(ds.size());
    for (const Net dn : ds) {
        const std::uint32_t s = root_[dn];
        if (s == kNoSlot)
            throw std::logic_error("CompiledNetlist: register D net has no live slot");
        regs_d_.push_back(s);
    }
    latch_tmp_.resize(regs_q_.size() * words_);

    // +7 u64 of slack lets base() round up to the next 64-byte boundary.
    store_.assign(std::size_t{slots_} * words_ + 7, 0);
    std::uint64_t* const one = slot_ptr(1);
    for (unsigned w = 0; w < words_; ++w) one[w] = kAll;

    // ---- Backend selection: the interpreter kernel above is always
    // available (cones run on it regardless); the JIT replaces the full
    // eval pass, register clocking and scan shifting with host-compiled
    // specialized code, falling back gracefully unless forced.
    const Backend backend = resolve_backend(opts.backend);
    if (backend == Backend::kJit || backend == Backend::kJitForce) {
        jit::Request req;
        req.code = code_.data();
        req.n = code_.size();
        req.words = words_;
        req.slots = slots_;
        req.regs_q = regs_q_;
        req.regs_d = regs_d_;
        jit_ = jit::compile(req, backend == Backend::kJitForce);
        if (jit_) {
            jit_eval_ = jit_->eval();
            jit_clock_ = jit_->clock();
            jit_scan_ = jit_->scan();
        }
    }
}

std::uint32_t CompiledNetlist::input_slot(Net n, const char* who) const {
    if (n >= ops_.size() || ops_[n] != GateOp::kInput)
        throw std::invalid_argument(std::string(who) + ": not an input net");
    return root_[n];
}

std::uint32_t CompiledNetlist::state_slot(Net n, const char* who) const {
    if (n >= ops_.size() || ops_[n] != GateOp::kState)
        throw std::invalid_argument(std::string(who) + ": not a register net");
    return root_[n];
}

void CompiledNetlist::check_word(unsigned word, const char* who) const {
    if (word >= words_)
        throw std::invalid_argument(std::string(who) + ": word " + std::to_string(word) +
                                    " out of range for a " + std::to_string(words_) +
                                    "-word lane block");
}

void CompiledNetlist::require_single_word(const char* who) const {
    if (words_ != 1)
        throw std::logic_error(std::string(who) +
                               ": single-u64 API requires words() == 1; this block is " +
                               std::to_string(words_) + " words (" +
                               std::to_string(lane_count()) + " lanes) — use the *_word form");
}

void CompiledNetlist::set_input_word(Net n, unsigned word, std::uint64_t lanes) {
    check_word(word, "set_input_word");
    slot_ptr(input_slot(n, "set_input_word"))[word] = lanes;
}

void CompiledNetlist::set_input_lanes(Net n, std::uint64_t lanes) {
    require_single_word("set_input_lanes");
    slot_ptr(input_slot(n, "set_input_lanes"))[0] = lanes;
}

void CompiledNetlist::set_input(Net n, unsigned lane, bool v) {
    if (lane >= lane_count()) throw std::invalid_argument("set_input: lane out of range");
    std::uint64_t& w = slot_ptr(input_slot(n, "set_input"))[lane / kWordBits];
    const std::uint64_t bit = std::uint64_t{1} << (lane % kWordBits);
    w = v ? (w | bit) : (w & ~bit);
}

void CompiledNetlist::set_input_all(Net n, bool v) {
    std::uint64_t* const p = slot_ptr(input_slot(n, "set_input_all"));
    for (unsigned w = 0; w < words_; ++w) p[w] = v ? kAll : 0;
}

void CompiledNetlist::set_word_input(const std::vector<Net>& w, unsigned lane,
                                     std::uint64_t value) {
    if (w.size() < kWordBits && (value >> w.size()) != 0)
        throw std::invalid_argument("set_word_input: value has bits beyond the " +
                                    std::to_string(w.size()) + "-bit word");
    for (std::size_t i = 0; i < w.size(); ++i)
        set_input(w[i], lane, i < kWordBits && ((value >> i) & 1u));
}

void CompiledNetlist::set_register(Net q, unsigned lane, bool v) {
    if (lane >= lane_count()) throw std::invalid_argument("set_register: lane out of range");
    std::uint64_t& w = slot_ptr(state_slot(q, "set_register"))[lane / kWordBits];
    const std::uint64_t bit = std::uint64_t{1} << (lane % kWordBits);
    w = v ? (w | bit) : (w & ~bit);
}

void CompiledNetlist::set_register_word(Net q, unsigned word, std::uint64_t lanes) {
    check_word(word, "set_register_word");
    slot_ptr(state_slot(q, "set_register_word"))[word] = lanes;
}

void CompiledNetlist::set_register_lanes(Net q, std::uint64_t lanes) {
    require_single_word("set_register_lanes");
    slot_ptr(state_slot(q, "set_register_lanes"))[0] = lanes;
}

void CompiledNetlist::xor_register_word(Net q, unsigned word, std::uint64_t mask) {
    check_word(word, "xor_register_word");
    slot_ptr(state_slot(q, "xor_register_word"))[word] ^= mask;
}

void CompiledNetlist::xor_register_lanes(Net q, std::uint64_t mask) {
    require_single_word("xor_register_lanes");
    slot_ptr(state_slot(q, "xor_register_lanes"))[0] ^= mask;
}

void CompiledNetlist::eval() {
    if (jit_eval_ != nullptr) {
        jit_eval_(base());
        return;
    }
    kernel_(code_.data(), code_.size(), base());
}

std::uint32_t CompiledNetlist::make_cone(const std::vector<Net>& sources) {
    std::vector<char> hot(slots_, 0);
    for (const Net s : sources) {
        if (s >= root_.size()) throw std::invalid_argument("make_cone: net not defined");
        const std::uint32_t slot = root_[s];
        if (slot == kNoSlot)
            throw std::logic_error("make_cone: source net " + std::to_string(s) +
                                   " was pruned (compile with Options::keep covering it)");
        hot[slot] = 1;
    }
    // One forward pass suffices: operands always refer to earlier
    // definitions, so fanout membership is decided by the time each
    // instruction is visited.
    std::vector<LaneInstr> cone;
    for (const LaneInstr& inst : code_) {
        if (hot[inst.a] || hot[inst.b]) {
            hot[inst.dst] = 1;
            cone.push_back(inst);
        }
    }
    cones_.push_back(std::move(cone));
    return static_cast<std::uint32_t>(cones_.size() - 1);
}

void CompiledNetlist::eval_cone(std::uint32_t cone) {
    const std::vector<LaneInstr>& c = cones_.at(cone);
    kernel_(c.data(), c.size(), base());
}

std::uint64_t CompiledNetlist::clock(bool test_mode, std::uint64_t scan_in) {
    if (regs_q_.empty()) return 0;
    if (test_mode) {
        require_single_word("clock(test_mode)");
        std::uint64_t out = 0;
        clock_scan(&scan_in, &out);
        return out;
    }
    const std::uint64_t out = slot_ptr(regs_q_.back())[0];
    if (jit_clock_ != nullptr) {
        jit_clock_(base());
        return out;
    }
    const std::size_t r = regs_q_.size();
    for (std::size_t i = 0; i < r; ++i) {
        const std::uint64_t* const d = slot_ptr(regs_d_[i]);
        for (unsigned w = 0; w < words_; ++w) latch_tmp_[i * words_ + w] = d[w];
    }
    for (std::size_t i = 0; i < r; ++i) {
        std::uint64_t* const q = slot_ptr(regs_q_[i]);
        for (unsigned w = 0; w < words_; ++w) q[w] = latch_tmp_[i * words_ + w];
    }
    return out;
}

void CompiledNetlist::clock_gated(const std::uint64_t* enable_words) {
    if (regs_q_.empty()) return;
    const std::size_t r = regs_q_.size();
    if (gate_tmp_.size() < r * words_) gate_tmp_.resize(r * words_);
    // Save every register's Q block, take a normal edge on the active
    // backend, then put the saved state back in the disabled lanes:
    // q = (q_new & enable) | (q_old & ~enable).
    for (std::size_t i = 0; i < r; ++i) {
        const std::uint64_t* const q = slot_ptr(regs_q_[i]);
        for (unsigned w = 0; w < words_; ++w) gate_tmp_[i * words_ + w] = q[w];
    }
    clock();
    for (std::size_t i = 0; i < r; ++i) {
        std::uint64_t* const q = slot_ptr(regs_q_[i]);
        for (unsigned w = 0; w < words_; ++w) {
            const std::uint64_t en = enable_words[w];
            q[w] = (q[w] & en) | (gate_tmp_[i * words_ + w] & ~en);
        }
    }
}

void CompiledNetlist::clock_scan(const std::uint64_t* scan_in, std::uint64_t* scan_out) {
    if (jit_scan_ != nullptr) {
        jit_scan_(base(), scan_in, scan_out);
        return;
    }
    if (regs_q_.empty()) {
        if (scan_out != nullptr)
            for (unsigned w = 0; w < words_; ++w) scan_out[w] = 0;
        return;
    }
    if (scan_out != nullptr) {
        const std::uint64_t* const tail = slot_ptr(regs_q_.back());
        for (unsigned w = 0; w < words_; ++w) scan_out[w] = tail[w];
    }
    std::uint64_t carry[kMaxWords] = {};
    if (scan_in != nullptr)
        for (unsigned w = 0; w < words_; ++w) carry[w] = scan_in[w];
    for (const std::uint32_t q : regs_q_) {
        std::uint64_t* const p = slot_ptr(q);
        for (unsigned w = 0; w < words_; ++w) std::swap(carry[w], p[w]);
    }
}

CompiledNetlist::SlotHandle CompiledNetlist::read_handle(Net n) const {
    if (n >= root_.size()) throw std::invalid_argument("read_handle: net not defined");
    const std::uint32_t s = root_[n];
    if (s == kNoSlot)
        throw std::logic_error("read_handle: net " + std::to_string(n) +
                               " was pruned (compile with Options::keep covering it)");
    return SlotHandle{s};
}

std::uint64_t CompiledNetlist::lanes_word(Net n, unsigned word) const {
    if (n >= root_.size()) throw std::invalid_argument("lanes_word: net not defined");
    check_word(word, "lanes_word");
    const std::uint32_t s = root_[n];
    if (s == kNoSlot)
        throw std::logic_error("lanes_word: net " + std::to_string(n) +
                               " was pruned (compile with Options::keep covering it)");
    return slot_ptr(s)[word];
}

std::uint64_t CompiledNetlist::lanes(Net n) const {
    require_single_word("lanes");
    return lanes_word(n, 0);
}

bool CompiledNetlist::value(Net n, unsigned lane) const {
    if (lane >= lane_count()) throw std::invalid_argument("value: lane out of range");
    return (lanes_word(n, lane / kWordBits) >> (lane % kWordBits)) & 1u;
}

std::uint64_t CompiledNetlist::word_value(const std::vector<Net>& nets, unsigned lane) const {
    if (nets.size() > kWordBits)
        throw std::invalid_argument("word_value: more than " + std::to_string(kWordBits) +
                                    " nets cannot pack into u64");
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < nets.size(); ++i)
        if (value(nets[i], lane)) v |= std::uint64_t{1} << i;
    return v;
}

std::uint64_t CompiledNetlist::scan_tail() const {
    require_single_word("scan_tail");
    return regs_q_.empty() ? 0 : slot_ptr(regs_q_.back())[0];
}

std::uint64_t CompiledNetlist::scan_tail_word(unsigned word) const {
    check_word(word, "scan_tail_word");
    return regs_q_.empty() ? 0 : slot_ptr(regs_q_.back())[word];
}

}  // namespace gaip::gates
