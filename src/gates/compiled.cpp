#include "gates/compiled.hpp"

#include <stdexcept>

namespace gaip::gates {

namespace {

constexpr std::uint64_t kAll = ~std::uint64_t{0};

/// Symbolic value of a net during compilation: a constant, or a (possibly
/// inverted) reference to a dynamic net.
struct Sym {
    bool is_const = false;
    bool const_val = false;
    Net ref = kNoNet;
    bool inverted = false;
};

}  // namespace

CompiledNetlist::CompiledNetlist(const GateNetlist& src) {
    const std::size_t n = src.net_count();
    values_.assign(n, 0);
    root_.assign(n, kNoNet);
    ops_.resize(n);
    code_.reserve(n);

    // Per-net symbolic summary driving folding/chasing decisions.
    std::vector<Sym> sym(n);

    auto resolve = [&](Net x) -> Sym {
        const Sym& s = sym[x];
        return s;
    };

    for (Net i = 0; i < n; ++i) {
        const GateOp op = src.op_of(i);
        ops_[i] = op;
        switch (op) {
            case GateOp::kConst0:
            case GateOp::kConst1: {
                const bool v = (op == GateOp::kConst1);
                sym[i] = Sym{.is_const = true, .const_val = v};
                values_[i] = v ? kAll : 0;
                root_[i] = i;
                ++folded_;
                continue;
            }
            case GateOp::kInput:
            case GateOp::kState:
                sym[i] = Sym{.ref = i};
                root_[i] = i;
                continue;
            default: break;
        }

        // Normalize the gate to kernel-mask form over the raw fanins.
        bool ka = false, kx = false, kinv = false;  // ma, mx, inv as booleans
        Net fa = src.fanin_a(i);
        Net fb = src.fanin_b(i);
        switch (op) {
            case GateOp::kBuf: fb = fa; kx = false; ka = false; break;  // handled below
            case GateOp::kNot: fb = fa; ka = true; kinv = true; break;  // (a&a)&~0 ^ ~0
            case GateOp::kAnd: ka = true; break;
            case GateOp::kOr: ka = true; kx = true; break;
            case GateOp::kXor: kx = true; break;
            case GateOp::kNand: ka = true; kinv = true; break;
            case GateOp::kNor: ka = true; kx = true; kinv = true; break;
            default: throw std::logic_error("CompiledNetlist: unexpected op");
        }

        if (op == GateOp::kBuf) {
            const Sym s = resolve(fa);
            sym[i] = s;
            root_[i] = s.is_const ? i : s.ref;
            if (s.is_const) values_[i] = s.const_val ? kAll : 0;
            if (s.is_const || !s.inverted) {
                ++aliased_;
                continue;
            }
            // Inverted alias: fall through and emit a NOT of the referent.
            fa = fb = s.ref;
            ka = true;
            kx = false;
            kinv = !s.const_val;  // plain NOT (const case handled above)
        }

        Sym sa = resolve(fa);
        Sym sb = resolve(fb);

        // Evaluate symbolically over {0, 1, v, ~v} to fold constants and
        // single-operand identities (AND with 1, XOR with 0, ...). Only
        // meaningful when at least one operand is constant or both refer to
        // the same dynamic net.
        auto known = [&](const Sym& s, bool when_var, bool var_inv) {
            // value of the operand under assumption "referenced var = when_var"
            if (s.is_const) return s.const_val;
            return (when_var != s.inverted) != var_inv;
        };
        const bool foldable =
            (sa.is_const && sb.is_const) || (sa.is_const && !sb.is_const) ||
            (!sa.is_const && sb.is_const) ||
            (!sa.is_const && !sb.is_const && sa.ref == sb.ref);
        if (foldable) {
            // Truth table of the output as a function of the single free
            // variable (or of nothing if both operands are constant).
            auto out_for = [&](bool var) {
                const bool va = known(sa, var, false);
                const bool vb = known(sb, var, false);
                bool r = false;
                if (ka) r ^= (va && vb);
                if (kx) r ^= (va != vb);
                return r != kinv;
            };
            const bool o0 = out_for(false);
            const bool o1 = out_for(true);
            if (o0 == o1) {  // constant output
                sym[i] = Sym{.is_const = true, .const_val = o0};
                values_[i] = o0 ? kAll : 0;
                root_[i] = i;
                ++folded_;
                continue;
            }
            const Net ref = sa.is_const ? sb.ref : sa.ref;
            if (o1) {  // out == var: plain alias
                sym[i] = Sym{.ref = ref};
                root_[i] = ref;
                ++aliased_;
                continue;
            }
            // out == ~var: emit a NOT instruction on the referent.
            sym[i] = Sym{.ref = i};
            root_[i] = i;
            code_.push_back(Instr{i, ref, ref, kAll, 0, kAll});
            continue;
        }

        // General dynamic two-operand gate. Operand-side inversions are
        // absorbed: a' op b == ((a^1) op b); rewrite via kernel algebra.
        //   (a^ia)&(b^ib) and (a^ia)^(b^ib) expand to expressions in
        //   {a&b, a^b, a, b, 1}; rather than grow the ISA, materialize the
        //   inversion only when the source net carries one (never happens
        //   with the current builder, which has no inverted aliases except
        //   via kNot — and kNot emits a real instruction). Guarded anyway:
        if (sa.inverted || sb.inverted)
            throw std::logic_error("CompiledNetlist: unexpected inverted alias operand");
        sym[i] = Sym{.ref = i};
        root_[i] = i;
        code_.push_back(Instr{i, sa.ref, sb.ref, ka ? kAll : 0, kx ? kAll : 0,
                              kinv ? kAll : 0});
    }

    // Registers in declaration (= scan-chain) order, D nets root-resolved.
    regs_q_ = src.register_q_nets();
    const std::vector<Net> d = src.register_d_nets();
    regs_d_.reserve(d.size());
    for (const Net dn : d) {
        if (dn == kNoNet)
            throw std::logic_error("CompiledNetlist: register has no D connection");
        regs_d_.push_back(sym[dn].is_const ? dn : root_[dn]);
    }
    latch_tmp_.resize(regs_q_.size());
}

void CompiledNetlist::set_input_lanes(Net n, std::uint64_t lanes) {
    if (n >= ops_.size() || ops_[n] != GateOp::kInput)
        throw std::invalid_argument("set_input_lanes: not an input net");
    values_[n] = lanes;
}

void CompiledNetlist::set_input(Net n, unsigned lane, bool v) {
    if (n >= ops_.size() || ops_[n] != GateOp::kInput)
        throw std::invalid_argument("set_input: not an input net");
    if (lane >= kLanes) throw std::invalid_argument("set_input: lane out of range");
    const std::uint64_t bit = std::uint64_t{1} << lane;
    values_[n] = v ? (values_[n] | bit) : (values_[n] & ~bit);
}

void CompiledNetlist::set_input_all(Net n, bool v) {
    if (n >= ops_.size() || ops_[n] != GateOp::kInput)
        throw std::invalid_argument("set_input_all: not an input net");
    values_[n] = v ? kAll : 0;
}

void CompiledNetlist::set_word_input(const std::vector<Net>& w, unsigned lane,
                                     std::uint64_t value) {
    for (std::size_t i = 0; i < w.size(); ++i)
        set_input(w[i], lane, (value >> i) & 1u);
}

void CompiledNetlist::set_register(Net q, unsigned lane, bool v) {
    if (q >= ops_.size() || ops_[q] != GateOp::kState)
        throw std::invalid_argument("set_register: not a register net");
    if (lane >= kLanes) throw std::invalid_argument("set_register: lane out of range");
    const std::uint64_t bit = std::uint64_t{1} << lane;
    values_[q] = v ? (values_[q] | bit) : (values_[q] & ~bit);
}

void CompiledNetlist::set_register_lanes(Net q, std::uint64_t lanes) {
    if (q >= ops_.size() || ops_[q] != GateOp::kState)
        throw std::invalid_argument("set_register_lanes: not a register net");
    values_[q] = lanes;
}

void CompiledNetlist::xor_register_lanes(Net q, std::uint64_t mask) {
    if (q >= ops_.size() || ops_[q] != GateOp::kState)
        throw std::invalid_argument("xor_register_lanes: not a register net");
    values_[q] ^= mask;
}

void CompiledNetlist::eval() {
    std::uint64_t* const v = values_.data();
    const Instr* const code = code_.data();
    const std::size_t count = code_.size();
    for (std::size_t i = 0; i < count; ++i) {
        const Instr& c = code[i];
        const std::uint64_t a = v[c.a];
        const std::uint64_t b = v[c.b];
        v[c.dst] = ((a & b) & c.ma) ^ ((a ^ b) & c.mx) ^ c.inv;
    }
}

std::uint64_t CompiledNetlist::clock(bool test_mode, std::uint64_t scan_in) {
    if (regs_q_.empty()) return 0;
    const std::uint64_t out = values_[regs_q_.back()];
    if (test_mode) {
        std::uint64_t carry = scan_in;
        for (const Net q : regs_q_) {
            const std::uint64_t old = values_[q];
            values_[q] = carry;
            carry = old;
        }
    } else {
        for (std::size_t i = 0; i < regs_q_.size(); ++i) latch_tmp_[i] = values_[regs_d_[i]];
        for (std::size_t i = 0; i < regs_q_.size(); ++i) values_[regs_q_[i]] = latch_tmp_[i];
    }
    return out;
}

std::uint64_t CompiledNetlist::lanes(Net n) const {
    if (n >= root_.size()) throw std::invalid_argument("lanes: net not defined");
    return values_[root_[n]];
}

bool CompiledNetlist::value(Net n, unsigned lane) const {
    if (lane >= kLanes) throw std::invalid_argument("value: lane out of range");
    return (lanes(n) >> lane) & 1u;
}

std::uint64_t CompiledNetlist::word_value(const std::vector<Net>& nets, unsigned lane) const {
    if (nets.size() > 64)
        throw std::invalid_argument("word_value: more than 64 nets cannot pack into u64");
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < nets.size(); ++i)
        if (value(nets[i], lane)) v |= std::uint64_t{1} << i;
    return v;
}

std::uint64_t CompiledNetlist::scan_tail() const noexcept {
    return regs_q_.empty() ? 0 : values_[regs_q_.back()];
}

}  // namespace gaip::gates
