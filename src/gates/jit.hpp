// Native-codegen "JIT" backend for CompiledNetlist.
//
// The interpreted lane-block engine (compiled_kernels*) already removed
// per-opcode branching, but every instruction still pays stream dispatch:
// load a 40-byte LaneInstr, load the three masks, apply the generic
// ((a & b) & ma) ^ ((a ^ b) & mx) ^ inv form even when the gate is a plain
// AND. This module goes one step further — the software analogue of the
// paper's Sec. III-D claim that RESYNTHESIZING a specialized netlist beats
// composing generic blocks: the *optimized* instruction stream (post
// CSE/prune/compaction) is lowered to specialized C++ source in which
//   * every slot offset is a compile-time array index (no operand loads),
//   * the three-mask kernel form collapses to the exact operator per gate
//     (a & b, ~(a | b), a ^ b, ~a, ...) — constants folded into literals,
//   * the N-word lane loop is a single vector-typed statement per gate
//     with Options::words baked in,
//   * register clocking and scan-chain muxing are emitted as dedicated
//     gaip_jit_clock / gaip_jit_scan functions with the latch slot lists
//     unrolled,
// then compiled by the HOST toolchain into a shared object and dlopen()ed
// behind the same KernelFn-shaped seam the interpreter uses. Results are
// bit-identical to the interpreter by construction (pure bitwise integer
// ops; tests/gates/test_jit.cpp pins it differentially at every width).
//
// Artifact cache: compiling ~6k statements costs seconds, so artifacts
// live in an on-disk cache keyed by a content hash of (ABI tag, words,
// instruction stream, register slot lists, compiler id, flags). The
// second campaign on the same netlist skips compilation entirely: a
// per-process module registry resolves repeat requests without touching
// the filesystem ("memory" hit), and a valid `<key>.so` on disk loads
// without a compiler invocation ("disk" hit). A corrupted or truncated
// artifact fails validation (dlopen error or key/ABI mismatch) and forces
// a clean rebuild. Hits/misses/compile times are counted process-wide
// (jit::stats()) and emitted as trace events when a sink is attached.
//
// Backend selection: CompiledNetlist::Options::backend picks the engine;
// the GAIP_JIT environment variable overrides it ("0"/"off"/"interp",
// "1"/"on"/"jit", "force" — anything else is rejected loudly, same strict
// contract as GAIP_KERNEL). When JIT is requested but no host compiler is
// available (or codegen fails), the engine falls back to the interpreter
// gracefully — unless forced, which throws. Cache directory:
// GAIP_JIT_CACHE > $XDG_CACHE_HOME/gaip-jit > $HOME/.cache/gaip-jit >
// /tmp/gaip-jit-cache. Compiler: GAIP_JIT_CXX > the compiler that built
// this binary (baked in by CMake) > c++/g++/clang++ from PATH. Extra
// flags: GAIP_JIT_FLAGS (cache-keyed).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace gaip::trace {
class TraceSink;
}

namespace gaip::gates {

struct LaneInstr;

namespace jit {

/// Process-wide cache/compile counters. `misses` counts requests that
/// found no usable artifact (each miss triggers one compiler invocation;
/// `compiles` is the subset that produced a loadable module).
struct Stats {
    std::uint64_t memory_hits = 0;   ///< module already loaded in-process
    std::uint64_t disk_hits = 0;     ///< valid artifact loaded, no compile
    std::uint64_t misses = 0;        ///< no usable artifact found
    std::uint64_t compiles = 0;      ///< successful compiler invocations
    std::uint64_t compile_failures = 0;
    std::uint64_t fallbacks = 0;     ///< JIT requested, interpreter used
    double compile_ms_total = 0.0;   ///< wall time spent inside the compiler
};
Stats stats();
/// Test hook: zero the counters (modules stay loaded).
void reset_stats();

/// Everything the code generator needs from a CompiledNetlist: the final
/// instruction stream over storage slots plus the register latch lists.
struct Request {
    const LaneInstr* code = nullptr;
    std::size_t n = 0;
    unsigned words = 1;
    std::size_t slots = 0;
    /// Register Q / D storage slots in scan-chain order (equal length).
    std::vector<std::uint32_t> regs_q;
    std::vector<std::uint32_t> regs_d;
};

/// A loaded artifact. Function pointers stay valid for the lifetime of
/// the process (modules are never dlclose()d — campaign workers may still
/// hold them).
class Module {
public:
    /// Full combinational pass over the value storage (same layout as the
    /// interpreter: slot s occupies words [s*W, s*W + W) from the base).
    using EvalFn = void (*)(std::uint64_t* values);
    /// Lane-wise register latch (normal-mode clock edge, all words).
    using ClockFn = void (*)(std::uint64_t* values);
    /// One scan-chain shift; scan_in/scan_out are words-long (nullptr:
    /// zeros in / discard out).
    using ScanFn = void (*)(std::uint64_t* values, const std::uint64_t* scan_in,
                            std::uint64_t* scan_out);

    virtual ~Module() = default;
    virtual EvalFn eval() const noexcept = 0;
    virtual ClockFn clock() const noexcept = 0;
    virtual ScanFn scan() const noexcept = 0;
    /// Content-hash key of this artifact (cache filename stem).
    virtual const std::string& key() const noexcept = 0;
    /// True if this module loaded from cache without a compiler run (in
    /// THIS process; a recompiled artifact reports false).
    virtual bool cache_hit() const noexcept = 0;
    /// Compiler wall time for this artifact (0 on cache hits).
    virtual double compile_ms() const noexcept = 0;
};

/// Compile (or fetch from cache) the specialized module for `req`.
/// Returns nullptr — after counting a fallback and emitting a trace event
/// — when no host compiler is available or compilation fails; throws
/// std::runtime_error instead when `force` is set.
std::shared_ptr<const Module> compile(const Request& req, bool force = false);

/// True when a host compiler was resolved (GAIP_JIT_CXX / baked-in / PATH).
bool available();
/// Identity string of the resolved compiler ("path (version line)"), part
/// of the cache key; empty when unavailable.
std::string compiler_id();
/// Resolved artifact cache directory (created on demand).
std::string cache_dir();
/// Content-hash key `compile(req)` would use — exposed for cache tests.
std::string cache_key(const Request& req);

/// Test hook: forget every in-process module handle so the next compile()
/// exercises the on-disk path again. Previously returned modules stay
/// valid.
void clear_module_registry();

/// Attach a telemetry sink for jit_compile / jit_cache_hit / jit_fallback
/// events (nullptr detaches; emission is skipped entirely when detached —
/// same zero-overhead-when-off contract as the system tap).
void set_trace_sink(trace::TraceSink* sink);

}  // namespace jit
}  // namespace gaip::gates
