// AVX2 kernel table: same template as the generic TU, compiled with
// -mavx2 (see src/gates/CMakeLists.txt) so the W=4 block becomes one
// 256-bit vpand/vpxor chain per gate. Only entered after
// __builtin_cpu_supports("avx2") in kernels::select().
#include "gates/compiled.hpp"
#include "gates/compiled_kernels.hpp"

namespace gaip::gates::kernels {

namespace {
#include "gates/compiled_kernels_impl.inl"
}  // namespace

KernelFn avx2(unsigned words) { return table(words); }

}  // namespace gaip::gates::kernels
