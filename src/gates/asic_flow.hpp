// ASIC-flow modeling: the tail of the paper's Fig. 1 design flow ("Digital
// ASIC layout" via standard cells) and its Sec. V claim that the GA module
// was fabricated as a digital ASIC in a radiation-hardened SOI process.
//
// We cannot run Cadence place-and-route, so this module provides the two
// analyses that gate that flow, over the real gate-level netlist:
//   * technology mapping onto a small standard-cell library (one cell per
//     gate op + a scan flip-flop), with per-cell area — total cell area and
//     cell census are exact given the library;
//   * static timing analysis: longest combinational path (register/input ->
//     register/output) by dynamic programming over the netlist's
//     topological order, with per-cell delays — yielding the critical path
//     and the max clock estimate before wire load.
// The default library numbers are representative of a 0.35 um rad-hard SOI
// standard-cell kit (documented per cell); swap them for a real kit's
// datasheet values to retarget.
#pragma once

#include <array>
#include <string>

#include "gates/netlist.hpp"

namespace gaip::gates {

/// Per-cell characteristics of the target standard-cell library.
struct CellInfo {
    const char* name;
    double area_um2;
    double delay_ns;
};

struct StdCellLibrary {
    std::string name = "generic 0.35um rad-hard SOI (representative values)";
    CellInfo inv{"INVX1", 27.0, 0.12};
    CellInfo buf{"BUFX1", 36.0, 0.18};
    CellInfo nand2{"NAND2X1", 36.0, 0.15};
    CellInfo nor2{"NOR2X1", 36.0, 0.18};
    CellInfo and2{"AND2X1", 45.0, 0.22};
    CellInfo or2{"OR2X1", 45.0, 0.25};
    CellInfo xor2{"XOR2X1", 72.0, 0.30};
    CellInfo scan_dff{"SDFFX1", 180.0, 0.45};  // delay = clk->Q
    double dff_setup_ns = 0.25;
};

struct AsicReport {
    // Technology mapping.
    std::array<std::uint32_t, 11> cell_count{};  // indexed by GateOp
    std::uint32_t scan_dffs = 0;
    std::uint32_t total_cells = 0;
    double cell_area_um2 = 0.0;
    double die_area_mm2 = 0.0;  // cell area / utilization

    // Static timing.
    double critical_path_ns = 0.0;  // launch clk->Q + logic + setup
    double max_clock_mhz = 0.0;
    std::vector<Net> critical_path_nets;  // register/input -> endpoint

    double utilization = 0.7;  // assumed placement utilization
};

/// Map the netlist onto the library and run STA.
AsicReport analyze_asic(const GateNetlist& nl, const StdCellLibrary& lib = {});

/// Render the report in the spirit of a synthesis summary.
std::string format_asic_report(const AsicReport& r, const StdCellLibrary& lib = {});

}  // namespace gaip::gates
