// Gate-level netlist substrate.
//
// The paper ships the core as "a gate-level Verilog model [using] simple
// Boolean gates such as NAND, NOR, AND, OR, XOR, and SCAN_REGISTER",
// flattened from the RT-level netlist by in-house scripts + SIS. This
// module provides that abstraction level in the C++ model: a netlist of
// two-input Boolean gates and scan registers with
//   * cycle simulation (single-pass topological evaluation, registers
//     clocked together, full scan-chain shifting in test mode),
//   * exact gate/register statistics (feeding the resource model),
//   * structural Verilog export — the shippable gate-level netlist.
// The leaf blocks of the GA core are synthesized onto it in blocks.hpp and
// verified bit-exact against the RT-level implementations.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace gaip::gates {

using Net = std::uint32_t;
inline constexpr Net kNoNet = 0xFFFFFFFFu;

enum class GateOp : std::uint8_t {
    kConst0 = 0,
    kConst1,
    kInput,  // primary input
    kState,  // register Q output
    kBuf,
    kNot,
    kAnd,
    kOr,
    kXor,
    kNand,
    kNor,
};

const char* gate_op_name(GateOp op);

struct GateStats {
    std::array<std::uint32_t, 11> per_op{};  // indexed by GateOp
    std::uint32_t registers = 0;
    std::uint32_t inputs = 0;
    std::uint32_t logic_gates = 0;  // excludes const/input/state pseudo-gates
};

/// A combinational+sequential gate netlist with single-pass evaluation.
/// Construction discipline: a gate may only read nets that already exist,
/// so build order is a topological order by construction. Register Q nets
/// are state (created before their D cones), which is what breaks cycles.
class GateNetlist {
public:
    /// Declare a primary input (value set per cycle with set_input).
    Net input(std::string name);

    Net constant(bool v);

    /// Two-input gate (kNot/kBuf take only `a`). Returns the output net.
    Net gate(GateOp op, Net a, Net b = kNoNet);

    // Convenience wrappers.
    Net g_not(Net a) { return gate(GateOp::kNot, a); }
    Net g_and(Net a, Net b) { return gate(GateOp::kAnd, a, b); }
    Net g_or(Net a, Net b) { return gate(GateOp::kOr, a, b); }
    Net g_xor(Net a, Net b) { return gate(GateOp::kXor, a, b); }
    Net g_nand(Net a, Net b) { return gate(GateOp::kNand, a, b); }
    Net g_nor(Net a, Net b) { return gate(GateOp::kNor, a, b); }
    Net g_mux(Net sel, Net when1, Net when0) {
        return g_or(g_and(sel, when1), g_and(g_not(sel), when0));
    }

    /// Declare a scan register; returns its Q net. Connect D later (the Q
    /// may feed logic that computes its own D).
    Net reg(std::string name);
    void connect_reg(Net q, Net d);

    /// Mark a net as a named primary output (export/report only).
    void output(std::string name, Net n);

    // --- simulation ---
    void set_input(Net input_net, bool v);
    /// Drive a word input (LSB-first net vector) with `value`. Throws if
    /// `value` carries bits beyond the vector's width — identical strict
    /// contract as CompiledNetlist::set_word_input, so the scalar oracle
    /// and the compiled evaluator reject the same stimulus.
    void set_word_input(const std::vector<Net>& w, std::uint64_t value);
    /// Combinational propagation from current inputs + register state.
    void eval();
    bool value(Net n) const;
    /// Pack the nets' values LSB-first; throws if more than 64 nets are
    /// given (they cannot pack into one word).
    std::uint64_t word_value(const std::vector<Net>& nets) const;
    /// Clock edge: normal mode latches D into every register; test mode
    /// shifts the scan chain by one (scan_in enters the first-declared
    /// register). Returns the scan-out bit (last register's pre-shift Q).
    bool clock(bool test_mode = false, bool scan_in = false);
    /// Backdoor state access for tests.
    void set_register(Net q, bool v);
    /// Current scan-chain tail bit (last-declared register's Q).
    bool scan_tail() const noexcept {
        return regs_.empty() ? false : values_[regs_.back().q] != 0;
    }

    // --- statistics / export / analysis ---
    GateStats stats() const;
    std::size_t net_count() const noexcept { return ops_.size(); }
    std::string to_verilog(const std::string& module_name) const;

    // Structural accessors for analyses (technology mapping, STA).
    GateOp op_of(Net n) const { return ops_.at(n); }
    Net fanin_a(Net n) const { return in_a_.at(n); }
    Net fanin_b(Net n) const { return in_b_.at(n); }
    const std::string& name_of(Net n) const { return names_.at(n); }
    /// D nets of all registers, in declaration order (kNoNet if dangling).
    std::vector<Net> register_d_nets() const {
        std::vector<Net> d;
        d.reserve(regs_.size());
        for (const RegInfo& r : regs_) d.push_back(r.d);
        return d;
    }
    std::vector<Net> register_q_nets() const {
        std::vector<Net> q;
        q.reserve(regs_.size());
        for (const RegInfo& r : regs_) q.push_back(r.q);
        return q;
    }
    const std::vector<std::pair<std::string, Net>>& named_outputs() const { return outputs_; }

private:
    struct RegInfo {
        Net q = kNoNet;
        Net d = kNoNet;
        std::string name;
    };

    std::vector<GateOp> ops_;    // per net
    std::vector<Net> in_a_;
    std::vector<Net> in_b_;
    std::vector<std::uint8_t> values_;
    std::vector<std::string> names_;  // inputs/regs/outputs keep names
    std::vector<RegInfo> regs_;
    std::vector<std::uint32_t> reg_index_of_net_;  // kNoNet-sized sentinel
    std::vector<std::pair<std::string, Net>> outputs_;

    Net new_net(GateOp op, Net a, Net b, std::string name);
};

}  // namespace gaip::gates
