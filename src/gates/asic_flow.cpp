#include "gates/asic_flow.hpp"

#include <algorithm>
#include <sstream>

namespace gaip::gates {

namespace {

const CellInfo* cell_for(GateOp op, const StdCellLibrary& lib) {
    switch (op) {
        case GateOp::kNot: return &lib.inv;
        case GateOp::kBuf: return &lib.buf;
        case GateOp::kNand: return &lib.nand2;
        case GateOp::kNor: return &lib.nor2;
        case GateOp::kAnd: return &lib.and2;
        case GateOp::kOr: return &lib.or2;
        case GateOp::kXor: return &lib.xor2;
        default: return nullptr;  // const/input/state: no cell
    }
}

}  // namespace

AsicReport analyze_asic(const GateNetlist& nl, const StdCellLibrary& lib) {
    AsicReport r;

    // ------------------------------------------------ technology mapping --
    const std::size_t n = nl.net_count();
    for (std::size_t i = 0; i < n; ++i) {
        const GateOp op = nl.op_of(static_cast<Net>(i));
        r.cell_count[static_cast<std::size_t>(op)]++;
        if (const CellInfo* cell = cell_for(op, lib)) {
            ++r.total_cells;
            r.cell_area_um2 += cell->area_um2;
        }
    }
    r.scan_dffs = static_cast<std::uint32_t>(nl.register_q_nets().size());
    r.total_cells += r.scan_dffs;
    r.cell_area_um2 += r.scan_dffs * lib.scan_dff.area_um2;
    r.die_area_mm2 = r.cell_area_um2 / r.utilization / 1e6;

    // --------------------------------------------------- static timing ----
    // Net ids are a topological order by construction; arrival times by DP.
    std::vector<double> arrival(n, 0.0);
    std::vector<Net> pred(n, kNoNet);
    for (std::size_t i = 0; i < n; ++i) {
        const Net net = static_cast<Net>(i);
        const GateOp op = nl.op_of(net);
        switch (op) {
            case GateOp::kConst0:
            case GateOp::kConst1:
            case GateOp::kInput:
                arrival[i] = 0.0;
                break;
            case GateOp::kState:
                arrival[i] = lib.scan_dff.delay_ns;  // launch clk->Q
                break;
            default: {
                const Net a = nl.fanin_a(net);
                const Net b = nl.fanin_b(net);
                double t = arrival[a];
                pred[i] = a;
                if (b != kNoNet && arrival[b] > t) {
                    t = arrival[b];
                    pred[i] = b;
                }
                arrival[i] = t + cell_for(op, lib)->delay_ns;
                break;
            }
        }
    }

    // Endpoints: register D pins (+ setup) and named outputs.
    Net worst_end = kNoNet;
    for (const Net d : nl.register_d_nets()) {
        if (d == kNoNet) continue;
        const double t = arrival[d] + lib.dff_setup_ns;
        if (t > r.critical_path_ns) {
            r.critical_path_ns = t;
            worst_end = d;
        }
    }
    for (const auto& [name, net] : nl.named_outputs()) {
        if (arrival[net] > r.critical_path_ns) {
            r.critical_path_ns = arrival[net];
            worst_end = net;
        }
    }
    if (r.critical_path_ns > 0.0) r.max_clock_mhz = 1000.0 / r.critical_path_ns;

    for (Net cursor = worst_end; cursor != kNoNet; cursor = pred[cursor])
        r.critical_path_nets.push_back(cursor);
    std::reverse(r.critical_path_nets.begin(), r.critical_path_nets.end());
    return r;
}

std::string format_asic_report(const AsicReport& r, const StdCellLibrary& lib) {
    std::ostringstream os;
    os.setf(std::ios::fixed);
    os.precision(2);
    os << "ASIC synthesis summary (library: " << lib.name << ")\n";
    os << "  cells: " << r.total_cells << " total (" << r.scan_dffs << " SDFF";
    auto emit = [&](GateOp op, const CellInfo& c) {
        const std::uint32_t cnt = r.cell_count[static_cast<std::size_t>(op)];
        if (cnt > 0) os << ", " << cnt << " " << c.name;
    };
    emit(GateOp::kAnd, lib.and2);
    emit(GateOp::kOr, lib.or2);
    emit(GateOp::kXor, lib.xor2);
    emit(GateOp::kNand, lib.nand2);
    emit(GateOp::kNor, lib.nor2);
    emit(GateOp::kNot, lib.inv);
    emit(GateOp::kBuf, lib.buf);
    os << ")\n";
    os << "  cell area: " << r.cell_area_um2 / 1e6 << " mm^2;  die at "
       << static_cast<int>(r.utilization * 100) << "% utilization: " << r.die_area_mm2
       << " mm^2\n";
    os << "  critical path: " << r.critical_path_ns << " ns ("
       << r.critical_path_nets.size() << " nets deep) -> max clock " << r.max_clock_mhz
       << " MHz (pre-layout)\n";
    return os.str();
}

}  // namespace gaip::gates
