#include "gates/optimize.hpp"

#include <map>
#include <stdexcept>
#include <tuple>

#include "prng/ca_prng.hpp"

namespace gaip::gates {

namespace {

/// Liveness over the input netlist: combinational nets reachable backward
/// from named outputs and register D pins. Registers (state nets), inputs,
/// and constants are always live.
std::vector<bool> compute_live(const GateNetlist& in) {
    const std::size_t n = in.net_count();
    std::vector<bool> live(n, false);
    std::vector<Net> stack;
    auto mark = [&](Net net) {
        if (net != kNoNet && !live[net]) {
            live[net] = true;
            stack.push_back(net);
        }
    };
    for (const auto& [name, net] : in.named_outputs()) mark(net);
    for (const Net d : in.register_d_nets()) mark(d);
    for (const Net q : in.register_q_nets()) live[q] = true;
    while (!stack.empty()) {
        const Net net = stack.back();
        stack.pop_back();
        const GateOp op = in.op_of(net);
        if (op == GateOp::kInput || op == GateOp::kState || op == GateOp::kConst0 ||
            op == GateOp::kConst1)
            continue;
        mark(in.fanin_a(net));
        if (in.fanin_b(net) != kNoNet) mark(in.fanin_b(net));
    }
    // Inputs/constants stay whether referenced or not (ports must survive).
    for (std::size_t i = 0; i < n; ++i) {
        const GateOp op = in.op_of(static_cast<Net>(i));
        if (op == GateOp::kInput) live[i] = true;
    }
    return live;
}

}  // namespace

OptimizeResult optimize(const GateNetlist& in) {
    OptimizeResult r;
    r.gates_before = in.stats().logic_gates;
    const std::size_t n = in.net_count();
    r.net_map.assign(n, kNoNet);

    const std::vector<bool> live = compute_live(in);

    GateNetlist& out = r.netlist;
    const Net out_c0 = out.constant(false);
    const Net out_c1 = out.constant(true);
    // Constness of NEW nets (for folding chains through mapped constants).
    std::map<Net, bool> const_value = {{out_c0, false}, {out_c1, true}};
    auto konst = [&](Net net, bool& v) {
        const auto it = const_value.find(net);
        if (it == const_value.end()) return false;
        v = it->second;
        return true;
    };

    std::map<std::tuple<GateOp, Net, Net>, Net> cse;
    auto build_gate = [&](GateOp op, Net a, Net b) -> Net {
        bool va = false, vb = false;
        const bool ka = konst(a, va);
        const bool kb = b != kNoNet && konst(b, vb);

        // Constant folding.
        switch (op) {
            case GateOp::kBuf:
                ++r.folded_constants;
                return a;
            case GateOp::kNot:
                if (ka) {
                    ++r.folded_constants;
                    return va ? out_c0 : out_c1;
                }
                break;
            case GateOp::kAnd:
                if ((ka && !va) || (kb && !vb)) { ++r.folded_constants; return out_c0; }
                if (ka && va) { ++r.folded_constants; return b; }
                if (kb && vb) { ++r.folded_constants; return a; }
                if (a == b) { ++r.folded_constants; return a; }
                break;
            case GateOp::kOr:
                if ((ka && va) || (kb && vb)) { ++r.folded_constants; return out_c1; }
                if (ka && !va) { ++r.folded_constants; return b; }
                if (kb && !vb) { ++r.folded_constants; return a; }
                if (a == b) { ++r.folded_constants; return a; }
                break;
            case GateOp::kXor:
                if (ka && kb) { ++r.folded_constants; return (va ^ vb) ? out_c1 : out_c0; }
                if (ka && !va) { ++r.folded_constants; return b; }
                if (kb && !vb) { ++r.folded_constants; return a; }
                if (a == b) { ++r.folded_constants; return out_c0; }
                break;
            case GateOp::kNand:
                if ((ka && !va) || (kb && !vb)) { ++r.folded_constants; return out_c1; }
                break;
            case GateOp::kNor:
                if ((ka && va) || (kb && vb)) { ++r.folded_constants; return out_c0; }
                break;
            default:
                break;
        }
        // CSE with commutative canonicalization.
        Net ca = a, cb = b;
        if (op != GateOp::kNot && op != GateOp::kBuf && cb != kNoNet && cb < ca)
            std::swap(ca, cb);
        const auto key = std::make_tuple(op, ca, cb);
        const auto it = cse.find(key);
        if (it != cse.end()) {
            ++r.shared_subexpressions;
            return it->second;
        }
        const Net made = out.gate(op, ca, cb);
        cse.emplace(key, made);
        return made;
    };

    // Rebuild in original order (a topological order of the input).
    for (std::size_t i = 0; i < n; ++i) {
        const Net net = static_cast<Net>(i);
        const GateOp op = in.op_of(net);
        switch (op) {
            case GateOp::kInput:
                r.net_map[i] = out.input(in.name_of(net));
                break;
            case GateOp::kState:
                r.net_map[i] = out.reg(in.name_of(net));
                break;
            case GateOp::kConst0:
                r.net_map[i] = out_c0;
                break;
            case GateOp::kConst1:
                r.net_map[i] = out_c1;
                break;
            default: {
                if (!live[i]) {
                    ++r.swept_dead;
                    break;  // net_map stays kNoNet
                }
                const Net a = r.net_map[in.fanin_a(net)];
                const Net b =
                    in.fanin_b(net) == kNoNet ? kNoNet : r.net_map[in.fanin_b(net)];
                if (a == kNoNet || (in.fanin_b(net) != kNoNet && b == kNoNet))
                    throw std::logic_error("optimize: live gate fed by dead net");
                r.net_map[i] = build_gate(op, a, b);
                break;
            }
        }
    }

    // Reconnect registers and outputs through the map.
    const auto old_q = in.register_q_nets();
    const auto old_d = in.register_d_nets();
    for (std::size_t i = 0; i < old_q.size(); ++i) {
        if (old_d[i] == kNoNet) continue;
        out.connect_reg(r.net_map[old_q[i]], r.net_map[old_d[i]]);
    }
    for (const auto& [name, net] : in.named_outputs()) out.output(name, r.net_map[net]);

    r.gates_after = out.stats().logic_gates;
    return r;
}

bool random_equivalence_check(GateNetlist& a, GateNetlist& b, unsigned cycles,
                              std::uint16_t seed) {
    // Enumerate primary inputs of `a` and locate them in `b` by order.
    std::vector<Net> ins_a, ins_b;
    for (std::size_t i = 0; i < a.net_count(); ++i)
        if (a.op_of(static_cast<Net>(i)) == GateOp::kInput) ins_a.push_back(static_cast<Net>(i));
    for (std::size_t i = 0; i < b.net_count(); ++i)
        if (b.op_of(static_cast<Net>(i)) == GateOp::kInput) ins_b.push_back(static_cast<Net>(i));
    if (ins_a.size() != ins_b.size()) return false;
    if (a.named_outputs().size() != b.named_outputs().size()) return false;
    const auto qa = a.register_q_nets();
    const auto qb = b.register_q_nets();
    if (qa.size() != qb.size()) return false;

    prng::CaPrng rng(seed);
    for (unsigned c = 0; c < cycles; ++c) {
        std::uint16_t word = rng.next16();
        unsigned bits = 0;
        for (std::size_t i = 0; i < ins_a.size(); ++i) {
            if (bits == 16) {
                word = rng.next16();
                bits = 0;
            }
            const bool v = (word >> bits) & 1u;
            ++bits;
            a.set_input(ins_a[i], v);
            b.set_input(ins_b[i], v);
        }
        a.eval();
        b.eval();
        for (std::size_t i = 0; i < a.named_outputs().size(); ++i) {
            if (a.value(a.named_outputs()[i].second) != b.value(b.named_outputs()[i].second))
                return false;
        }
        a.clock();
        b.clock();
        a.eval();
        b.eval();
        for (std::size_t i = 0; i < qa.size(); ++i)
            if (a.value(qa[i]) != b.value(qb[i])) return false;
    }
    return true;
}

}  // namespace gaip::gates
