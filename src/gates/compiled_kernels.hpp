// Runtime-dispatched evaluation kernels for CompiledNetlist.
//
// The instruction stream is ISA-agnostic; only the inner loop differs: the
// W words of one net are contiguous, so W=2/4/8 map 1:1 onto SSE2/AVX2/
// AVX-512 bitwise ops. Each ISA variant lives in its own translation unit
// compiled with the matching -m flags (see src/gates/CMakeLists.txt), and
// select() picks the widest one the running CPU reports via
// __builtin_cpu_supports — the binary stays runnable on plain x86-64 and
// non-x86 hosts (generic only).
//
// The environment variable GAIP_KERNEL ("generic", "avx2", "avx512")
// forces a variant for differential testing; a KNOWN variant the running
// CPU lacks falls back to generic (so one test matrix runs everywhere),
// but an unknown value is rejected with std::invalid_argument — a typo'd
// kernel name must not silently benchmark the wrong engine. GAIP_JIT gets
// the same strict contract (see gates/compiled.hpp resolve_backend).
#pragma once

#include <cstddef>
#include <cstdint>

namespace gaip::gates {

struct LaneInstr;

namespace kernels {

/// Evaluate `n` instructions over a value array where slot s occupies
/// words [s*W, s*W + W); W is baked into the function.
using KernelFn = void (*)(const LaneInstr* code, std::size_t n, std::uint64_t* values);

/// Best kernel for `words` (1/2/4/8) on this CPU. Never returns null.
/// Throws std::invalid_argument on an unknown GAIP_KERNEL value.
KernelFn select(unsigned words);

/// Name of the variant select(words) resolves to on this CPU under the
/// current GAIP_KERNEL setting: "generic", "avx2" or "avx512". Same strict
/// GAIP_KERNEL validation as select().
const char* selected_name(unsigned words);

/// Portable kernel table (always available).
KernelFn generic(unsigned words);

#if defined(GAIP_X86_KERNELS)
/// Per-ISA tables; only linked on x86-64 GNU/Clang builds.
KernelFn avx2(unsigned words);
KernelFn avx512(unsigned words);
#endif

}  // namespace kernels
}  // namespace gaip::gates
