// Runtime-dispatched evaluation kernels for CompiledNetlist.
//
// The instruction stream is ISA-agnostic; only the inner loop differs: the
// W words of one net are contiguous, so W=2/4/8 map 1:1 onto SSE2/AVX2/
// AVX-512 bitwise ops. Each ISA variant lives in its own translation unit
// compiled with the matching -m flags (see src/gates/CMakeLists.txt), and
// select() picks the widest one the running CPU reports via
// __builtin_cpu_supports — the binary stays runnable on plain x86-64 and
// non-x86 hosts (generic only).
//
// The environment variable GAIP_KERNEL ("generic", "avx2", "avx512")
// forces a variant for differential testing; an unavailable forced variant
// falls back to generic.
#pragma once

#include <cstddef>
#include <cstdint>

namespace gaip::gates {

struct LaneInstr;

namespace kernels {

/// Evaluate `n` instructions over a value array where slot s occupies
/// words [s*W, s*W + W); W is baked into the function.
using KernelFn = void (*)(const LaneInstr* code, std::size_t n, std::uint64_t* values);

/// Best kernel for `words` (1/2/4/8) on this CPU. Never returns null.
KernelFn select(unsigned words);

/// Portable kernel table (always available).
KernelFn generic(unsigned words);

#if defined(GAIP_X86_KERNELS)
/// Per-ISA tables; only linked on x86-64 GNU/Clang builds.
KernelFn avx2(unsigned words);
KernelFn avx512(unsigned words);
#endif

}  // namespace kernels
}  // namespace gaip::gates
