// Logic optimization over gate netlists — the Berkeley-SIS step of the
// paper's Fig. 1 flow ("Logic synthesis (SIS)") in miniature:
//   * constant propagation  (AND(x,0)=0, XOR(x,0)=x, NOT(1)=0, …),
//   * common-subexpression elimination (structural hashing; commutative
//     operand canonicalization),
//   * dead-gate sweep (combinational nets feeding neither a named output
//     nor any register D are dropped; registers themselves are always kept
//     — the scan chain makes every flip-flop externally observable).
// The pass rebuilds a fresh netlist and returns an old→new net map, so
// callers can re-locate their ports. Functional safety is established by
// random-simulation equivalence checking (same inputs, same clocks →
// identical named outputs and register states), used by the tests and the
// bench.
#pragma once

#include <vector>

#include "gates/netlist.hpp"

namespace gaip::gates {

struct OptimizeResult {
    GateNetlist netlist;
    /// old net id -> new net id (kNoNet for swept-away nets).
    std::vector<Net> net_map;
    std::uint32_t gates_before = 0;
    std::uint32_t gates_after = 0;
    std::uint32_t folded_constants = 0;
    std::uint32_t shared_subexpressions = 0;
    std::uint32_t swept_dead = 0;
};

OptimizeResult optimize(const GateNetlist& in);

/// Random-simulation equivalence: drive both netlists with identical random
/// primary-input vectors for `cycles` clocked steps and compare every named
/// output and every register after each step. Requires identical
/// input/register/output declaration orders (which optimize() preserves).
bool random_equivalence_check(GateNetlist& a, GateNetlist& b, unsigned cycles,
                              std::uint16_t seed = 1);

}  // namespace gaip::gates
