// Gate-level RNG module: the CA PRNG plus its bus-facing wrapper (seed
// capture from init-bus index 5, the three preset seeds, start-edge seed
// load, rn_next stepping) — the complete RNG module of Fig. 4 at gate
// level. Together with GateLevelGaCore this makes the whole GA module
// (core + RNG) runnable as gates.
#pragma once

#include <memory>

#include "gates/builder.hpp"
#include "prng/rng_module.hpp"

namespace gaip::gates {

struct RngNetlist {
    GateNetlist nl;

    // inputs
    Net reset = kNoNet;
    Net ga_load = kNoNet;
    Word index;   // 3
    Word value;   // 16
    Net data_valid = kNoNet;
    Word preset;  // 2
    Net start = kNoNet;
    Net rn_next = kNoNet;

    // outputs
    Word rn;  // 16 (the CA state register)

    // visibility
    Word seed_reg;  // 16

    /// Output + visibility nets — keep-roots for
    /// CompiledNetlist::Options::prune.
    std::vector<Net> observable_port_nets() const;
};

std::unique_ptr<RngNetlist> build_rng_netlist(
    std::uint16_t rule150_mask = prng::kRule150Mask);

/// rtl::Module adapter with the same port bundle as prng::RngModule.
class GateLevelRngModule final : public rtl::Module {
public:
    explicit GateLevelRngModule(prng::RngModulePorts ports);

    void eval() override;
    void tick() override;
    void reset_state() override;

    std::uint16_t current_state() const;
    std::uint16_t seed_register() const;
    GateStats gate_stats() const { return g_->nl.stats(); }

private:
    void push_inputs();

    prng::RngModulePorts p_;
    std::unique_ptr<RngNetlist> g_;
};

}  // namespace gaip::gates
