// Compiled bit-parallel (SWAR) gate-level simulation over N-word lane
// blocks.
//
// GateNetlist::eval() walks every net through a branchy switch and computes
// ONE run per pass — fine for equivalence checking, hopeless for the
// Table VII-IX sweep grids and fault campaigns. CompiledNetlist is the
// classic compiled-code simulator answer: the netlist is compiled ONCE into
// a flat, branch-free instruction stream (dense operand arrays, constants
// folded, buffers and one-constant-operand gates chased into aliases), and
// evaluation carries a BLOCK of W machine words per net (W = 1/2/4/8 →
// 64/128/256/512 lanes), so one pass simulates lane_count() INDEPENDENT
// runs: bit k of word w belongs to lane w*64+k. The per-net word loop is
// laid out SoA-style (the W words of one net are contiguous and aligned),
// which the per-ISA kernels turn into one SSE/AVX2/AVX-512 vector op per
// gate (src/gates/compiled_kernels*, picked at runtime by CPU feature).
//
// Every Boolean two-input gate is normalized to the single branch-free form
//
//     out = ((a & b) & ma) ^ ((a ^ b) & mx) ^ inv
//
// (ma/mx/inv in {0, ~0}): AND = {~0,0,0}, OR = {~0,~0,0} (a|b == (a&b)^(a^b)),
// XOR = {0,~0,0}, NAND/NOR add inv = ~0, NOT a = {a,a,~0,0,~0}. The inner
// loop therefore has no per-opcode dispatch at all.
//
// On top of the lowering, an instruction-stream optimization pass (the
// compiled-code counterpart of the SIS-style netlist pass in
// src/gates/optimize.cpp) can be applied per Options:
//   * cse   — local value numbering: two instructions with identical
//     (operands, kernel masks) collapse into one; the duplicate's net
//     becomes an alias, so every net stays readable (default ON);
//   * prune — dead-gate pruning + topological reordering + storage
//     compaction: only instructions reachable from register D pins and the
//     caller-supplied `keep` roots survive, emitted in dependency DFS
//     order with freshly packed value slots (cache locality). Reading a
//     pruned net throws, so prune is OPT-IN for callers that only observe
//     ports (BatchGateRunner, FaultCampaign).
// Before/after instruction counts are exposed via base_instruction_count()
// / instruction_count() / cse_shared() / pruned_dead().
//
// Lane semantics:
//   * inputs, register state, and scan in/out are lane-blocks (word w, bit
//     k = lane w*64+k); helpers broadcast one value to all lanes or poke a
//     single lane;
//   * clock() latches every register lane-wise (normal mode) across ALL
//     words; test mode shifts the whole scan chain by one in every lane,
//     exactly mirroring GateNetlist::clock per lane;
//   * net numbering is shared with the source GateNetlist, so port Net ids
//     from GaCoreNetlist/RngNetlist address the compiled state directly.
//
// CompiledNetlist is bit- and cycle-identical to the scalar reference in
// every lane of every word (tests/gates/test_compiled.cpp runs the full GA
// core + RNG netlists differentially at W = 1/2/4/8). Prefer it whenever
// more than a handful of cycles are simulated; keep GateNetlist::eval as
// the oracle.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "gates/netlist.hpp"

namespace gaip::gates {

namespace jit {
class Module;
}

/// Evaluation engine behind CompiledNetlist. kInterp runs the per-ISA
/// interpreted kernels (compiled_kernels*); kJit lowers the optimized
/// instruction stream to specialized native code via the host toolchain
/// (src/gates/jit.*), falling back to the interpreter when no compiler is
/// available; kJitForce throws instead of falling back (differential tests
/// assert real native execution with it). kAuto defers to the GAIP_JIT
/// environment override and defaults to the interpreter.
enum class Backend { kAuto, kInterp, kJit, kJitForce };

/// Apply the GAIP_JIT environment override to a requested backend.
/// Accepted values: "0"/"off"/"interp", "1"/"on"/"jit", "force"; anything
/// else throws std::invalid_argument (same strict contract as
/// GAIP_KERNEL). Unset: kAuto resolves to kInterp, explicit requests pass
/// through.
Backend resolve_backend(Backend requested);
/// "interp", "jit" or "jit-force" (resolved backends only; kAuto asserts).
const char* backend_name(Backend b);

/// One lowered gate: dst/a/b are STORAGE SLOTS (not source net ids); the
/// kernel computes dst = ((a & b) & ma) ^ ((a ^ b) & mx) ^ inv per word.
/// Public only so the per-ISA kernel translation units can see it.
struct LaneInstr {
    std::uint32_t dst;
    std::uint32_t a;
    std::uint32_t b;
    std::uint64_t ma;   // AND-kernel mask
    std::uint64_t mx;   // XOR-kernel mask
    std::uint64_t inv;  // output inversion mask
};

class CompiledNetlist {
public:
    /// Lanes per machine word (the u64 SWAR width — not a lane-count cap).
    static constexpr unsigned kWordBits = 64;
    /// Largest supported lane block: 8 words = 512 lanes.
    static constexpr unsigned kMaxWords = 8;

    struct Options {
        /// Words per lane block: 1, 2, 4, or 8 (64/128/256/512 lanes).
        unsigned words = 1;
        /// Instruction-stream common-subexpression elimination. Keeps every
        /// net readable (duplicates become aliases).
        bool cse = true;
        /// Dead-gate pruning + topological reorder + slot compaction.
        /// Requires `keep` to cover every net the caller will read beyond
        /// registers; reading a pruned net throws.
        bool prune = false;
        /// Extra liveness roots for prune (port/monitor nets). Inputs,
        /// registers, and constants are always live.
        std::vector<Net> keep;
        /// Evaluation engine: interpreted kernels or host-compiled native
        /// code (see Backend above; GAIP_JIT overrides).
        Backend backend = Backend::kAuto;
    };

    /// Compile `src` (constant folding + buffer/alias chasing + the
    /// optional Options passes). The source netlist is only read during
    /// construction; current scalar input and register values are NOT
    /// carried over — all lanes start at zero.
    explicit CompiledNetlist(const GateNetlist& src);
    CompiledNetlist(const GateNetlist& src, Options opts);

    // --- geometry ---
    unsigned words() const noexcept { return words_; }
    /// Total independent lanes: words() * 64.
    unsigned lane_count() const noexcept { return words_ * kWordBits; }

    // --- per-lane / per-word / broadcast input and state access ---
    /// Set word `word` of a primary input (bit k = lane word*64+k).
    void set_input_word(Net n, unsigned word, std::uint64_t lanes);
    /// Single-word convenience (requires words() == 1).
    void set_input_lanes(Net n, std::uint64_t lanes);
    /// Set a primary input in one lane (any lane < lane_count()).
    void set_input(Net n, unsigned lane, bool v);
    /// Broadcast one value to every lane of an input.
    void set_input_all(Net n, bool v);
    /// Drive a word input (LSB-first net vector) with `value` in one lane.
    /// Throws if `value` has bits beyond the vector's width — excess bits
    /// were silently dropped before; now the scalar and compiled paths both
    /// reject them (see GateNetlist::set_word_input).
    void set_word_input(const std::vector<Net>& w, unsigned lane, std::uint64_t value);
    /// Backdoor register state access (mirrors GateNetlist::set_register).
    void set_register(Net q, unsigned lane, bool v);
    void set_register_word(Net q, unsigned word, std::uint64_t lanes);
    /// Single-word convenience (requires words() == 1).
    void set_register_lanes(Net q, std::uint64_t lanes);
    /// Invert a register bit in each lane of word `word` selected by `mask`
    /// — the SEU injection hook: one XOR plants an independent single-event
    /// upset per lane of the same baseline simulation (src/fault/).
    void xor_register_word(Net q, unsigned word, std::uint64_t mask);
    /// Single-word convenience (requires words() == 1).
    void xor_register_lanes(Net q, std::uint64_t mask);

    // --- simulation ---
    /// Combinational propagation of all lane_count() lanes in one pass.
    void eval();
    /// Precompile the instruction sub-stream in the transitive fanout of
    /// `sources` (input/state nets). After a full eval(), if ONLY those
    /// sources changed, eval_cone(id) re-propagates just that fanout — the
    /// stream is single-assignment and topologically ordered, so every
    /// instruction outside the fanout would recompute an unchanged value.
    /// The classic use is a same-cycle response loop (drive inputs → eval
    /// → read request → drive response → re-eval): the re-eval touches the
    /// response cone only, typically a few percent of the stream. Returns
    /// a cone id; throws if a source net is unknown or pruned.
    std::uint32_t make_cone(const std::vector<Net>& sources);
    void eval_cone(std::uint32_t cone);
    /// Instructions in one cone (vs instruction_count() for a full pass).
    std::size_t cone_size(std::uint32_t cone) const { return cones_.at(cone).size(); }
    /// Clock edge in every lane. Normal mode latches D into every register
    /// across all words. Test mode shifts the scan chain by one in every
    /// lane; the single-word form feeds `scan_in` into word 0 (and zeros
    /// into words 1..) and returns word 0 of the scan-out, so it requires
    /// words() == 1 — use clock_scan() for wide blocks.
    std::uint64_t clock(bool test_mode = false, std::uint64_t scan_in = 0);
    /// Full-width scan shift: `scan_in`/`scan_out` are words() words
    /// (either may be nullptr: zeros in / discard out).
    void clock_scan(const std::uint64_t* scan_in, std::uint64_t* scan_out);
    /// Per-lane clock gating: a normal-mode clock edge that latches D into Q
    /// only in the lanes whose bit is SET in `enable_words` (words() words,
    /// bit k of word w = lane w*64+k); disabled lanes hold their register
    /// state — the island interconnect's generation-synchronous barrier,
    /// where parked lanes freeze while siblings keep evolving. Implemented
    /// as save / clock() / merge around whichever backend is active, so the
    /// interpreted kernels and the JIT modules gate identically without a
    /// dedicated code path (asserted by tests/gates/test_clock_gating.cpp).
    void clock_gated(const std::uint64_t* enable_words);

    // --- validated-once hot-path handles ---
    // The per-call accessors above re-validate the net kind / word index /
    // pruning status on every call, which dominates harness-bound inner
    // loops (a fault-campaign cycle makes ~1500 of them). A SlotHandle
    // front-loads that validation: resolve it ONCE via input_handle() /
    // state_handle() / read_handle(), then the inline word accessors below
    // go straight to storage with zero checks. Handles stay valid for the
    // lifetime of this CompiledNetlist (slots never move after
    // construction) and are NOT interchangeable between instances.
    struct SlotHandle {
        std::uint32_t slot = 0;
    };
    /// Handle for driving a primary input (throws if `n` is not an input).
    SlotHandle input_handle(Net n) const { return {input_slot(n, "input_handle")}; }
    /// Handle for poking register state (throws if `n` is not a register Q).
    SlotHandle state_handle(Net n) const { return {state_slot(n, "state_handle")}; }
    /// Handle for reading any live net (aliases and folded constants
    /// resolve; throws if the net was pruned).
    SlotHandle read_handle(Net n) const;
    /// Write all words() words of an input/state handle from `w`.
    void write_words(SlotHandle h, const std::uint64_t* w) noexcept {
        std::uint64_t* const p = slot_ptr(h.slot);
        for (unsigned i = 0; i < words_; ++i) p[i] = w[i];
    }
    /// Read all words() words of a handle into `out`.
    void read_words(SlotHandle h, std::uint64_t* out) const noexcept {
        const std::uint64_t* const p = slot_ptr(h.slot);
        for (unsigned i = 0; i < words_; ++i) out[i] = p[i];
    }
    /// One word of a handle (word < words(), unchecked).
    std::uint64_t read_word(SlotHandle h, unsigned word) const noexcept {
        return slot_ptr(h.slot)[word];
    }
    /// XOR `mask` into one word of a state handle (the hot SEU hook).
    void xor_word(SlotHandle h, unsigned word, std::uint64_t mask) noexcept {
        slot_ptr(h.slot)[word] ^= mask;
    }

    // --- value reads ---
    /// Word `word` of one net (aliases and folded constants resolve;
    /// throws if the net was pruned).
    std::uint64_t lanes_word(Net n, unsigned word) const;
    /// Single-word convenience (requires words() == 1).
    std::uint64_t lanes(Net n) const;
    bool value(Net n, unsigned lane) const;
    /// LSB-first word read in one lane (same contract as
    /// GateNetlist::word_value; at most kWordBits nets fit one u64).
    std::uint64_t word_value(const std::vector<Net>& nets, unsigned lane) const;
    /// Word 0 of the scan-chain tail bit (requires words() == 1; use
    /// scan_tail_word for wide blocks).
    std::uint64_t scan_tail() const;
    std::uint64_t scan_tail_word(unsigned word) const;

    // --- compile statistics ---
    std::size_t net_count() const noexcept { return root_.size(); }
    /// Instructions actually executed per eval() (after every pass).
    std::size_t instruction_count() const noexcept { return code_.size(); }
    /// Instructions after folding/chasing but BEFORE cse/prune — the
    /// "before" of the optimizer's before/after report.
    std::size_t base_instruction_count() const noexcept { return base_instructions_; }
    std::size_t folded_constants() const noexcept { return folded_; }
    std::size_t chased_aliases() const noexcept { return aliased_; }
    /// Instructions removed by value numbering (cse).
    std::size_t cse_shared() const noexcept { return cse_shared_; }
    /// Instructions removed as unreachable (prune).
    std::size_t pruned_dead() const noexcept { return pruned_; }
    std::size_t register_count() const noexcept { return regs_q_.size(); }
    /// Value-storage slots after compaction (cache-footprint metric).
    std::size_t slot_count() const noexcept { return slots_; }

    // --- JIT backend introspection ---
    /// True when eval()/clock() run host-compiled native code instead of
    /// the interpreted kernels (false after a graceful fallback).
    bool jit_active() const noexcept { return jit_ != nullptr; }
    /// Loaded JIT artifact (nullptr when interpreting) — exposes the
    /// content-hash key, cache-hit flag, and compile time.
    const jit::Module* jit_module() const noexcept { return jit_.get(); }

private:
    static constexpr std::uint32_t kNoSlot = 0xFFFFFFFFu;

    using KernelFn = void (*)(const LaneInstr*, std::size_t, std::uint64_t*);

    // Aligned view over store_: slot s occupies words [s*words_, s*words_
    // + words_) from a 64-byte-aligned base. Recomputed from store_ on
    // demand so default copy/move keep the object valid.
    std::uint64_t* base() noexcept {
        const auto p = reinterpret_cast<std::uintptr_t>(store_.data());
        return reinterpret_cast<std::uint64_t*>((p + 63) & ~std::uintptr_t{63});
    }
    const std::uint64_t* base() const noexcept {
        const auto p = reinterpret_cast<std::uintptr_t>(store_.data());
        return reinterpret_cast<const std::uint64_t*>((p + 63) & ~std::uintptr_t{63});
    }
    std::uint64_t* slot_ptr(std::uint32_t slot) noexcept {
        return base() + std::size_t{slot} * words_;
    }
    const std::uint64_t* slot_ptr(std::uint32_t slot) const noexcept {
        return base() + std::size_t{slot} * words_;
    }
    std::uint32_t input_slot(Net n, const char* who) const;
    std::uint32_t state_slot(Net n, const char* who) const;
    void check_word(unsigned word, const char* who) const;
    void require_single_word(const char* who) const;

    std::vector<LaneInstr> code_;
    std::vector<std::vector<LaneInstr>> cones_;  // make_cone sub-streams
    std::vector<std::uint64_t> store_;      // raw backing (aligned view via base())
    std::size_t slots_ = 0;
    unsigned words_ = 1;
    std::vector<std::uint32_t> root_;       // source net -> slot (kNoSlot = pruned)
    std::vector<GateOp> ops_;               // source ops (input/state checks)
    std::vector<std::uint32_t> regs_q_;     // slots, scan-chain order
    std::vector<std::uint32_t> regs_d_;     // slots, root-resolved D nets
    std::vector<std::uint64_t> latch_tmp_;  // clock() scratch (regs * words)
    std::vector<std::uint64_t> gate_tmp_;   // clock_gated() Q save (lazily sized)
    KernelFn kernel_ = nullptr;
    std::shared_ptr<const jit::Module> jit_;  // native backend (null = interp)
    // Raw entry points of jit_ (non-null iff jit_ is), cached so the hot
    // paths dispatch without a virtual call.
    void (*jit_eval_)(std::uint64_t*) = nullptr;
    void (*jit_clock_)(std::uint64_t*) = nullptr;
    void (*jit_scan_)(std::uint64_t*, const std::uint64_t*, std::uint64_t*) = nullptr;
    std::size_t base_instructions_ = 0;
    std::size_t folded_ = 0;
    std::size_t aliased_ = 0;
    std::size_t cse_shared_ = 0;
    std::size_t pruned_ = 0;
};

}  // namespace gaip::gates
