// Compiled bit-parallel (SWAR) gate-level simulation.
//
// GateNetlist::eval() walks every net through a branchy switch and computes
// ONE run per pass — fine for equivalence checking, hopeless for the
// Table VII-IX sweep grids. CompiledNetlist is the classic compiled-code
// simulator answer: the netlist is compiled ONCE into a flat, branch-free
// instruction stream (dense operand arrays, constants folded, buffers and
// one-constant-operand gates chased into aliases), and evaluation carries a
// full 64-bit machine word per net, so one pass simulates 64 INDEPENDENT
// lanes (bit k of every word belongs to run k).
//
// Every Boolean two-input gate is normalized to the single branch-free form
//
//     out = ((a & b) & ma) ^ ((a ^ b) & mx) ^ inv
//
// (ma/mx/inv in {0, ~0}): AND = {~0,0,0}, OR = {~0,~0,0} (a|b == (a&b)^(a^b)),
// XOR = {0,~0,0}, NAND/NOR add inv = ~0, NOT a = {a,a,~0,0,~0}. The inner
// loop therefore has no per-opcode dispatch at all.
//
// Lane semantics:
//   * inputs, register state, and scan_in/scan_out are 64-lane words
//     (bit k = lane k); helpers broadcast one value to all lanes or poke a
//     single lane;
//   * clock() latches every register lane-wise (normal mode) or shifts the
//     whole scan chain by one in every lane (test mode), exactly mirroring
//     GateNetlist::clock per lane;
//   * net numbering is shared with the source GateNetlist, so port Net ids
//     from GaCoreNetlist/RngNetlist address the compiled state directly.
//
// CompiledNetlist is bit- and cycle-identical to the scalar reference in
// every lane (tests/gates/test_compiled.cpp runs the full GA core + RNG
// netlist differentially). Prefer it whenever more than a handful of cycles
// are simulated; keep GateNetlist::eval as the oracle.
#pragma once

#include <cstdint>
#include <vector>

#include "gates/netlist.hpp"

namespace gaip::gates {

class CompiledNetlist {
public:
    static constexpr unsigned kLanes = 64;

    /// Compile `src` (constant folding + buffer/alias chasing). The source
    /// netlist is only read during construction; current scalar input and
    /// register values are NOT carried over — all lanes start at zero.
    explicit CompiledNetlist(const GateNetlist& src);

    // --- per-lane / broadcast input and state access ---
    /// Set a primary input across all 64 lanes at once (bit k = lane k).
    void set_input_lanes(Net n, std::uint64_t lanes);
    /// Set a primary input in one lane.
    void set_input(Net n, unsigned lane, bool v);
    /// Broadcast one value to every lane of an input.
    void set_input_all(Net n, bool v);
    /// Drive a word input (LSB-first net vector) with `value` in one lane.
    void set_word_input(const std::vector<Net>& w, unsigned lane, std::uint64_t value);
    /// Backdoor register state access (mirrors GateNetlist::set_register).
    void set_register(Net q, unsigned lane, bool v);
    void set_register_lanes(Net q, std::uint64_t lanes);
    /// Invert a register bit in each lane selected by `mask` — the SEU
    /// injection hook: one XOR plants an independent single-event upset per
    /// lane of the same baseline simulation (src/fault/).
    void xor_register_lanes(Net q, std::uint64_t mask);

    // --- simulation ---
    /// Combinational propagation of all 64 lanes in one pass.
    void eval();
    /// Clock edge in every lane. Normal mode latches D into every register;
    /// test mode shifts the scan chain by one (scan_in bit k enters lane k's
    /// first-declared register). Returns the 64-lane scan-out word (each
    /// lane's last register's pre-shift Q).
    std::uint64_t clock(bool test_mode = false, std::uint64_t scan_in = 0);

    // --- value reads ---
    /// All 64 lanes of one net (aliases and folded constants resolve).
    std::uint64_t lanes(Net n) const;
    bool value(Net n, unsigned lane) const;
    /// LSB-first word read in one lane (same contract as
    /// GateNetlist::word_value; at most 64 nets).
    std::uint64_t word_value(const std::vector<Net>& nets, unsigned lane) const;
    /// 64-lane word of the scan-chain tail bit.
    std::uint64_t scan_tail() const noexcept;

    // --- compile statistics ---
    std::size_t net_count() const noexcept { return root_.size(); }
    /// Instructions actually executed per eval() (after folding/chasing).
    std::size_t instruction_count() const noexcept { return code_.size(); }
    std::size_t folded_constants() const noexcept { return folded_; }
    std::size_t chased_aliases() const noexcept { return aliased_; }
    std::size_t register_count() const noexcept { return regs_q_.size(); }

private:
    struct Instr {
        std::uint32_t dst;
        std::uint32_t a;
        std::uint32_t b;
        std::uint64_t ma;   // AND-kernel mask
        std::uint64_t mx;   // XOR-kernel mask
        std::uint64_t inv;  // output inversion mask
    };

    std::vector<Instr> code_;
    std::vector<std::uint64_t> values_;     // one 64-lane word per net slot
    std::vector<Net> root_;                 // alias resolution (fully chased)
    std::vector<GateOp> ops_;               // source ops (input/state checks)
    std::vector<Net> regs_q_;               // scan-chain order
    std::vector<Net> regs_d_;               // root-resolved D nets
    std::vector<std::uint64_t> latch_tmp_;  // clock() scratch
    std::size_t folded_ = 0;
    std::size_t aliased_ = 0;
};

}  // namespace gaip::gates
