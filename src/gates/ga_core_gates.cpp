#include "gates/ga_core_gates.hpp"

#include "gates/blocks.hpp"

#include <deque>
#include <map>
#include <stdexcept>

namespace gaip::gates {

namespace {

using State = core::GaCore::State;

/// Zero-extend or truncate a word to `width` nets.
Word resize(GateNetlist& nl, const Word& w, unsigned width) {
    Word out(w.begin(), w.begin() + std::min<std::size_t>(w.size(), width));
    while (out.size() < width) out.push_back(nl.constant(false));
    return out;
}

Word slice(const Word& w, unsigned lo, unsigned hi) {  // inclusive-exclusive [lo, hi)
    return Word(w.begin() + lo, w.begin() + hi);
}

/// Register file with enable/value assignment lists, folded into D-input
/// mux networks at finalize() — the datapath-register pattern of an
/// HLS-generated netlist.
class RegBank {
public:
    explicit RegBank(GateNetlist& nl) : nl_(nl) {}

    Word make(const std::string& name, unsigned width, std::uint64_t reset_value) {
        Entry e;
        e.q = word_reg(nl_, name, width);
        e.reset_value = reset_value;
        index_by_head_[e.q[0]] = entries_.size();
        entries_.push_back(std::move(e));
        return entries_.back().q;
    }

    /// When `when` is high at the clock edge, the register loads `value`
    /// (resized to the register width). Enables must be mutually exclusive
    /// (they are state predicates here).
    void assign(const Word& q, Net when, const Word& value) {
        entries_[find(q)].assigns.emplace_back(when, value);
    }

    /// Build every D input: priority-free OR of enabled values, hold
    /// otherwise, with a synchronous reset override to the reset value.
    void finalize(Net reset) {
        for (Entry& e : entries_) {
            const unsigned width = static_cast<unsigned>(e.q.size());
            Word d(width, kNoNet);
            Net any = nl_.constant(false);
            for (const auto& [when, _] : e.assigns) any = nl_.g_or(any, when);
            const Net hold = nl_.g_not(any);
            for (unsigned i = 0; i < width; ++i) {
                Net bit = nl_.g_and(hold, e.q[i]);
                for (const auto& [when, value] : e.assigns) {
                    const Net v = i < value.size() ? value[i] : nl_.constant(false);
                    bit = nl_.g_or(bit, nl_.g_and(when, v));
                }
                // Synchronous reset to the declared value.
                const Net rv = nl_.constant(((e.reset_value >> i) & 1u) != 0);
                d[i] = nl_.g_mux(reset, rv, bit);
            }
            connect_word_reg(nl_, e.q, d);
        }
    }

private:
    struct Entry {
        Word q;
        std::vector<std::pair<Net, Word>> assigns;
        std::uint64_t reset_value = 0;
    };

    std::size_t find(const Word& q) const {
        const auto it = index_by_head_.find(q.at(0));
        if (it == index_by_head_.end()) throw std::logic_error("RegBank: unknown register");
        return it->second;
    }

    GateNetlist& nl_;
    std::deque<Entry> entries_;
    std::map<Net, std::size_t> index_by_head_;
};

}  // namespace

std::vector<Net> GaCoreNetlist::observable_port_nets() const {
    std::vector<Net> keep;
    auto add = [&](Net n) {
        if (n != kNoNet) keep.push_back(n);
    };
    auto add_w = [&](const Word& w) { keep.insert(keep.end(), w.begin(), w.end()); };
    add(data_ack);
    add(fit_request);
    add_w(candidate);
    add_w(mem_address);
    add_w(mem_data_out);
    add(mem_wr);
    add(ga_done);
    add(rn_next);
    add(sel_found);
    add(mon_gen_pulse);
    add_w(mon_gen_id);
    add_w(mon_best_fit);
    add_w(mon_fit_sum);
    add_w(mon_best_ind);
    add(mon_bank);
    add_w(mon_pop_size);
    add_w(state);
    add_w(gen_id);
    add_w(best_fit);
    add_w(best_ind);
    add(bank);
    return keep;
}

std::unique_ptr<GaCoreNetlist> build_ga_core_netlist(std::uint8_t external_slot_mask) {
    auto out = std::make_unique<GaCoreNetlist>();
    GateNetlist& nl = out->nl;
    RegBank regs(nl);

    // ------------------------------------------------------- registers --
    const Word st = regs.make("state", 6, static_cast<std::uint64_t>(State::kIdle));
    const Word ret = regs.make("ret_state", 6, 0);
    const Word ngl = regs.make("ngens_lo", 16, 32);
    const Word ngh = regs.make("ngens_hi", 16, 0);
    const Word pops = regs.make("pop_size", 8, 32);
    const Word xthr = regs.make("xover_thresh", 4, 12);
    const Word mthr = regs.make("mut_thresh", 4, 1);
    const Word epop = regs.make("eff_pop", 8, 32);
    const Word engs = regs.make("eff_ngens", 32, 32);
    const Word ext = regs.make("eff_xt", 4, 12);
    const Word emt = regs.make("eff_mt", 4, 1);
    const Word gid = regs.make("gen_id", 32, 0);
    const Word pidx = regs.make("pop_idx", 8, 0);
    const Word nidx = regs.make("new_idx", 8, 0);
    const Word sidx = regs.make("scan_idx", 8, 0);
    const Word srd = regs.make("scan_reads", 9, 0);
    const Word bankw = regs.make("bank", 1, 0);
    const Word p2ph = regs.make("parent2_phase", 1, 0);
    const Word bfit = regs.make("best_fit", 16, 0);
    const Word bind = regs.make("best_ind", 16, 0);
    const Word fsc = regs.make("fit_sum_cur", 24, 0);
    const Word fsn = regs.make("fit_sum_new", 24, 0);
    const Word sthr = regs.make("sel_thresh", 24, 0);
    const Word scum = regs.make("sel_cum", 24, 0);
    const Word par1 = regs.make("parent1", 16, 0);
    const Word par2 = regs.make("parent2", 16, 0);
    const Word off1 = regs.make("off1", 16, 0);
    const Word off2 = regs.make("off2", 16, 0);
    const Word ecnd = regs.make("eval_cand", 16, 0);
    const Word freg = regs.make("fit_reg", 16, 0);
    const Word xcut = regs.make("xo_cut", 4, 0);
    const Word xdo = regs.make("xo_do", 1, 0);
    const Word sd = regs.make("start_d", 1, 0);

    // ---------------------------------------------------------- inputs --
    out->reset = nl.input("reset");
    out->ga_load = nl.input("ga_load");
    out->index = word_input(nl, "idx", 3);
    out->value = word_input(nl, "val", 16);
    out->data_valid = nl.input("data_valid");
    out->fit_value = word_input(nl, "fitv", 16);
    out->fit_valid = nl.input("fit_valid");
    out->mem_data_in = word_input(nl, "mdi", 32);
    out->start_ga = nl.input("start_ga");
    out->preset = word_input(nl, "preset", 2);
    out->rn = word_input(nl, "rn", 16);
    out->fitfunc_select = word_input(nl, "ffs", 3);
    out->fit_value_ext = word_input(nl, "fitvx", 16);
    out->fit_valid_ext = nl.input("fit_valid_ext");
    out->sel_force_found = nl.input("sel_force_found");

    const Net c0 = nl.constant(false);
    const Net c1 = nl.constant(true);
    (void)c1;

    // --------------------------------------------------- common logic --
    const Word onehot_st = decoder(nl, st);  // 64 one-hot nets; 26 used
    auto in_st = [&](State s) { return onehot_st[static_cast<std::size_t>(s)]; };
    auto st_const = [&](State s) {
        return word_const(nl, static_cast<std::uint64_t>(s), 6);
    };

    const Net start_rising = nl.g_and(out->start_ga, nl.g_not(sd[0]));

    // Internal/external fitness-response selection (constant-folded mask).
    const Word ffdec = decoder(nl, out->fitfunc_select);  // 8 outputs
    Net use_ext = c0;
    for (unsigned i = 0; i < 8; ++i) {
        if ((external_slot_mask >> i) & 1u) use_ext = nl.g_or(use_ext, ffdec[i]);
    }
    const Net valid_sel = nl.g_mux(use_ext, out->fit_valid_ext, out->fit_valid);
    const Word value_sel = word_mux(nl, use_ext, out->fit_value_ext, out->fit_value);

    const Word mem_cand = slice(out->mem_data_in, 0, 16);
    const Word mem_fit = slice(out->mem_data_in, 16, 32);

    // Selection hit condition (valid in kSelCheck).
    const AddResult cum_add = word_add(nl, scum, resize(nl, mem_fit, 24));
    Word cum_plus = cum_add.sum;
    cum_plus.push_back(cum_add.carry_out);  // 25 bits
    const Net gt_thresh = word_less_than(nl, resize(nl, sthr, 25), cum_plus);
    const AddResult srd_add = word_add(nl, srd, word_const(nl, 1, 9));
    Word srd_p1 = srd_add.sum;
    srd_p1.push_back(srd_add.carry_out);  // 10 bits
    Word two_pop(1, c0);                  // 2 * eff_pop: epop shifted left one
    for (const Net n : epop) two_pop.push_back(n);
    const Net exhausted =
        nl.g_not(word_less_than(nl, srd_p1, resize(nl, two_pop, 10)));
    const Net hit_own = nl.g_or(gt_thresh, exhausted);
    const Net hit = nl.g_or(hit_own, out->sel_force_found);

    // Rate decisions from the current random word.
    const Word rn_lo4 = slice(out->rn, 0, 4);
    const Word rn_hi4 = slice(out->rn, 4, 8);
    const Net xo_fire = word_less_than(nl, rn_lo4, ext);
    const Net mu_fire = word_less_than(nl, rn_lo4, emt);

    // Crossover network (operands: parent registers + latched cut/do).
    const Word xmask = thermometer_mask(nl, xcut, 16);
    const Word nxmask = word_not(nl, xmask);
    const Word mix1 =
        word_or(nl, word_and(nl, par1, xmask), word_and(nl, par2, nxmask));
    const Word mix2 =
        word_or(nl, word_and(nl, par2, xmask), word_and(nl, par1, nxmask));
    const Word xo_off1 = word_mux(nl, xdo[0], mix1, par1);
    const Word xo_off2 = word_mux(nl, xdo[0], mix2, par2);

    // Mutation network (applied to offspring registers from the live rn).
    const Word mu_onehot = decoder(nl, rn_hi4);
    Word mu_flip;
    mu_flip.reserve(16);
    for (unsigned i = 0; i < 16; ++i) mu_flip.push_back(nl.g_and(mu_onehot[i], mu_fire));
    const Word mut1 = word_xor(nl, off1, mu_flip);
    const Word mut2 = word_xor(nl, off2, mu_flip);

    // Arithmetic.
    const Word sum_cur_new = word_add(nl, fsc, resize(nl, freg, 24)).sum;
    const Word sum_new_new = word_add(nl, fsn, resize(nl, freg, 24)).sum;
    const Word product = build_multiplier(nl, fsc, out->rn);  // 40 bits
    const Word thr_new = slice(product, 16, 40);              // >> 16
    const Net better = word_less_than(nl, bfit, freg);        // fit_reg > best_fit
    const Word pidx_p1 = word_add(nl, pidx, word_const(nl, 1, 8)).sum;
    const Net pidx_more = word_less_than(nl, pidx_p1, epop);
    const Word nidx_p1 = word_add(nl, nidx, word_const(nl, 1, 8)).sum;
    const Net bank_full = nl.g_not(word_less_than(nl, nidx_p1, epop));
    const Net gens_done = nl.g_not(word_less_than(nl, gid, engs));
    const Word sidx_p1 = word_add(nl, sidx, word_const(nl, 1, 8)).sum;
    const Net sidx_wrap = nl.g_not(word_less_than(nl, sidx_p1, epop));
    const Word sidx_next = word_mux(nl, sidx_wrap, word_const(nl, 0, 8), sidx_p1);
    const Word gid_p1 = word_add(nl, gid, word_const(nl, 1, 32)).sum;

    // Effective parameters (kStart): preset resolution per Table IV.
    const Word pdec = decoder(nl, out->preset);  // 4 outputs
    const Net lt2 = word_less_than(nl, pops, word_const(nl, 2, 8));
    const Net gt128 = word_less_than(nl, word_const(nl, 128, 8), pops);
    const Word pop_clamped = word_mux(
        nl, lt2, word_const(nl, 2, 8),
        word_mux(nl, gt128, word_const(nl, 128, 8), pops));
    auto preset_mux = [&](const Word& user, std::uint64_t m1, std::uint64_t m2,
                          std::uint64_t m3) {
        const unsigned w = static_cast<unsigned>(user.size());
        Word result;
        result.reserve(w);
        const Word w1 = word_const(nl, m1, w);
        const Word w2 = word_const(nl, m2, w);
        const Word w3 = word_const(nl, m3, w);
        for (unsigned i = 0; i < w; ++i) {
            Net v = nl.g_and(pdec[0], user[i]);
            v = nl.g_or(v, nl.g_and(pdec[1], w1[i]));
            v = nl.g_or(v, nl.g_and(pdec[2], w2[i]));
            v = nl.g_or(v, nl.g_and(pdec[3], w3[i]));
            result.push_back(v);
        }
        return result;
    };
    Word ngens_user = ngl;
    ngens_user.insert(ngens_user.end(), ngh.begin(), ngh.end());  // {hi,lo} -> 32
    const Word eff_pop_val = preset_mux(pop_clamped, 32, 64, 128);
    const Word eff_ngens_val = preset_mux(ngens_user, 512, 1024, 4096);
    const Word eff_xt_val = preset_mux(xthr, 12, 13, 14);
    const Word eff_mt_val = preset_mux(mthr, 1, 2, 3);

    // -------------------------------------------- parameter init write --
    const Word idxdec = decoder(nl, out->index);  // 8
    const Net wr_init =
        nl.g_and(in_st(State::kInitWait), nl.g_and(out->ga_load, out->data_valid));
    regs.assign(ngl, nl.g_and(wr_init, idxdec[0]), out->value);
    regs.assign(ngh, nl.g_and(wr_init, idxdec[1]), out->value);
    regs.assign(pops, nl.g_and(wr_init, idxdec[2]), slice(out->value, 0, 8));
    regs.assign(xthr, nl.g_and(wr_init, idxdec[3]), slice(out->value, 0, 4));
    regs.assign(mthr, nl.g_and(wr_init, idxdec[4]), slice(out->value, 0, 4));

    // ------------------------------------------------ state transitions --
    auto go = [&](Net when, State to) { regs.assign(st, when, st_const(to)); };

    // start_d tracks start_ga only in kIdle/kDone (see ga_core.cpp).
    const Net track = nl.g_or(in_st(State::kIdle), in_st(State::kDone));
    regs.assign(sd, nl.constant(true), Word{nl.g_and(track, out->start_ga)});

    {  // kIdle
        const Net here = in_st(State::kIdle);
        go(nl.g_and(here, out->ga_load), State::kInitWait);
        go(nl.g_and(here, nl.g_and(nl.g_not(out->ga_load), start_rising)), State::kStart);
    }
    {  // kInitWait
        const Net here = in_st(State::kInitWait);
        go(nl.g_and(here, nl.g_not(out->ga_load)), State::kIdle);
        go(wr_init, State::kInitAck);
    }
    {  // kInitAck
        const Net drop = nl.g_and(in_st(State::kInitAck), nl.g_not(out->data_valid));
        go(nl.g_and(drop, out->ga_load), State::kInitWait);
        go(nl.g_and(drop, nl.g_not(out->ga_load)), State::kIdle);
    }
    {  // kStart
        const Net en = in_st(State::kStart);
        regs.assign(epop, en, eff_pop_val);
        regs.assign(engs, en, eff_ngens_val);
        regs.assign(ext, en, eff_xt_val);
        regs.assign(emt, en, eff_mt_val);
        regs.assign(gid, en, word_const(nl, 0, 32));
        regs.assign(pidx, en, word_const(nl, 0, 8));
        regs.assign(fsc, en, word_const(nl, 0, 24));
        regs.assign(bfit, en, word_const(nl, 0, 16));
        regs.assign(bind, en, word_const(nl, 0, 16));
        regs.assign(bankw, en, word_const(nl, 0, 1));
        go(en, State::kIpRn);
    }
    go(in_st(State::kIpRn), State::kIpGen);
    {  // kIpGen
        const Net en = in_st(State::kIpGen);
        regs.assign(ecnd, en, out->rn);
        regs.assign(ret, en, st_const(State::kIpStore));
        go(en, State::kEvalReq);
    }
    {  // kEvalReq
        const Net got = nl.g_and(in_st(State::kEvalReq), valid_sel);
        regs.assign(freg, got, value_sel);
        go(got, State::kEvalDrop);
    }
    {  // kEvalDrop -> ret_state
        const Net fin = nl.g_and(in_st(State::kEvalDrop), nl.g_not(valid_sel));
        regs.assign(st, fin, ret);
    }
    {  // kIpStore
        const Net en = in_st(State::kIpStore);
        regs.assign(fsc, en, sum_cur_new);
        regs.assign(bfit, nl.g_and(en, better), freg);
        regs.assign(bind, nl.g_and(en, better), ecnd);
        const Net more = nl.g_and(en, pidx_more);
        const Net fin = nl.g_and(en, nl.g_not(pidx_more));
        regs.assign(pidx, more, pidx_p1);
        regs.assign(pidx, fin, word_const(nl, 0, 8));
        go(more, State::kIpRn);
        go(fin, State::kGenCheck);
    }
    {  // kGenCheck
        const Net here = in_st(State::kGenCheck);
        go(nl.g_and(here, gens_done), State::kDone);
        go(nl.g_and(here, nl.g_not(gens_done)), State::kElite);
    }
    {  // kElite
        const Net en = in_st(State::kElite);
        regs.assign(fsn, en, resize(nl, bfit, 24));
        regs.assign(nidx, en, word_const(nl, 1, 8));
        regs.assign(p2ph, en, word_const(nl, 0, 1));
        go(en, State::kSelRn);
    }
    go(in_st(State::kSelRn), State::kSelThresh);
    {  // kSelThresh
        const Net en = in_st(State::kSelThresh);
        regs.assign(sthr, en, thr_new);
        regs.assign(scum, en, word_const(nl, 0, 24));
        regs.assign(sidx, en, word_const(nl, 0, 8));
        regs.assign(srd, en, word_const(nl, 0, 9));
        go(en, State::kSelAddr);
    }
    go(in_st(State::kSelAddr), State::kSelCheck);
    {  // kSelCheck
        const Net en = in_st(State::kSelCheck);
        const Net hit1 = nl.g_and(en, nl.g_and(hit, nl.g_not(p2ph[0])));
        const Net hit2 = nl.g_and(en, nl.g_and(hit, p2ph[0]));
        const Net miss = nl.g_and(en, nl.g_not(hit));
        regs.assign(par1, hit1, mem_cand);
        regs.assign(p2ph, hit1, word_const(nl, 1, 1));
        go(hit1, State::kSelRn);
        regs.assign(par2, hit2, mem_cand);
        regs.assign(p2ph, hit2, word_const(nl, 0, 1));
        go(hit2, State::kXoRn);
        regs.assign(scum, miss, resize(nl, cum_plus, 24));
        regs.assign(sidx, miss, sidx_next);
        regs.assign(srd, miss, resize(nl, srd_p1, 9));
        go(miss, State::kSelAddr);
    }
    go(in_st(State::kXoRn), State::kXoDecide);
    {  // kXoDecide
        const Net en = in_st(State::kXoDecide);
        regs.assign(xdo, en, Word{xo_fire});
        regs.assign(xcut, en, rn_hi4);
        go(en, State::kXoApply);
    }
    {  // kXoApply
        const Net en = in_st(State::kXoApply);
        regs.assign(off1, en, xo_off1);
        regs.assign(off2, en, xo_off2);
        go(en, State::kMu1Rn);
    }
    go(in_st(State::kMu1Rn), State::kMu1Apply);
    {  // kMu1Apply
        const Net en = in_st(State::kMu1Apply);
        regs.assign(off1, en, mut1);
        regs.assign(ecnd, en, mut1);
        regs.assign(ret, en, st_const(State::kStore1));
        go(en, State::kEvalReq);
    }
    {  // kStore1 / kStore2
        const Net en1 = in_st(State::kStore1);
        const Net en2 = in_st(State::kStore2);
        const Net en = nl.g_or(en1, en2);
        regs.assign(fsn, en, sum_new_new);
        regs.assign(bfit, nl.g_and(en, better), freg);
        regs.assign(bind, nl.g_and(en, better), ecnd);
        regs.assign(nidx, en, nidx_p1);
        go(nl.g_and(en, bank_full), State::kGenEnd);
        go(nl.g_and(en1, nl.g_not(bank_full)), State::kMu2Rn);
        go(nl.g_and(en2, nl.g_not(bank_full)), State::kSelRn);
    }
    go(in_st(State::kMu2Rn), State::kMu2Apply);
    {  // kMu2Apply
        const Net en = in_st(State::kMu2Apply);
        regs.assign(off2, en, mut2);
        regs.assign(ecnd, en, mut2);
        regs.assign(ret, en, st_const(State::kStore2));
        go(en, State::kEvalReq);
    }
    {  // kGenEnd
        const Net en = in_st(State::kGenEnd);
        regs.assign(bankw, en, Word{nl.g_not(bankw[0])});
        regs.assign(fsc, en, fsn);
        regs.assign(gid, en, gid_p1);
        go(en, State::kGenCheck);
    }
    {  // kDone
        const Net here = in_st(State::kDone);
        go(nl.g_and(here, out->ga_load), State::kInitWait);
        go(nl.g_and(here, nl.g_and(nl.g_not(out->ga_load), start_rising)), State::kStart);
    }

    regs.finalize(out->reset);

    // ---------------------------------------------------------- outputs --
    out->data_ack = in_st(State::kInitAck);
    out->ga_done = in_st(State::kDone);
    out->fit_request = in_st(State::kEvalReq);
    out->rn_next =
        nl.g_or(in_st(State::kIpRn),
                nl.g_or(in_st(State::kSelRn),
                        nl.g_or(in_st(State::kXoRn),
                                nl.g_or(in_st(State::kMu1Rn), in_st(State::kMu2Rn)))));
    const Net evaluating = nl.g_or(in_st(State::kEvalReq), in_st(State::kEvalDrop));
    out->candidate = word_mux(nl, evaluating, ecnd, bind);
    out->sel_found = nl.g_and(in_st(State::kSelCheck), hit_own);
    out->mon_gen_pulse = in_st(State::kGenCheck);
    out->mon_gen_id = gid;
    out->mon_best_fit = bfit;
    out->mon_fit_sum = fsc;
    out->mon_best_ind = bind;
    out->mon_bank = bankw[0];
    out->mon_pop_size = epop;

    // Memory interface muxes (mutually exclusive state predicates).
    const Net rd_sel = nl.g_or(in_st(State::kSelAddr), in_st(State::kSelCheck));
    const Net wr_ip = in_st(State::kIpStore);
    const Net wr_elite = in_st(State::kElite);
    const Net wr_new = nl.g_or(in_st(State::kStore1), in_st(State::kStore2));
    out->mem_wr = nl.g_or(wr_ip, nl.g_or(wr_elite, wr_new));

    const Net nbank = nl.g_not(bankw[0]);
    Word addr(8, c0);
    for (unsigned i = 0; i < 7; ++i) {
        Net a = nl.g_and(rd_sel, sidx[i]);
        a = nl.g_or(a, nl.g_and(wr_ip, pidx[i]));
        a = nl.g_or(a, nl.g_and(wr_new, nidx[i]));
        // elite writes index 0
        addr[i] = a;
    }
    {
        Net b = nl.g_and(rd_sel, bankw[0]);
        b = nl.g_or(b, nl.g_and(wr_ip, bankw[0]));
        b = nl.g_or(b, nl.g_and(wr_elite, nbank));
        b = nl.g_or(b, nl.g_and(wr_new, nbank));
        addr[7] = b;
    }
    out->mem_address = addr;

    Word mdo(32, c0);
    const Net wr_off = nl.g_or(wr_ip, wr_new);
    for (unsigned i = 0; i < 16; ++i) {
        mdo[i] = nl.g_or(nl.g_and(wr_off, ecnd[i]), nl.g_and(wr_elite, bind[i]));
        mdo[16 + i] = nl.g_or(nl.g_and(wr_off, freg[i]), nl.g_and(wr_elite, bfit[i]));
    }
    out->mem_data_out = mdo;

    out->state = st;
    out->gen_id = gid;
    out->best_fit = bfit;
    out->best_ind = bind;
    out->bank = bankw[0];
    return out;
}

// ------------------------------------------------------------- adapter --

GateLevelGaCore::GateLevelGaCore(std::string name, core::GaCorePorts ports,
                                 core::GaCoreConfig cfg)
    : Module(std::move(name)), p_(ports),
      g_(build_ga_core_netlist(cfg.external_slot_mask)) {}

void GateLevelGaCore::push_inputs() {
    GateNetlist& nl = g_->nl;
    nl.set_input(g_->reset, false);
    nl.set_input(g_->ga_load, p_.ga_load.read());
    nl.set_input(g_->data_valid, p_.data_valid.read());
    nl.set_input(g_->fit_valid, p_.fit_valid.read());
    nl.set_input(g_->start_ga, p_.start_ga.read());
    nl.set_input(g_->fit_valid_ext, p_.fit_valid_ext.read());
    nl.set_input(g_->sel_force_found, p_.sel_force_found.read());
    auto push_word = [&](const Word& w, std::uint64_t v) {
        for (std::size_t i = 0; i < w.size(); ++i) nl.set_input(w[i], (v >> i) & 1u);
    };
    push_word(g_->index, p_.index.read());
    push_word(g_->value, p_.value.read());
    push_word(g_->fit_value, p_.fit_value.read());
    push_word(g_->mem_data_in, p_.mem_data_in.read());
    push_word(g_->preset, p_.preset.read());
    push_word(g_->rn, p_.rn.read());
    push_word(g_->fitfunc_select, p_.fitfunc_select.read());
    push_word(g_->fit_value_ext, p_.fit_value_ext.read());
}

void GateLevelGaCore::eval() {
    GateNetlist& nl = g_->nl;

    if (p_.test.read()) {
        // Same scan-mode gating as the RT-level core.
        p_.data_ack.drive(false);
        p_.ga_done.drive(false);
        p_.fit_request.drive(false);
        p_.rn_next.drive(false);
        p_.mem_wr.drive(false);
        p_.mem_address.drive(0);
        p_.mem_data_out.drive(0);
        p_.sel_found.drive(false);
        p_.mon_gen_pulse.drive(false);
        p_.candidate.drive(static_cast<std::uint16_t>(nl.word_value(g_->best_ind)));
        p_.scanout.drive(nl.scan_tail());
        return;
    }

    push_inputs();
    nl.eval();

    p_.data_ack.drive(nl.value(g_->data_ack));
    p_.ga_done.drive(nl.value(g_->ga_done));
    p_.fit_request.drive(nl.value(g_->fit_request));
    p_.rn_next.drive(nl.value(g_->rn_next));
    p_.candidate.drive(static_cast<std::uint16_t>(nl.word_value(g_->candidate)));
    p_.mem_address.drive(static_cast<std::uint8_t>(nl.word_value(g_->mem_address)));
    p_.mem_data_out.drive(static_cast<std::uint32_t>(nl.word_value(g_->mem_data_out)));
    p_.mem_wr.drive(nl.value(g_->mem_wr));
    p_.sel_found.drive(nl.value(g_->sel_found));
    p_.scanout.drive(false);
    p_.mon_gen_pulse.drive(nl.value(g_->mon_gen_pulse));
    p_.mon_gen_id.drive(static_cast<std::uint32_t>(nl.word_value(g_->mon_gen_id)));
    p_.mon_best_fit.drive(static_cast<std::uint16_t>(nl.word_value(g_->mon_best_fit)));
    p_.mon_fit_sum.drive(static_cast<std::uint32_t>(nl.word_value(g_->mon_fit_sum)));
    p_.mon_best_ind.drive(static_cast<std::uint16_t>(nl.word_value(g_->mon_best_ind)));
    p_.mon_bank.drive(nl.value(g_->mon_bank));
    p_.mon_pop_size.drive(static_cast<std::uint8_t>(nl.word_value(g_->mon_pop_size)));
}

void GateLevelGaCore::tick() {
    GateNetlist& nl = g_->nl;
    if (p_.test.read()) {
        nl.clock(true, p_.scanin.read());
        return;
    }
    push_inputs();
    nl.eval();
    nl.clock();
}

void GateLevelGaCore::reset_state() {
    GateNetlist& nl = g_->nl;
    push_inputs();
    nl.set_input(g_->reset, true);
    nl.eval();
    nl.clock();
    nl.set_input(g_->reset, false);
    nl.eval();
}

core::GaCore::State GateLevelGaCore::state() const {
    return static_cast<core::GaCore::State>(g_->nl.word_value(g_->state));
}

std::uint32_t GateLevelGaCore::generation() const {
    return static_cast<std::uint32_t>(g_->nl.word_value(g_->gen_id));
}

std::uint16_t GateLevelGaCore::best_fitness() const {
    return static_cast<std::uint16_t>(g_->nl.word_value(g_->best_fit));
}

std::uint16_t GateLevelGaCore::best_candidate() const {
    return static_cast<std::uint16_t>(g_->nl.word_value(g_->best_ind));
}

}  // namespace gaip::gates
