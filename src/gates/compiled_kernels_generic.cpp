// Portable kernel table + the runtime dispatcher. Compiled with the
// project's default flags only — must run on any target.
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>

#include "gates/compiled.hpp"
#include "gates/compiled_kernels.hpp"

namespace gaip::gates::kernels {

namespace {
#include "gates/compiled_kernels_impl.inl"

/// Strictly-parsed GAIP_KERNEL value. Returns nullptr when unset; throws
/// on anything outside the known variant names — a typo must fail loudly
/// instead of silently falling through to the generic engine.
const char* forced_kernel() {
    const char* forced = std::getenv("GAIP_KERNEL");
    if (forced == nullptr || *forced == '\0') return nullptr;
    if (std::strcmp(forced, "generic") != 0 && std::strcmp(forced, "avx2") != 0 &&
        std::strcmp(forced, "avx512") != 0)
        throw std::invalid_argument("GAIP_KERNEL: unknown value \"" + std::string(forced) +
                                    "\" (expected generic, avx2, or avx512)");
    return forced;
}

/// Shared resolution for select()/selected_name(): which variant runs for
/// `words` on this CPU under the current (validated) GAIP_KERNEL.
const char* resolve_variant(unsigned words) {
    const char* forced = forced_kernel();
#if defined(GAIP_X86_KERNELS)
    const bool has512 = __builtin_cpu_supports("avx512f") != 0;
    const bool has2 = __builtin_cpu_supports("avx2") != 0;
    if (forced != nullptr) {
        // A known variant this CPU lacks degrades to generic so one test
        // matrix runs on every host; unknown names threw above.
        if (std::strcmp(forced, "avx512") == 0 && has512) return "avx512";
        if (std::strcmp(forced, "avx2") == 0 && has2) return "avx2";
        return "generic";
    }
    if (has512 && avx512(words) != nullptr) return "avx512";
    if (has2 && avx2(words) != nullptr) return "avx2";
#else
    (void)forced;
    (void)words;
#endif
    return "generic";
}

}  // namespace

KernelFn generic(unsigned words) { return table(words); }

KernelFn select(unsigned words) {
    const char* variant = resolve_variant(words);
#if defined(GAIP_X86_KERNELS)
    if (std::strcmp(variant, "avx512") == 0) return avx512(words);
    if (std::strcmp(variant, "avx2") == 0) return avx2(words);
#endif
    (void)variant;
    return generic(words);
}

const char* selected_name(unsigned words) { return resolve_variant(words); }

}  // namespace gaip::gates::kernels
