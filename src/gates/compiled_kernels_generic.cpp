// Portable kernel table + the runtime dispatcher. Compiled with the
// project's default flags only — must run on any target.
#include <cstdlib>
#include <cstring>

#include "gates/compiled.hpp"
#include "gates/compiled_kernels.hpp"

namespace gaip::gates::kernels {

namespace {
#include "gates/compiled_kernels_impl.inl"
}  // namespace

KernelFn generic(unsigned words) { return table(words); }

KernelFn select(unsigned words) {
    const char* forced = std::getenv("GAIP_KERNEL");
#if defined(GAIP_X86_KERNELS)
    const bool has512 = __builtin_cpu_supports("avx512f") != 0;
    const bool has2 = __builtin_cpu_supports("avx2") != 0;
    if (forced != nullptr) {
        if (std::strcmp(forced, "avx512") == 0 && has512) return avx512(words);
        if (std::strcmp(forced, "avx2") == 0 && has2) return avx2(words);
        return generic(words);
    }
    if (has512) {
        if (KernelFn f = avx512(words)) return f;
    }
    if (has2) {
        if (KernelFn f = avx2(words)) return f;
    }
#else
    (void)forced;
#endif
    return generic(words);
}

}  // namespace gaip::gates::kernels
