#include "gates/blocks.hpp"

namespace gaip::gates {

CaPrngBlock build_ca_prng(GateNetlist& nl, std::uint16_t rule150_mask) {
    CaPrngBlock blk;
    blk.state = word_reg(nl, "ca", 16);
    blk.seed = word_input(nl, "seed", 16);
    blk.load = nl.input("load");

    // next[i] = left ^ right (^ self when cell i runs rule 150); null
    // boundary (missing neighbors read 0, so the XOR term drops away).
    Word next;
    next.reserve(16);
    for (unsigned i = 0; i < 16; ++i) {
        const Net left = (i + 1 < 16) ? blk.state[i + 1] : kNoNet;
        const Net right = (i > 0) ? blk.state[i - 1] : kNoNet;
        Net n;
        if (left != kNoNet && right != kNoNet) {
            n = nl.g_xor(left, right);
        } else {
            n = nl.gate(GateOp::kBuf, left != kNoNet ? left : right);
        }
        if ((rule150_mask >> i) & 1u) n = nl.g_xor(n, blk.state[i]);
        next.push_back(n);
    }
    connect_word_reg(nl, blk.state, word_mux(nl, blk.load, blk.seed, next));
    return blk;
}

CrossoverBlock build_crossover_unit(GateNetlist& nl) {
    CrossoverBlock blk;
    blk.p1 = word_input(nl, "p1_", 16);
    blk.p2 = word_input(nl, "p2_", 16);
    blk.cut = word_input(nl, "cut", 4);
    blk.do_xover = nl.input("do_xover");

    const Word mask = thermometer_mask(nl, blk.cut, 16);
    const Word nmask = word_not(nl, mask);
    const Word x1 = word_or(nl, word_and(nl, blk.p1, mask), word_and(nl, blk.p2, nmask));
    const Word x2 = word_or(nl, word_and(nl, blk.p2, mask), word_and(nl, blk.p1, nmask));
    blk.off1 = word_mux(nl, blk.do_xover, x1, blk.p1);
    blk.off2 = word_mux(nl, blk.do_xover, x2, blk.p2);
    return blk;
}

MutationBlock build_mutation_unit(GateNetlist& nl) {
    MutationBlock blk;
    blk.in = word_input(nl, "m_in", 16);
    blk.pos = word_input(nl, "m_pos", 4);
    blk.do_mutate = nl.input("do_mutate");

    const Word onehot = decoder(nl, blk.pos);
    Word flip;
    flip.reserve(16);
    for (unsigned i = 0; i < 16; ++i) flip.push_back(nl.g_and(onehot[i], blk.do_mutate));
    blk.out = word_xor(nl, blk.in, flip);
    return blk;
}

ThresholdBlock build_threshold_compare(GateNetlist& nl) {
    ThresholdBlock blk;
    blk.rand4 = word_input(nl, "rand", 4);
    blk.threshold = word_input(nl, "thresh", 4);
    blk.fire = word_less_than(nl, blk.rand4, blk.threshold);
    return blk;
}

Word build_multiplier(GateNetlist& nl, const Word& a, const Word& b) {
    // Shift-and-add array: accumulate (a << i) gated by b[i] into a product
    // register-free combinational tree of ripple adders.
    const unsigned pw = static_cast<unsigned>(a.size() + b.size());
    const Net zero = nl.constant(false);
    Word acc(pw, zero);
    for (std::size_t i = 0; i < b.size(); ++i) {
        // Partial product: (a & b[i]) aligned at bit i, zero elsewhere.
        Word pp(pw, zero);
        for (std::size_t j = 0; j < a.size(); ++j) pp[i + j] = nl.g_and(a[j], b[i]);
        acc = word_add(nl, acc, pp).sum;
    }
    return acc;
}

SelectionThresholdBlock build_selection_threshold(GateNetlist& nl) {
    SelectionThresholdBlock blk;
    blk.fit_sum = word_input(nl, "fsum", 24);
    blk.rn = word_input(nl, "rn", 16);
    const Word product = build_multiplier(nl, blk.fit_sum, blk.rn);  // 40 bits
    blk.threshold = Word(product.begin() + 16, product.begin() + 40);  // >> 16
    return blk;
}

OperatorDatapath build_operator_datapath(GateNetlist& nl) {
    OperatorDatapath dp;
    dp.p1 = word_input(nl, "dp_p1_", 16);
    dp.p2 = word_input(nl, "dp_p2_", 16);
    dp.rand_xo = word_input(nl, "dp_rxo_", 16);
    dp.rand_mu1 = word_input(nl, "dp_rm1_", 16);
    dp.rand_mu2 = word_input(nl, "dp_rm2_", 16);
    dp.xover_threshold = word_input(nl, "dp_xt_", 4);
    dp.mut_threshold = word_input(nl, "dp_mt_", 4);

    auto nibble = [](const Word& w, unsigned n) {
        return Word(w.begin() + 4 * n, w.begin() + 4 * (n + 1));
    };

    // Crossover: decide = rand_xo[3:0] < xt, cut = rand_xo[7:4].
    const Net do_xo = word_less_than(nl, nibble(dp.rand_xo, 0), dp.xover_threshold);
    const Word mask = thermometer_mask(nl, nibble(dp.rand_xo, 1), 16);
    const Word nmask = word_not(nl, mask);
    const Word x1 = word_or(nl, word_and(nl, dp.p1, mask), word_and(nl, dp.p2, nmask));
    const Word x2 = word_or(nl, word_and(nl, dp.p2, mask), word_and(nl, dp.p1, nmask));
    const Word o1 = word_mux(nl, do_xo, x1, dp.p1);
    const Word o2 = word_mux(nl, do_xo, x2, dp.p2);

    // Mutations: decide = rand[3:0] < mt, position = rand[7:4].
    auto mutate = [&](const Word& off, const Word& rnd) {
        const Net fire = word_less_than(nl, nibble(rnd, 0), dp.mut_threshold);
        const Word onehot = decoder(nl, nibble(rnd, 1));
        Word flip;
        flip.reserve(16);
        for (unsigned i = 0; i < 16; ++i) flip.push_back(nl.g_and(onehot[i], fire));
        return word_xor(nl, off, flip);
    };
    dp.off1 = mutate(o1, dp.rand_mu1);
    dp.off2 = mutate(o2, dp.rand_mu2);
    return dp;
}

}  // namespace gaip::gates
