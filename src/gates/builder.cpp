#include "gates/builder.hpp"

#include <stdexcept>

namespace gaip::gates {

namespace {
void check_same_width(const Word& a, const Word& b, const char* what) {
    if (a.size() != b.size()) throw std::invalid_argument(std::string(what) + ": width mismatch");
}
}  // namespace

Word word_input(GateNetlist& nl, const std::string& name, unsigned width) {
    Word w;
    w.reserve(width);
    for (unsigned i = 0; i < width; ++i) w.push_back(nl.input(name + std::to_string(i)));
    return w;
}

Word word_reg(GateNetlist& nl, const std::string& name, unsigned width) {
    Word w;
    w.reserve(width);
    for (unsigned i = 0; i < width; ++i) w.push_back(nl.reg(name + std::to_string(i)));
    return w;
}

void connect_word_reg(GateNetlist& nl, const Word& q, const Word& d) {
    check_same_width(q, d, "connect_word_reg");
    for (std::size_t i = 0; i < q.size(); ++i) nl.connect_reg(q[i], d[i]);
}

Word word_const(GateNetlist& nl, std::uint64_t value, unsigned width) {
    Word w;
    w.reserve(width);
    for (unsigned i = 0; i < width; ++i) w.push_back(nl.constant(((value >> i) & 1u) != 0));
    return w;
}

Word word_not(GateNetlist& nl, const Word& a) {
    Word w;
    w.reserve(a.size());
    for (const Net n : a) w.push_back(nl.g_not(n));
    return w;
}

Word word_and(GateNetlist& nl, const Word& a, const Word& b) {
    check_same_width(a, b, "word_and");
    Word w;
    w.reserve(a.size());
    for (std::size_t i = 0; i < a.size(); ++i) w.push_back(nl.g_and(a[i], b[i]));
    return w;
}

Word word_or(GateNetlist& nl, const Word& a, const Word& b) {
    check_same_width(a, b, "word_or");
    Word w;
    w.reserve(a.size());
    for (std::size_t i = 0; i < a.size(); ++i) w.push_back(nl.g_or(a[i], b[i]));
    return w;
}

Word word_xor(GateNetlist& nl, const Word& a, const Word& b) {
    check_same_width(a, b, "word_xor");
    Word w;
    w.reserve(a.size());
    for (std::size_t i = 0; i < a.size(); ++i) w.push_back(nl.g_xor(a[i], b[i]));
    return w;
}

Word word_mux(GateNetlist& nl, Net sel, const Word& when1, const Word& when0) {
    check_same_width(when1, when0, "word_mux");
    Word w;
    w.reserve(when1.size());
    for (std::size_t i = 0; i < when1.size(); ++i)
        w.push_back(nl.g_mux(sel, when1[i], when0[i]));
    return w;
}

AddResult word_add(GateNetlist& nl, const Word& a, const Word& b, Net carry_in) {
    check_same_width(a, b, "word_add");
    Net carry = (carry_in == kNoNet) ? nl.constant(false) : carry_in;
    Word sum;
    sum.reserve(a.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        const Net axb = nl.g_xor(a[i], b[i]);
        sum.push_back(nl.g_xor(axb, carry));
        carry = nl.g_or(nl.g_and(a[i], b[i]), nl.g_and(axb, carry));
    }
    return AddResult{std::move(sum), carry};
}

Net word_less_than(GateNetlist& nl, const Word& a, const Word& b) {
    check_same_width(a, b, "word_less_than");
    // From LSB to MSB: lt = (~a & b) | (a ~^ b) & lt_lower.
    Net lt = nl.constant(false);
    for (std::size_t i = 0; i < a.size(); ++i) {
        const Net eq = nl.g_not(nl.g_xor(a[i], b[i]));
        const Net ai_lt_bi = nl.g_and(nl.g_not(a[i]), b[i]);
        lt = nl.g_or(ai_lt_bi, nl.g_and(eq, lt));
    }
    return lt;
}

Net word_equal(GateNetlist& nl, const Word& a, const Word& b) {
    check_same_width(a, b, "word_equal");
    Word eq;
    eq.reserve(a.size());
    for (std::size_t i = 0; i < a.size(); ++i) eq.push_back(nl.g_not(nl.g_xor(a[i], b[i])));
    return reduce_and(nl, eq);
}

Word decoder(GateNetlist& nl, const Word& sel) {
    const std::size_t outputs = std::size_t{1} << sel.size();
    Word inv;
    inv.reserve(sel.size());
    for (const Net s : sel) inv.push_back(nl.g_not(s));
    Word out;
    out.reserve(outputs);
    for (std::size_t v = 0; v < outputs; ++v) {
        Net term = nl.constant(true);
        for (std::size_t b = 0; b < sel.size(); ++b)
            term = nl.g_and(term, ((v >> b) & 1u) ? sel[b] : inv[b]);
        out.push_back(term);
    }
    return out;
}

Word thermometer_mask(GateNetlist& nl, const Word& sel, unsigned width) {
    // mask[i] = (i < sel): one-hot decode, then suffix-OR: mask[i] =
    // OR_{j > i} onehot[j] (and any sel >= width also sets all bits).
    const Word onehot = decoder(nl, sel);
    Word mask(width, kNoNet);
    Net suffix = nl.constant(false);
    for (std::size_t j = onehot.size(); j-- > 0;) {
        if (j < width) mask[j] = suffix;
        suffix = nl.g_or(suffix, onehot[j]);
    }
    return mask;
}

Net reduce_or(GateNetlist& nl, const Word& a) {
    if (a.empty()) return nl.constant(false);
    Net acc = a[0];
    for (std::size_t i = 1; i < a.size(); ++i) acc = nl.g_or(acc, a[i]);
    return acc;
}

Net reduce_and(GateNetlist& nl, const Word& a) {
    if (a.empty()) return nl.constant(true);
    Net acc = a[0];
    for (std::size_t i = 1; i < a.size(); ++i) acc = nl.g_and(acc, a[i]);
    return acc;
}

}  // namespace gaip::gates
