// AVX-512F kernel table: compiled with -mavx512f so the W=8 block (one
// full 64-byte cache line per net) becomes one 512-bit vpandq/vpxorq
// chain per gate — or a single vpternlogq once the compiler fuses the
// three-input form. Only entered after
// __builtin_cpu_supports("avx512f") in kernels::select().
#include "gates/compiled.hpp"
#include "gates/compiled_kernels.hpp"

namespace gaip::gates::kernels {

namespace {
#include "gates/compiled_kernels_impl.inl"
}  // namespace

KernelFn avx512(unsigned words) { return table(words); }

}  // namespace gaip::gates::kernels
