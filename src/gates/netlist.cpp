#include "gates/netlist.hpp"

#include <sstream>
#include <stdexcept>
#include <string>

namespace gaip::gates {

const char* gate_op_name(GateOp op) {
    switch (op) {
        case GateOp::kConst0: return "const0";
        case GateOp::kConst1: return "const1";
        case GateOp::kInput: return "input";
        case GateOp::kState: return "state";
        case GateOp::kBuf: return "buf";
        case GateOp::kNot: return "not";
        case GateOp::kAnd: return "and";
        case GateOp::kOr: return "or";
        case GateOp::kXor: return "xor";
        case GateOp::kNand: return "nand";
        case GateOp::kNor: return "nor";
    }
    return "?";
}

Net GateNetlist::new_net(GateOp op, Net a, Net b, std::string name) {
    const Net id = static_cast<Net>(ops_.size());
    ops_.push_back(op);
    in_a_.push_back(a);
    in_b_.push_back(b);
    values_.push_back(0);
    names_.push_back(std::move(name));
    reg_index_of_net_.push_back(0xFFFFFFFFu);
    return id;
}

Net GateNetlist::input(std::string name) {
    return new_net(GateOp::kInput, kNoNet, kNoNet, std::move(name));
}

Net GateNetlist::constant(bool v) {
    return new_net(v ? GateOp::kConst1 : GateOp::kConst0, kNoNet, kNoNet, "");
}

Net GateNetlist::gate(GateOp op, Net a, Net b) {
    const bool unary = (op == GateOp::kNot || op == GateOp::kBuf);
    if (a >= ops_.size()) throw std::invalid_argument("gate: input net a not yet defined");
    if (!unary && b >= ops_.size())
        throw std::invalid_argument("gate: input net b not yet defined");
    if (op == GateOp::kConst0 || op == GateOp::kConst1 || op == GateOp::kInput ||
        op == GateOp::kState)
        throw std::invalid_argument("gate: pseudo-op not allowed here");
    return new_net(op, a, unary ? kNoNet : b, "");
}

Net GateNetlist::reg(std::string name) {
    const Net q = new_net(GateOp::kState, kNoNet, kNoNet, std::move(name));
    reg_index_of_net_[q] = static_cast<std::uint32_t>(regs_.size());
    regs_.push_back(RegInfo{q, kNoNet, names_[q]});
    return q;
}

void GateNetlist::connect_reg(Net q, Net d) {
    if (q >= ops_.size() || reg_index_of_net_[q] == 0xFFFFFFFFu)
        throw std::invalid_argument("connect_reg: not a register Q net");
    if (d >= ops_.size()) throw std::invalid_argument("connect_reg: D net not defined");
    regs_[reg_index_of_net_[q]].d = d;
}

void GateNetlist::output(std::string name, Net n) {
    if (n >= ops_.size()) throw std::invalid_argument("output: net not defined");
    outputs_.emplace_back(std::move(name), n);
}

void GateNetlist::set_input(Net n, bool v) {
    if (n >= ops_.size() || ops_[n] != GateOp::kInput)
        throw std::invalid_argument("set_input: not an input net");
    values_[n] = v ? 1 : 0;
}

void GateNetlist::set_word_input(const std::vector<Net>& w, std::uint64_t value) {
    if (w.size() < 64 && (value >> w.size()) != 0)
        throw std::invalid_argument("set_word_input: value has bits beyond the " +
                                    std::to_string(w.size()) + "-bit word");
    for (std::size_t i = 0; i < w.size(); ++i)
        set_input(w[i], i < 64 && ((value >> i) & 1u));
}

void GateNetlist::set_register(Net q, bool v) {
    if (q >= ops_.size() || ops_[q] != GateOp::kState)
        throw std::invalid_argument("set_register: not a register net");
    values_[q] = v ? 1 : 0;
}

void GateNetlist::eval() {
    for (std::size_t i = 0; i < ops_.size(); ++i) {
        switch (ops_[i]) {
            case GateOp::kConst0: values_[i] = 0; break;
            case GateOp::kConst1: values_[i] = 1; break;
            case GateOp::kInput:
            case GateOp::kState: break;  // externally held
            case GateOp::kBuf: values_[i] = values_[in_a_[i]]; break;
            case GateOp::kNot: values_[i] = values_[in_a_[i]] ^ 1u; break;
            case GateOp::kAnd: values_[i] = values_[in_a_[i]] & values_[in_b_[i]]; break;
            case GateOp::kOr: values_[i] = values_[in_a_[i]] | values_[in_b_[i]]; break;
            case GateOp::kXor: values_[i] = values_[in_a_[i]] ^ values_[in_b_[i]]; break;
            case GateOp::kNand:
                values_[i] = (values_[in_a_[i]] & values_[in_b_[i]]) ^ 1u;
                break;
            case GateOp::kNor:
                values_[i] = (values_[in_a_[i]] | values_[in_b_[i]]) ^ 1u;
                break;
        }
    }
}

bool GateNetlist::value(Net n) const {
    if (n >= ops_.size()) throw std::invalid_argument("value: net not defined");
    return values_[n] != 0;
}

std::uint64_t GateNetlist::word_value(const std::vector<Net>& nets) const {
    if (nets.size() > 64)
        throw std::invalid_argument("word_value: more than 64 nets cannot pack into u64");
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < nets.size(); ++i)
        if (value(nets[i])) v |= std::uint64_t{1} << i;
    return v;
}

bool GateNetlist::clock(bool test_mode, bool scan_in) {
    if (regs_.empty()) return false;
    const bool out = values_[regs_.back().q] != 0;
    if (test_mode) {
        // Shift toward the last-declared register; scan_in enters the head.
        bool carry = scan_in;
        for (RegInfo& r : regs_) {
            const bool old = values_[r.q] != 0;
            values_[r.q] = carry ? 1 : 0;
            carry = old;
        }
    } else {
        std::vector<std::uint8_t> next(regs_.size());
        for (std::size_t i = 0; i < regs_.size(); ++i) {
            if (regs_[i].d == kNoNet)
                throw std::logic_error("clock: register " + regs_[i].name + " has no D");
            next[i] = values_[regs_[i].d];
        }
        for (std::size_t i = 0; i < regs_.size(); ++i) values_[regs_[i].q] = next[i];
    }
    return out;
}

GateStats GateNetlist::stats() const {
    GateStats s;
    for (const GateOp op : ops_) {
        s.per_op[static_cast<std::size_t>(op)]++;
        switch (op) {
            case GateOp::kConst0:
            case GateOp::kConst1:
                break;
            case GateOp::kInput: s.inputs++; break;
            case GateOp::kState: break;
            default: s.logic_gates++; break;
        }
    }
    s.registers = static_cast<std::uint32_t>(regs_.size());
    return s;
}

std::string GateNetlist::to_verilog(const std::string& module_name) const {
    std::ostringstream os;
    os << "// Gate-level netlist generated by gaip::gates (simple Boolean gates +\n";
    os << "// SCAN_REGISTER primitives, as in the paper's flattened deliverable).\n";
    os << "module " << module_name << " (clk, test, scanin, scanout";
    for (std::size_t i = 0; i < ops_.size(); ++i)
        if (ops_[i] == GateOp::kInput) os << ", " << names_[i];
    for (const auto& [name, net] : outputs_) os << ", " << name;
    os << ");\n";
    os << "  input clk, test, scanin;\n  output scanout;\n";
    for (std::size_t i = 0; i < ops_.size(); ++i)
        if (ops_[i] == GateOp::kInput) os << "  input " << names_[i] << ";\n";
    for (const auto& [name, net] : outputs_) os << "  output " << name << ";\n";

    auto net_name = [&](Net n) -> std::string {
        if (ops_[n] == GateOp::kInput) return names_[n];
        if (ops_[n] == GateOp::kState) return "q_" + names_[n];
        return "n" + std::to_string(n);
    };

    os << "  wire ";
    bool first = true;
    for (std::size_t i = 0; i < ops_.size(); ++i) {
        if (ops_[i] == GateOp::kInput) continue;
        if (!first) os << ", ";
        os << net_name(static_cast<Net>(i));
        first = false;
    }
    os << ";\n\n";

    for (std::size_t i = 0; i < ops_.size(); ++i) {
        const Net n = static_cast<Net>(i);
        switch (ops_[i]) {
            case GateOp::kConst0: os << "  assign " << net_name(n) << " = 1'b0;\n"; break;
            case GateOp::kConst1: os << "  assign " << net_name(n) << " = 1'b1;\n"; break;
            case GateOp::kInput:
            case GateOp::kState: break;
            case GateOp::kBuf:
                os << "  buf  g" << i << " (" << net_name(n) << ", " << net_name(in_a_[i])
                   << ");\n";
                break;
            case GateOp::kNot:
                os << "  not  g" << i << " (" << net_name(n) << ", " << net_name(in_a_[i])
                   << ");\n";
                break;
            default:
                os << "  " << gate_op_name(ops_[i]) << (ops_[i] == GateOp::kOr ? "   g" : "  g")
                   << i << " (" << net_name(n) << ", " << net_name(in_a_[i]) << ", "
                   << net_name(in_b_[i]) << ");\n";
                break;
        }
    }

    os << "\n";
    std::string prev_scan = "scanin";
    for (std::size_t i = 0; i < regs_.size(); ++i) {
        const RegInfo& r = regs_[i];
        const std::string q = "q_" + r.name;
        const std::string so = (i + 1 == regs_.size()) ? std::string("scanout")
                                                       : "scan_" + std::to_string(i);
        if (i + 1 != regs_.size()) os << "  wire " << so << ";\n";
        os << "  SCAN_REGISTER r" << i << " (.clk(clk), .test(test), .d("
           << (r.d == kNoNet ? std::string("1'b0") : net_name(r.d)) << "), .q(" << q
           << "), .scan_in(" << prev_scan << "), .scan_out(" << so << "));\n";
        prev_scan = q;
    }
    for (const auto& [name, net] : outputs_)
        os << "  assign " << name << " = " << net_name(net) << ";\n";
    os << "endmodule\n";
    return os.str();
}

}  // namespace gaip::gates
