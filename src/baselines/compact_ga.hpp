// Compact GA (Aporntewan & Chongstitvatana [10]) — the alternative
// hardware-friendly GA template the paper discusses in Sec. II-B.
//
// Instead of a population, the cGA keeps one probability per chromosome
// bit, samples two competitors per step, and nudges the probabilities
// toward the winner — a tiny hardware footprint (the cited implementation
// stores 8-bit counters per bit in registers). The paper's critique, which
// bench_related_work reproduces: "compact GAs suffer from a severe
// limitation that their convergence to the optimal solution is guaranteed
// only for the class of applications that possess tightly coded
// nonoverlapping building blocks" — i.e. fine on order-1 problems (OneMax),
// poor on higher-order structure (RoyalRoad) and rugged landscapes.
#pragma once

#include <array>
#include <cstdint>

#include "core/behavioral.hpp"

namespace gaip::baselines {

struct CompactGaConfig {
    /// Virtual population size: probabilities move in steps of 1/n. The
    /// hardware version uses an 8-bit counter, i.e. n = 256.
    unsigned virtual_population = 256;
    /// Fitness-evaluation budget (two per competition step).
    std::uint64_t evaluation_budget = 4096;
    std::uint16_t seed = 1;
    prng::RngKind rng_kind = prng::RngKind::kCellularAutomaton;
};

struct CompactGaResult {
    std::uint16_t best_candidate = 0;
    std::uint16_t best_fitness = 0;
    std::uint64_t evaluations = 0;
    /// Final per-bit probabilities as counters in 0..virtual_population.
    std::array<std::uint16_t, 16> probability{};
    bool converged = false;  ///< every probability saturated to 0 or n
};

CompactGaResult run_compact_ga(const CompactGaConfig& cfg, const core::FitnessFn& fitness);

}  // namespace gaip::baselines
