#include "baselines/templates.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/bits.hpp"

namespace gaip::baselines {

const char* selection_name(SelectionScheme s) {
    switch (s) {
        case SelectionScheme::kProportionate: return "proportionate";
        case SelectionScheme::kRoundRobin: return "round-robin";
        case SelectionScheme::kTournament2: return "tournament-2";
    }
    return "?";
}

namespace {

using core::GaParameters;
using core::GenerationStats;
using core::Member;
using core::RngState;
using core::RunResult;

struct Selector {
    SelectionScheme scheme;
    std::size_t rr_index = 0;  // round-robin cursor

    std::size_t pick(RngState& rng, const std::vector<Member>& pop, std::uint32_t fit_sum) {
        switch (scheme) {
            case SelectionScheme::kProportionate:
                return core::proportionate_select(pop, fit_sum, rng.next16());
            case SelectionScheme::kRoundRobin: {
                const std::size_t i = rr_index;
                rr_index = (rr_index + 1) % pop.size();
                return i;
            }
            case SelectionScheme::kTournament2: {
                const std::size_t a = rng.next16() % pop.size();
                const std::size_t b = rng.next16() % pop.size();
                return pop[a].fitness >= pop[b].fitness ? a : b;
            }
        }
        return 0;
    }
};

std::pair<std::uint16_t, std::uint16_t> make_offspring(RngState& rng, const GaParameters& p,
                                                       std::uint16_t c1, std::uint16_t c2) {
    const std::uint16_t rx = rng.next16();
    std::uint16_t o1 = c1;
    std::uint16_t o2 = c2;
    if ((rx & 0xF) < p.xover_threshold)
        std::tie(o1, o2) = core::crossover_pair(o1, o2, (rx >> 4) & 0xF);
    auto mutate = [&](std::uint16_t v) {
        const std::uint16_t rm = rng.next16();
        if ((rm & 0xF) < p.mut_threshold) v ^= static_cast<std::uint16_t>(1u << ((rm >> 4) & 0xF));
        return v;
    };
    return {mutate(o1), mutate(o2)};
}

RunResult run_steady_state(const TemplateConfig& cfg, const core::FitnessFn& fitness) {
    const GaParameters p = core::resolve_parameters(0, cfg.params);
    RngState rng(p.seed, cfg.rng_kind);
    Selector sel{cfg.selection};
    RunResult result;

    std::vector<Member> pop(p.pop_size);
    std::uint32_t fit_sum = 0;
    std::uint16_t best_fit = 0;
    std::uint16_t best_ind = 0;
    for (Member& m : pop) {
        m.candidate = rng.next16();
        m.fitness = fitness(m.candidate);
        ++result.evaluations;
        fit_sum += m.fitness;
        if (m.fitness > best_fit) {
            best_fit = m.fitness;
            best_ind = m.candidate;
        }
    }

    const std::uint64_t budget =
        static_cast<std::uint64_t>(p.n_gens) * (p.pop_size - 1u);  // offspring evaluations
    std::uint64_t done = 0;
    std::uint32_t epoch = 0;

    auto snapshot = [&] {
        GenerationStats s;
        s.gen = epoch;
        s.best_fit = best_fit;
        s.best_ind = best_ind;
        s.fit_sum = fit_sum;
        if (cfg.keep_populations) s.population = pop;
        result.history.push_back(std::move(s));
    };
    snapshot();

    while (done < budget) {
        const std::size_t i1 = sel.pick(rng, pop, fit_sum);
        const std::size_t i2 = sel.pick(rng, pop, fit_sum);
        const auto [o1, o2] = make_offspring(rng, p, pop[i1].candidate, pop[i2].candidate);

        for (const std::uint16_t off : {o1, o2}) {
            if (done >= budget) break;
            const std::uint16_t f = fitness(off);
            ++result.evaluations;
            ++done;
            if (f > best_fit) {
                best_fit = f;
                best_ind = off;
            }
            // Survival-based replacement: the offspring displaces the
            // current worst member only if strictly fitter.
            const auto worst = std::min_element(
                pop.begin(), pop.end(),
                [](const Member& a, const Member& b) { return a.fitness < b.fitness; });
            if (f > worst->fitness) {
                fit_sum = fit_sum - worst->fitness + f;
                *worst = {off, f};
            }
            if (done % (p.pop_size - 1u) == 0) {
                ++epoch;
                snapshot();
            }
        }
    }

    result.best_candidate = best_ind;
    result.best_fitness = best_fit;
    return result;
}

RunResult run_generational(const TemplateConfig& cfg, const core::FitnessFn& fitness) {
    if (cfg.selection == SelectionScheme::kProportionate) {
        // Exactly the core's algorithm — delegate to the behavioral model.
        return core::run_behavioral_ga(cfg.params, fitness, cfg.rng_kind,
                                       cfg.keep_populations, cfg.elitism);
    }
    const GaParameters p = core::resolve_parameters(0, cfg.params);
    RngState rng(p.seed, cfg.rng_kind);
    Selector sel{cfg.selection};
    RunResult result;

    std::vector<Member> cur(p.pop_size);
    std::uint32_t fit_sum = 0;
    std::uint16_t best_fit = 0;
    std::uint16_t best_ind = 0;
    auto offer = [&](std::uint16_t cand, std::uint16_t fit) {
        if (fit > best_fit) {
            best_fit = fit;
            best_ind = cand;
        }
    };
    for (Member& m : cur) {
        m.candidate = rng.next16();
        m.fitness = fitness(m.candidate);
        ++result.evaluations;
        fit_sum += m.fitness;
        offer(m.candidate, m.fitness);
    }

    auto snapshot = [&](std::uint32_t gen) {
        GenerationStats s;
        s.gen = gen;
        s.best_fit = best_fit;
        s.best_ind = best_ind;
        s.fit_sum = fit_sum;
        if (cfg.keep_populations) s.population = cur;
        result.history.push_back(std::move(s));
    };
    snapshot(0);

    std::vector<Member> next(p.pop_size);
    for (std::uint32_t gen = 0; gen < p.n_gens; ++gen) {
        std::uint32_t sum_new = 0;
        std::size_t idx = 0;
        if (cfg.elitism) {
            next[0] = {best_ind, best_fit};
            sum_new = best_fit;
            idx = 1;
        }
        while (idx < p.pop_size) {
            const std::size_t i1 = sel.pick(rng, cur, fit_sum);
            const std::size_t i2 = sel.pick(rng, cur, fit_sum);
            const auto [o1, o2] = make_offspring(rng, p, cur[i1].candidate, cur[i2].candidate);
            for (const std::uint16_t off : {o1, o2}) {
                const std::uint16_t f = fitness(off);
                ++result.evaluations;
                next[idx] = {off, f};
                sum_new += f;
                offer(off, f);
                ++idx;
                if (idx >= p.pop_size) break;
            }
        }
        cur.swap(next);
        fit_sum = sum_new;
        snapshot(gen + 1);
    }

    result.best_candidate = best_ind;
    result.best_fitness = best_fit;
    return result;
}

}  // namespace

RunResult run_template_ga(const TemplateConfig& cfg, const core::FitnessFn& fitness) {
    if (!fitness) throw std::invalid_argument("run_template_ga: null fitness");
    return cfg.steady_state ? run_steady_state(cfg, fitness) : run_generational(cfg, fitness);
}

}  // namespace gaip::baselines
