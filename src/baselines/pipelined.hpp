// Pipelined GA engine model — the "advanced hardware acceleration" branch
// of Sec. II-B (Shackleford et al. [7], Yoshida et al. [8], and the
// pipelined/parallel architectures [11-13] the paper positions itself
// against).
//
// A pipelined hardware GA keeps one offspring in flight per stage:
//
//   S1 parent fetch  S2 crossover  S3 mutation  S4..S(3+L) fitness  S last store
//
// and sustains one evaluation per clock (initiation interval 1) once the
// pipe is full. This is only possible with design choices the paper's core
// deliberately avoids: tournament selection (roulette needs O(P) scans),
// steady-state survival replacement (a generational bank swap is a
// barrier), and a fixed fitness function compiled into the pipe (no
// multi-FEM handshake). The model here is therefore two-part:
//   * functionality — the steady-state tournament GA of
//     baselines::run_template_ga (bit-faithful to what such engines
//     compute);
//   * timing — an analytic cycle count: fill + evaluations * II + flush,
//     which is exact for a stall-free pipe of the given depth.
// bench_ablation_pipeline compares it against the serial core's measured
// RTL cycles at equal evaluation budget: the throughput gap is the
// literature's acceleration claim, the quality delta is its price.
#pragma once

#include <cstdint>

#include "baselines/templates.hpp"

namespace gaip::baselines {

struct PipelineTiming {
    unsigned front_stages = 3;     ///< parent fetch, crossover, mutation
    unsigned fitness_stages = 2;   ///< pipelined lookup FEM latency
    unsigned back_stages = 1;      ///< survival compare + store
    unsigned initiation_interval = 1;

    unsigned depth() const noexcept { return front_stages + fitness_stages + back_stages; }

    /// Total cycles to push `evaluations` offspring through a stall-free
    /// pipe: fill the pipe once, then one result per II, plus the final
    /// drain (already covered by the fill term for II = 1 accounting:
    /// first result appears after `depth` cycles, the last
    /// (evaluations-1) * II later).
    std::uint64_t cycles(std::uint64_t evaluations) const noexcept {
        if (evaluations == 0) return 0;
        return depth() + (evaluations - 1) * initiation_interval;
    }
};

struct PipelinedRunResult {
    core::RunResult result;       ///< steady-state tournament GA outcome
    std::uint64_t cycles = 0;     ///< modeled pipeline cycles
    double seconds_at_50mhz = 0;  ///< same clock as the paper's core
};

/// Run the pipelined engine model: functional steady-state tournament GA +
/// analytic pipeline timing.
PipelinedRunResult run_pipelined_ga(const core::GaParameters& params,
                                    const core::FitnessFn& fitness,
                                    const PipelineTiming& timing = {},
                                    prng::RngKind rng_kind = prng::RngKind::kCellularAutomaton);

}  // namespace gaip::baselines
