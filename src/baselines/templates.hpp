// Related-work GA templates (Table I / Sec. II-B of the paper).
//
// The paper positions its core against the earlier FPGA GA engines by
// their GA template and selection scheme:
//   * Scott et al. [5]        — simple GA, roulette selection (the proposed
//                               core's scheme; our main implementation);
//   * Tommiska & Vuori [6]    — round-robin parent selection;
//   * Yoshida et al. [8]      — simplified (binary tournament) selection;
//   * Shackleford et al. [7]  — survival-based steady-state GA;
//   * Aporntewan et al. [10]  — compact GA (see compact_ga.hpp).
// This module implements the generational templates with pluggable
// selection plus the steady-state variant, so the design space of Table I
// is runnable and comparable (bench_related_work).
#pragma once

#include "core/behavioral.hpp"

namespace gaip::baselines {

enum class SelectionScheme : std::uint8_t {
    kProportionate = 0,  ///< roulette via threshold scan — the paper's core
    kRoundRobin = 1,     ///< parents taken in cyclic index order [6]
    kTournament2 = 2,    ///< binary tournament, fitter of two random picks [8]
};

const char* selection_name(SelectionScheme s);

struct TemplateConfig {
    core::GaParameters params;
    SelectionScheme selection = SelectionScheme::kProportionate;
    /// Survival-based steady-state replacement (Shackleford et al. [7]):
    /// offspring replace the current worst member only when fitter; no
    /// generational banks. History snapshots are taken every pop_size
    /// evaluations so convergence series stay comparable.
    bool steady_state = false;
    bool elitism = true;  ///< generational templates only
    prng::RngKind rng_kind = prng::RngKind::kCellularAutomaton;
    bool keep_populations = false;
};

/// Run the selected GA template; evaluation budget equals the elitist
/// generational core's (pop + n_gens * (pop - 1)) so comparisons are fair.
core::RunResult run_template_ga(const TemplateConfig& cfg, const core::FitnessFn& fitness);

}  // namespace gaip::baselines
