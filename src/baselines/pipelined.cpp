#include "baselines/pipelined.hpp"

namespace gaip::baselines {

PipelinedRunResult run_pipelined_ga(const core::GaParameters& params,
                                    const core::FitnessFn& fitness,
                                    const PipelineTiming& timing, prng::RngKind rng_kind) {
    TemplateConfig cfg;
    cfg.params = params;
    cfg.selection = SelectionScheme::kTournament2;
    cfg.steady_state = true;
    cfg.rng_kind = rng_kind;

    PipelinedRunResult out;
    out.result = run_template_ga(cfg, fitness);
    out.cycles = timing.cycles(out.result.evaluations);
    out.seconds_at_50mhz = static_cast<double>(out.cycles) / 50e6;
    return out;
}

}  // namespace gaip::baselines
