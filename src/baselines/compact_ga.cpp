#include "baselines/compact_ga.hpp"

#include <algorithm>
#include <stdexcept>

namespace gaip::baselines {

namespace {

/// Sample a 16-bit individual from the probability vector: bit i is 1 with
/// probability counter[i] / n. One fresh random word per bit, using its low
/// bits scaled to the counter range (like the cited hardware's per-bit
/// comparator against an LFSR slice).
std::uint16_t sample(core::RngState& rng, const std::array<std::uint16_t, 16>& counter,
                     unsigned n) {
    std::uint16_t v = 0;
    for (unsigned b = 0; b < 16; ++b) {
        const std::uint32_t r = rng.next16() % n;
        if (r < counter[b]) v |= static_cast<std::uint16_t>(1u << b);
    }
    return v;
}

}  // namespace

CompactGaResult run_compact_ga(const CompactGaConfig& cfg, const core::FitnessFn& fitness) {
    if (!fitness) throw std::invalid_argument("run_compact_ga: null fitness");
    if (cfg.virtual_population < 2)
        throw std::invalid_argument("run_compact_ga: virtual population < 2");

    const unsigned n = cfg.virtual_population;
    core::RngState rng(cfg.seed, cfg.rng_kind);

    CompactGaResult result;
    result.probability.fill(static_cast<std::uint16_t>(n / 2));

    while (result.evaluations + 2 <= cfg.evaluation_budget) {
        const std::uint16_t a = sample(rng, result.probability, n);
        const std::uint16_t b = sample(rng, result.probability, n);
        const std::uint16_t fa = fitness(a);
        const std::uint16_t fb = fitness(b);
        result.evaluations += 2;

        const std::uint16_t winner = fa >= fb ? a : b;
        const std::uint16_t loser = fa >= fb ? b : a;
        const std::uint16_t wf = std::max(fa, fb);
        if (wf > result.best_fitness) {
            result.best_fitness = wf;
            result.best_candidate = winner;
        }

        // Update: for each bit where winner and loser differ, move the
        // counter one step toward the winner's bit value.
        const std::uint16_t diff = winner ^ loser;
        for (unsigned bit = 0; bit < 16; ++bit) {
            if (((diff >> bit) & 1u) == 0) continue;
            std::uint16_t& c = result.probability[bit];
            if ((winner >> bit) & 1u) {
                if (c < n) ++c;
            } else {
                if (c > 0) --c;
            }
        }

        // Early exit on full convergence of the probability vector.
        const bool converged = std::all_of(
            result.probability.begin(), result.probability.end(),
            [&](std::uint16_t c) { return c == 0 || c == n; });
        if (converged) {
            result.converged = true;
            break;
        }
    }
    return result;
}

}  // namespace gaip::baselines
