// SeuInjector: plants one single-event upset (fault_model.hpp's FaultSite)
// into a running GA core and classifies the outcome. Three backends reach
// the same flip-flop three different ways:
//
//   kScan     — through the pins: assert `test` and rotate the full AUDI
//               scan chain once (length() shift cycles), re-injecting every
//               dumped bit on scanin except the target, which is inverted —
//               the classic scan-based read-modify-write fault injection.
//               The optimizer is frozen while shifting, so the rotation
//               cycles do not count toward the run's cycle budget.
//   kPoke     — simulator backdoor: ScanChain::flip on the RT-level core's
//               register file between two clock edges.
//   kLaneMask — CompiledNetlist::xor_register_lanes on the gate-level
//               64-lane simulation: one XOR plants an independent fault per
//               lane of the same baseline run (campaign.hpp drives this).
//
// Injection happens at the first scan-safe cycle >= FaultSite::cycle
// (cycles counted from the kStart state), which makes the three backends
// architecturally equivalent — verified by tests/fault/ and the campaign's
// sampled cross-check.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/params.hpp"
#include "fault/fault_model.hpp"
#include "fitness/functions.hpp"
#include "trace/event.hpp"

namespace gaip::system {
class GaSystem;
}

namespace gaip::fault {

enum class InjectBackend : std::uint8_t { kScan = 0, kPoke, kLaneMask };

inline const char* backend_name(InjectBackend b) noexcept {
    switch (b) {
        case InjectBackend::kScan: return "scan";
        case InjectBackend::kPoke: return "poke";
        case InjectBackend::kLaneMask: return "lane-mask";
    }
    return "?";
}

struct InjectorConfig {
    fitness::FitnessId fn = fitness::FitnessId::kMBf6_2;
    core::GaParameters params{};
    /// Watchdog = factor x golden ga_cycles; a run that misses it counts as
    /// hang (or recovered, when the FSM settled in kIdle).
    unsigned watchdog_factor = 4;
    /// PRESET mode (Table IV, 1..3) the supervisor falls back to.
    std::uint8_t fallback_preset = 1;
};

class SeuInjector {
public:
    explicit SeuInjector(InjectorConfig cfg);

    const InjectorConfig& config() const noexcept { return cfg_; }

    /// Fault-free RT-level reference run; also defines the cycle numbering
    /// (cycle 0 = the kStart cycle) every backend uses.
    const GoldenRun& golden() const noexcept { return golden_; }

    /// Deterministic result of a PRESET-mode run (behavioral model — the
    /// preset modes ignore all programmed state, so this is exact).
    const GoldenRun& preset_baseline() const noexcept { return preset_baseline_; }

    /// Scan-chain register layout of the core, head first: (name, width).
    const std::vector<std::pair<std::string, unsigned>>& layout() const noexcept {
        return layout_;
    }
    unsigned chain_length() const noexcept { return chain_length_; }

    /// Attach a telemetry sink (nullptr = off). Faulted runs then stream the
    /// full system telemetry plus two fault-layer events: `fault_inject`
    /// (the planted flip) and `divergence` (the first cycle whose
    /// state/best-fitness differs from the golden trajectory). Borrowed,
    /// must outlive the injector's runs.
    void set_sink(trace::TraceSink* sink) noexcept { sink_ = sink; }

    /// Per-cycle golden trajectory entry `c` = packed observation after
    /// c+1 cycles from kStart: state (low 8 bits) | best_fitness << 8.
    const std::vector<std::uint32_t>& golden_trajectory() const noexcept {
        return golden_traj_;
    }

    /// Run one faulted RT-level simulation (kScan or kPoke; kLaneMask runs
    /// batched inside FaultCampaign).
    FaultRecord run_rtl(const FaultSite& site, InjectBackend backend) const;

    /// Demonstrate the recovery path end to end: replay `site` (poke
    /// backend), require the watchdog to trip with the FSM in kIdle, then
    /// assert the PRESET pins and pulse start_GA — no reset — and require
    /// the rerun to finish with the preset baseline's exact result. Returns
    /// false at the first unmet requirement; `observed` (optional) gets the
    /// fallback run's record.
    bool validate_preset_fallback(const FaultSite& site, FaultRecord* observed = nullptr) const;

private:
    /// Overflow-checked `ga_cycles * factor + 64` (throws std::overflow_error
    /// on pathological cycle counts — see fault::watchdog_budget).
    std::uint64_t watchdog_cycles() const {
        return watchdog_budget(golden_.ga_cycles, cfg_.watchdog_factor);
    }

    /// Drive `sys` from reset to the kStart cycle; returns false if the
    /// init handshake never started the optimizer.
    bool run_to_start(system::GaSystem& sys) const;

    InjectorConfig cfg_;
    GoldenRun golden_;
    GoldenRun preset_baseline_;
    std::vector<std::pair<std::string, unsigned>> layout_;
    std::vector<std::uint32_t> golden_traj_;
    unsigned chain_length_ = 0;
    trace::TraceSink* sink_ = nullptr;
};

}  // namespace gaip::fault
