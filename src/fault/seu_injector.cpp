#include "fault/seu_injector.hpp"

#include <stdexcept>

#include "core/behavioral.hpp"
#include "prng/rng_module.hpp"
#include "system/ga_system.hpp"

namespace gaip::fault {

namespace {

using core::GaCore;

system::GaSystemConfig system_config(const InjectorConfig& cfg) {
    system::GaSystemConfig scfg;
    scfg.params = cfg.params;
    scfg.internal_fems = {cfg.fn};
    scfg.keep_populations = false;
    return scfg;
}

/// One 50 MHz cycle (the 200 MHz domain advances 4 edges inside).
void ga_cycle(system::GaSystem& sys) { sys.kernel().run_cycles(sys.ga_clock(), 1); }

/// Golden-trajectory entry: the per-cycle observation the divergence
/// detector compares (controller state + best fitness so far).
std::uint32_t traj_entry(const GaCore& core) {
    return static_cast<std::uint32_t>(core.state()) |
           (static_cast<std::uint32_t>(core.best_fitness()) << 8);
}

}  // namespace

SeuInjector::SeuInjector(InjectorConfig cfg) : cfg_(cfg) {
    if (cfg_.watchdog_factor < 2)
        throw std::invalid_argument("SeuInjector: watchdog_factor must be >= 2");
    if ((cfg_.fallback_preset & 0x3) == 0)
        throw std::invalid_argument("SeuInjector: fallback_preset must be a preset mode (1..3)");

    // Golden run: the manual cycle loop (not GaSystem::run) so the cycle
    // numbering is identical to every faulted run.
    system::GaSystem sys(system_config(cfg_));
    if (!run_to_start(sys)) throw std::runtime_error("SeuInjector: optimizer never started");
    for (const rtl::RegBase* r : sys.core().scan_chain().registers())
        layout_.emplace_back(r->name(), r->width());
    chain_length_ = sys.core().scan_chain().length();

    const std::uint64_t bound =
        static_cast<std::uint64_t>(core::resolve_parameters(0, cfg_.params).pop_size) *
            (cfg_.params.n_gens + 1ull) * 512ull +
        100'000ull;
    std::uint64_t c = 0;
    while (sys.core().state() != GaCore::State::kDone) {
        if (++c > bound) throw std::runtime_error("SeuInjector: golden run exceeded bound");
        ga_cycle(sys);
        golden_traj_.push_back(traj_entry(sys.core()));
    }
    golden_.best_fitness = sys.best_fitness();
    golden_.best_candidate = sys.best_candidate();
    golden_.generations = sys.core().generation();
    golden_.ga_cycles = c;

    // Preset baseline: Table IV modes resolve every parameter and the seed
    // from constants, so the (RTL-bit-exact) behavioral model gives the
    // exact post-fallback result without a 10^5-cycle simulation.
    core::GaParameters pp = core::preset_parameters(cfg_.fallback_preset);
    pp.seed = prng::RngModule::effective_seed(cfg_.fallback_preset, 0);
    const core::RunResult pr = core::run_behavioral_ga(
        pp, [fn = cfg_.fn](std::uint16_t x) { return fitness::fitness_u16(fn, x); },
        prng::RngKind::kCellularAutomaton, /*keep_populations=*/false);
    preset_baseline_.best_fitness = pr.best_fitness;
    preset_baseline_.best_candidate = pr.best_candidate;
    preset_baseline_.generations = pp.n_gens;
    preset_baseline_.ga_cycles = 0;  // not cycle-measured; watchdog uses a formula bound
}

bool SeuInjector::run_to_start(system::GaSystem& sys) const {
    sys.kernel().reset();
    sys.wires().preset.drive(0);
    sys.wires().fitfunc_select.drive(0);
    // Init handshake: 6 parameters x a few 200 MHz cycles each, with slack.
    for (unsigned i = 0; i < 4096; ++i) {
        if (sys.core().state() == GaCore::State::kStart) return true;
        ga_cycle(sys);
    }
    return false;
}

FaultRecord SeuInjector::run_rtl(const FaultSite& site, InjectBackend backend) const {
    if (backend == InjectBackend::kLaneMask)
        throw std::invalid_argument("SeuInjector::run_rtl: kLaneMask runs via FaultCampaign");

    system::GaSystemConfig scfg = system_config(cfg_);
    scfg.trace_sink = sink_;  // faulted runs stream full telemetry when set
    system::GaSystem sys(scfg);
    if (!run_to_start(sys)) throw std::runtime_error("SeuInjector: optimizer never started");
    GaCore& core = sys.core();
    rtl::ScanChain& chain = core.scan_chain();
    const unsigned pos = chain.position_of(site.reg, site.bit);

    FaultRecord rec;
    rec.site = site;

    // Advance to the first scan-safe cycle >= site.cycle (cycle 0 = kStart).
    std::uint64_t c = 0;
    while (c < site.cycle || !scan_safe_state(core.state())) {
        if (c >= golden_.ga_cycles)
            throw std::runtime_error("SeuInjector: no scan-safe cycle at/after site.cycle");
        ga_cycle(sys);
        ++c;
    }
    rec.inject_cycle = c;

    if (backend == InjectBackend::kPoke) {
        chain.flip(pos);
        core.input_changed();  // re-evaluate the Moore outputs pre-edge
    } else {
        // Scan-chain read-modify-write through the pins: rotate the whole
        // chain once, feeding every tail bit back into scanin — inverted at
        // the iteration that returns it to snapshot position `pos`. The
        // optimizer is frozen (test mode) for these length() cycles; they
        // are not counted against the cycle budget.
        const unsigned len = chain.length();
        sys.wires().test.drive(true);
        for (unsigned i = 0; i < len; ++i) {
            const bool out = chain.tail();
            sys.wires().scanin.drive(out != (i == len - 1 - pos));
            ga_cycle(sys);
        }
        sys.wires().test.drive(false);
        sys.wires().scanin.drive(false);
    }

    if (sink_ != nullptr) {
        trace::TraceEvent e(trace::kind::kFaultInject, sys.kernel().now(), c);
        e.add("reg", site.reg)
            .add("bit", static_cast<std::uint64_t>(site.bit))
            .add("site_cycle", static_cast<std::uint64_t>(site.cycle))
            .add("inject_cycle", static_cast<std::uint64_t>(rec.inject_cycle))
            .add("chain_pos", static_cast<std::uint64_t>(pos))
            .add("backend", std::string(backend_name(backend)));
        sink_->on_event(e);
    }

    // Run to GA_done under the watchdog; when tracing, compare each cycle
    // against the golden trajectory and flag the first departure.
    const std::uint64_t watchdog = watchdog_cycles();
    bool diverged = false;
    while (core.state() != GaCore::State::kDone && c < watchdog) {
        ga_cycle(sys);
        ++c;
        if (sink_ != nullptr && !diverged) {
            const std::uint32_t got = traj_entry(core);
            const bool in_golden = c - 1 < golden_traj_.size();
            const std::uint32_t want = in_golden ? golden_traj_[c - 1] : ~std::uint32_t{0};
            if (got != want) {
                diverged = true;
                trace::TraceEvent e(trace::kind::kDivergence, sys.kernel().now(), c);
                e.add("state", static_cast<std::uint64_t>(got & 0xFF))
                    .add("best_fit", static_cast<std::uint64_t>(got >> 8));
                if (in_golden) {
                    e.add("golden_state", static_cast<std::uint64_t>(want & 0xFF))
                        .add("golden_best_fit", static_cast<std::uint64_t>(want >> 8));
                } else {
                    e.add("past_golden_end", std::uint64_t{1});
                }
                sink_->on_event(e);
            }
        }
    }
    rec.finished = core.state() == GaCore::State::kDone;
    rec.final_state = static_cast<std::uint8_t>(core.state());
    if (rec.finished) {
        rec.best_fitness = sys.best_fitness();
        rec.best_candidate = sys.best_candidate();
        rec.ga_cycles = c;
    }
    rec.outcome = classify(rec.finished, rec.best_fitness, rec.best_candidate, rec.final_state,
                           golden_);
    return rec;
}

bool SeuInjector::validate_preset_fallback(const FaultSite& site, FaultRecord* observed) const {
    system::GaSystemConfig scfg = system_config(cfg_);
    scfg.trace_sink = sink_;  // the tap's `preset` event marks the fallback
    system::GaSystem sys(scfg);
    if (!run_to_start(sys)) throw std::runtime_error("SeuInjector: optimizer never started");
    GaCore& core = sys.core();

    std::uint64_t c = 0;
    while (c < site.cycle || !scan_safe_state(core.state())) {
        if (c >= golden_.ga_cycles) return false;
        ga_cycle(sys);
        ++c;
    }
    core.scan_chain().flip(core.scan_chain().position_of(site.reg, site.bit));
    core.input_changed();

    const std::uint64_t watchdog = watchdog_cycles();
    while (core.state() != GaCore::State::kDone && c < watchdog) {
        ga_cycle(sys);
        ++c;
    }
    // The fallback only applies to watchdog trips that parked the FSM in
    // kIdle (anywhere else start_GA is not sampled and only reset helps).
    if (core.state() != GaCore::State::kIdle) return false;

    // Supervisor action: select the preset mode and re-pulse start_GA
    // through the application module's hung-run recovery path (start_ga is
    // a module-driven net — an external poke would be overwritten at the
    // next settle). No reset: the preset path must not depend on any
    // (possibly corrupted) programmed state.
    sys.wires().preset.drive(cfg_.fallback_preset & 0x3);
    sys.app_module().request_restart();
    ga_cycle(sys);
    ga_cycle(sys);
    ga_cycle(sys);
    ga_cycle(sys);

    const core::GaParameters pp = core::preset_parameters(cfg_.fallback_preset);
    const std::uint64_t fb_bound = static_cast<std::uint64_t>(pp.pop_size) *
                                       (pp.n_gens + 1ull) * (64ull + 8ull * pp.pop_size) +
                                   100'000ull;
    std::uint64_t fc = 0;
    while (core.state() != GaCore::State::kDone && fc < fb_bound) {
        ga_cycle(sys);
        ++fc;
    }

    FaultRecord rec;
    rec.site = site;
    rec.finished = core.state() == GaCore::State::kDone;
    rec.final_state = static_cast<std::uint8_t>(core.state());
    if (rec.finished) {
        rec.best_fitness = sys.best_fitness();
        rec.best_candidate = sys.best_candidate();
        rec.ga_cycles = fc;
    }
    rec.outcome = FaultOutcome::kRecovered;
    if (observed != nullptr) *observed = rec;

    return rec.finished && rec.best_fitness == preset_baseline_.best_fitness &&
           rec.best_candidate == preset_baseline_.best_candidate;
}

}  // namespace gaip::fault
