// FaultCampaign: enumerates the SEU fault space of the GA core — every
// scan-chain flip-flop x a coarse grid of injection cycles — and classifies
// each fault by running it on the N-word lane-block compiled gate-level
// simulation (64 x lane_words lanes per batch): lane 0 of every batch is
// the fault-free golden reference, each remaining lane carries one
// independent upset (CompiledNetlist::xor_register_word), so one batched
// simulation retires up to 64 x lane_words - 1 injections. Batches are
// independent simulations and fan out across `threads` workers; records,
// counts and cycle totals are deterministic regardless of width/threads.
//
// The golden lane doubles as a determinism detector: every batch requires
// lane 0 to reproduce the RT-level golden run bit- and cycle-exactly, so a
// "masked" fault that somehow leaked into the shared simulation state would
// fail the campaign loudly instead of skewing the statistics.
//
// Cross-checking: any record's site can be replayed on the RT-level model
// through SeuInjector (scan or poke backend); classifications must agree —
// the campaign bench samples records from every outcome class and verifies.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "fault/fault_model.hpp"
#include "fault/seu_injector.hpp"
#include "gates/compiled.hpp"

namespace gaip::fault {

struct CampaignConfig {
    fitness::FitnessId fn = fitness::FitnessId::kMBf6_2;
    /// Small-but-real run: every injection simulates the complete flow.
    core::GaParameters params{.pop_size = 16, .n_gens = 12, .xover_threshold = 12,
                              .mut_threshold = 1, .seed = 0x2961};
    /// Injection-cycle grid: `cycle_points` evenly spaced points covering
    /// [0, cycle_span x golden cycles). The span stays below 1.0 so every
    /// grid point has a scan-safe cycle at/after it before the run ends.
    unsigned cycle_points = 25;
    double cycle_span = 0.9;
    unsigned watchdog_factor = 4;
    std::uint8_t fallback_preset = 1;
    /// Site subsampling for smoke runs: keep every `stride`-th site of the
    /// full enumeration (1 = exhaustive), then at most `max_sites` (0 = all).
    std::uint64_t stride = 1;
    std::size_t max_sites = 0;
    /// Gate-backend lane-block width in u64 words (1, 2, 4 or 8): every
    /// batch simulates 64 x lane_words lanes — one golden reference plus up
    /// to 64 x lane_words - 1 injections retired per batched simulation.
    unsigned lane_words = 1;
    /// Worker threads for run_gate (0 = all hardware threads). Each worker
    /// owns one gate engine and batches are independent, so results are
    /// bit-identical at any thread count.
    unsigned threads = 1;
    /// Evaluation engine for the per-worker gate simulations: interpreted
    /// kernels or the host-compiled native backend (kAuto defers to the
    /// GAIP_JIT override and defaults to the interpreter). Fault records
    /// are bit-identical across backends; concurrent workers requesting
    /// the same artifact block on ONE compile (src/gates/jit.cpp registry).
    gates::Backend backend = gates::Backend::kAuto;
};

struct CampaignResult {
    GoldenRun golden;
    GoldenRun preset_baseline;
    std::vector<FaultRecord> records;
    std::uint64_t masked = 0;
    std::uint64_t wrong = 0;
    std::uint64_t hang = 0;
    std::uint64_t recovered = 0;
    std::uint64_t gate_cycles = 0;  ///< total simulated gate cycles
    std::size_t batches = 0;

    void count(const FaultRecord& r) {
        switch (r.outcome) {
            case FaultOutcome::kMasked: ++masked; break;
            case FaultOutcome::kWrongAnswer: ++wrong; break;
            case FaultOutcome::kHang: ++hang; break;
            case FaultOutcome::kRecovered: ++recovered; break;
        }
    }
};

class FaultCampaign {
public:
    explicit FaultCampaign(CampaignConfig cfg);

    const CampaignConfig& config() const noexcept { return cfg_; }
    const SeuInjector& injector() const noexcept { return injector_; }
    const GoldenRun& golden() const noexcept { return injector_.golden(); }

    /// The configured fault space: for each chain flip-flop (head first),
    /// one site per grid cycle, subsampled per cfg.stride / cfg.max_sites.
    std::vector<FaultSite> enumerate_sites() const;

    /// Run `sites` on the gate-level lane-block backend (64 x lane_words -
    /// 1 injections + 1 golden lane per batch, batches spread over
    /// cfg.threads workers). `progress`, when set, is called after each
    /// batch with (cumulative sites_done, sites_total); sites_done is
    /// monotone but reflects batch COMPLETION order when threaded. Throws
    /// if any golden lane deviates from the RT-level golden run.
    CampaignResult run_gate(const std::vector<FaultSite>& sites,
                            const std::function<void(std::size_t, std::size_t)>& progress = {});

    /// Replay one site on an RT-level backend (cross-check / --replay).
    FaultRecord run_rtl(const FaultSite& site, InjectBackend backend) const {
        return injector_.run_rtl(site, backend);
    }

private:
    CampaignConfig cfg_;
    SeuInjector injector_;
};

}  // namespace gaip::fault
