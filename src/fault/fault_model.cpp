#include "fault/fault_model.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <string>

namespace gaip::fault {

std::uint64_t watchdog_budget(std::uint64_t ga_cycles, std::uint64_t factor) {
    constexpr std::uint64_t kSlack = 64;
    constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();
    if (factor != 0 && ga_cycles > (kMax - kSlack) / factor) {
        throw std::overflow_error(
            "watchdog_budget: ga_cycles (" + std::to_string(ga_cycles) + ") * watchdog_factor (" +
            std::to_string(factor) +
            ") + 64 overflows uint64 — pathological eff_ngens / cycle count; refusing to arm a "
            "wrapped (too short) watchdog");
    }
    return ga_cycles * factor + kSlack;
}

std::vector<RegisterVulnerability> aggregate_by_register(
    const std::vector<FaultRecord>& records) {
    std::vector<RegisterVulnerability> out;
    for (const FaultRecord& r : records) {
        auto it = std::find_if(out.begin(), out.end(),
                               [&](const RegisterVulnerability& v) { return v.reg == r.site.reg; });
        if (it == out.end()) {
            out.push_back(RegisterVulnerability{.reg = r.site.reg});
            it = out.end() - 1;
        }
        it->width = std::max(it->width, r.site.bit + 1);
        ++it->injections;
        switch (r.outcome) {
            case FaultOutcome::kMasked: ++it->masked; break;
            case FaultOutcome::kWrongAnswer: ++it->wrong; break;
            case FaultOutcome::kHang: ++it->hang; break;
            case FaultOutcome::kRecovered: ++it->recovered; break;
        }
    }
    return out;
}

}  // namespace gaip::fault
