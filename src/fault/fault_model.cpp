#include "fault/fault_model.hpp"

#include <algorithm>

namespace gaip::fault {

std::vector<RegisterVulnerability> aggregate_by_register(
    const std::vector<FaultRecord>& records) {
    std::vector<RegisterVulnerability> out;
    for (const FaultRecord& r : records) {
        auto it = std::find_if(out.begin(), out.end(),
                               [&](const RegisterVulnerability& v) { return v.reg == r.site.reg; });
        if (it == out.end()) {
            out.push_back(RegisterVulnerability{.reg = r.site.reg});
            it = out.end() - 1;
        }
        it->width = std::max(it->width, r.site.bit + 1);
        ++it->injections;
        switch (r.outcome) {
            case FaultOutcome::kMasked: ++it->masked; break;
            case FaultOutcome::kWrongAnswer: ++it->wrong; break;
            case FaultOutcome::kHang: ++it->hang; break;
            case FaultOutcome::kRecovered: ++it->recovered; break;
        }
    }
    return out;
}

}  // namespace gaip::fault
