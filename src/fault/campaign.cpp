#include "fault/campaign.hpp"

#include <algorithm>
#include <array>
#include <memory>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <utility>

#include "gates/compiled.hpp"
#include "gates/ga_core_gates.hpp"
#include "gates/rng_gates.hpp"
#include "mem/ga_memory.hpp"

namespace gaip::fault {

namespace {

using core::GaCore;

constexpr unsigned kLanes = gates::CompiledNetlist::kLanes;

/// The gate-level 64-lane batch engine behind FaultCampaign::run_gate. The
/// per-lane peripheral models (init-handshake FSM, zero-latency FEM,
/// write-first 256x32 memory, start pulse) mirror bench/gate_batch_runner's
/// — re-stated here because src/ libraries cannot depend on bench/ headers
/// — except that every lane runs the SAME configuration and each non-golden
/// lane carries one scheduled SEU.
class GateLaneRunner {
public:
    GateLaneRunner(const CampaignConfig& cfg, const GoldenRun& golden)
        : cfg_(cfg),
          golden_(golden),
          core_src_(gates::build_ga_core_netlist()),
          rng_src_(gates::build_rng_netlist()),
          core_(core_src_->nl),
          rng_(rng_src_->nl) {
        const core::GaParameters& p = cfg_.params;
        program_ = {
            {0, static_cast<std::uint16_t>(p.n_gens & 0xFFFF)},
            {1, static_cast<std::uint16_t>(p.n_gens >> 16)},
            {2, p.pop_size},
            {3, p.xover_threshold},
            {4, p.mut_threshold},
            {5, p.seed},
        };
        // Fault-site addressing: register bit nets are named "<reg><bit>".
        for (const gates::Net q : core_src_->nl.register_q_nets())
            reg_net_by_name_.emplace(core_src_->nl.name_of(q), q);
    }

    std::uint64_t cycles() const noexcept { return cycle_; }

    /// Run one batch: `sites` (at most 63) map to lanes 1..63; lane 0 stays
    /// fault-free and must reproduce `golden_` exactly. Returns one record
    /// per site, in order.
    std::vector<FaultRecord> run_batch(const std::vector<FaultSite>& sites) {
        if (sites.empty() || sites.size() > kLanes - 1)
            throw std::invalid_argument("GateLaneRunner: need 1..63 sites per batch");
        reset();
        for (std::size_t i = 0; i < sites.size(); ++i) {
            Lane& l = lanes_[i + 1];
            l.has_site = true;
            l.site = sites[i];
            l.site_net = net_for(sites[i]);
        }

        const std::uint64_t watchdog =
            golden_.ga_cycles * cfg_.watchdog_factor + 64;
        // Bound on edges before the optimizer starts (init handshake).
        std::uint64_t prestart_guard = 4096;
        while (true) {
            step();
            if (opt_cycle_ < 0) {
                if (--prestart_guard == 0)
                    throw std::runtime_error("GateLaneRunner: optimizer never started");
                continue;
            }
            bool open = false;
            for (const Lane& l : lanes_)
                open |= (l.tracked() && !l.finished);
            if (!open || static_cast<std::uint64_t>(opt_cycle_) >= watchdog) break;
        }

        // Golden-lane determinism check: the batched gate simulation must
        // reproduce the RT-level golden run bit- and cycle-exactly.
        const Lane& g = lanes_[0];
        if (!g.finished || g.best_fitness != golden_.best_fitness ||
            g.best_candidate != golden_.best_candidate || g.ga_cycles != golden_.ga_cycles)
            throw std::runtime_error(
                "GateLaneRunner: golden lane diverged from the RT-level reference (finished=" +
                std::to_string(g.finished) + " fit=" + std::to_string(g.best_fitness) + "/" +
                std::to_string(golden_.best_fitness) + " cand=" +
                std::to_string(g.best_candidate) + "/" + std::to_string(golden_.best_candidate) +
                " cycles=" + std::to_string(g.ga_cycles) + "/" +
                std::to_string(golden_.ga_cycles) + ")");

        std::vector<FaultRecord> out;
        out.reserve(sites.size());
        for (std::size_t i = 0; i < sites.size(); ++i) {
            const Lane& l = lanes_[i + 1];
            if (!l.injected)
                throw std::logic_error("GateLaneRunner: site was never injected (grid too late)");
            FaultRecord rec;
            rec.site = l.site;
            rec.inject_cycle = l.inject_cycle;
            rec.finished = l.finished;
            rec.final_state = l.final_state;
            if (l.finished) {
                rec.best_fitness = l.best_fitness;
                rec.best_candidate = l.best_candidate;
                rec.ga_cycles = l.ga_cycles;
            }
            rec.outcome = classify(rec.finished, rec.best_fitness, rec.best_candidate,
                                   rec.final_state, golden_);
            out.push_back(rec);
        }
        return out;
    }

private:
    struct Lane {
        std::size_t init_item = 0;
        bool init_asserting = true;
        bool init_done = false;
        int start_hold = -1;
        std::array<std::uint32_t, mem::kGaMemoryDepth> mem{};
        std::uint32_t mem_dout = 0;

        bool has_site = false;
        FaultSite site;
        gates::Net site_net = gates::kNoNet;
        bool injected = false;
        std::uint64_t inject_cycle = 0;

        bool finished = false;
        std::uint16_t best_fitness = 0;
        std::uint16_t best_candidate = 0;
        std::uint64_t ga_cycles = 0;
        std::uint8_t final_state = 0;

        /// Lanes whose completion gates the batch: golden lane 0 (index
        /// checked by position) and every site lane.
        bool tracked() const noexcept { return has_site || golden_lane; }
        bool golden_lane = false;
    };

    gates::Net net_for(const FaultSite& site) const {
        const auto it = reg_net_by_name_.find(site.reg + std::to_string(site.bit));
        if (it == reg_net_by_name_.end())
            throw std::invalid_argument("GateLaneRunner: unknown fault site " + site.reg + "[" +
                                        std::to_string(site.bit) + "]");
        return it->second;
    }

    std::uint8_t lane_state(unsigned lane) const {
        std::uint8_t s = 0;
        for (unsigned j = 0; j < 6; ++j)
            if ((state_w_[j] >> lane) & 1u) s |= static_cast<std::uint8_t>(1u << j);
        return s;
    }

    void reset() {
        lanes_.assign(kLanes, Lane{});
        lanes_[0].golden_lane = true;
        opt_cycle_ = -1;

        core_.set_input_all(core_src_->reset, false);
        for (const gates::Net n : core_src_->preset) core_.set_input_all(n, false);
        for (const gates::Net n : core_src_->fitfunc_select) core_.set_input_all(n, false);
        for (const gates::Net n : core_src_->fit_value_ext) core_.set_input_all(n, false);
        core_.set_input_all(core_src_->fit_valid_ext, false);
        core_.set_input_all(core_src_->sel_force_found, false);
        for (const gates::Net n : core_src_->mem_data_in) core_.set_input_all(n, false);
        for (const gates::Net n : core_src_->fit_value) core_.set_input_all(n, false);
        core_.set_input_all(core_src_->fit_valid, false);
        core_.set_input_all(core_src_->start_ga, false);
        core_.set_input_all(core_src_->ga_load, false);
        core_.set_input_all(core_src_->data_valid, false);
        for (const gates::Net n : core_src_->index) core_.set_input_all(n, false);
        for (const gates::Net n : core_src_->value) core_.set_input_all(n, false);
        rng_.set_input_all(rng_src_->reset, false);
        for (const gates::Net n : rng_src_->preset) rng_.set_input_all(n, false);
        rng_.set_input_all(rng_src_->start, false);
        rng_.set_input_all(rng_src_->rn_next, false);
        rng_.set_input_all(rng_src_->ga_load, false);
        rng_.set_input_all(rng_src_->data_valid, false);
        for (const gates::Net n : rng_src_->index) rng_.set_input_all(n, false);
        for (const gates::Net n : rng_src_->value) rng_.set_input_all(n, false);

        core_.set_input_all(core_src_->reset, true);
        rng_.set_input_all(rng_src_->reset, true);
        core_.eval();
        rng_.eval();
        core_.clock();
        rng_.clock();
        core_.set_input_all(core_src_->reset, false);
        rng_.set_input_all(rng_src_->reset, false);
    }

    /// One GA-clock cycle across all 64 lanes (per-lane peripherals, clock
    /// edge, then fault injection and completion tracking post-edge).
    void step() {
        std::uint64_t ga_load_w = 0, data_valid_w = 0, start_w = 0;
        std::array<std::uint64_t, 3> index_w{};
        std::array<std::uint64_t, 16> value_w{};
        std::array<std::uint64_t, 32> mdi_w{};
        for (unsigned k = 0; k < kLanes; ++k) {
            const Lane& l = lanes_[k];
            const std::uint64_t bit = std::uint64_t{1} << k;
            if (!l.init_done) {
                ga_load_w |= bit;
                if (l.init_asserting) {
                    data_valid_w |= bit;
                    const auto& [idx, val] = program_[l.init_item];
                    for (unsigned j = 0; j < 3; ++j)
                        if ((idx >> j) & 1u) index_w[j] |= bit;
                    for (unsigned j = 0; j < 16; ++j)
                        if ((val >> j) & 1u) value_w[j] |= bit;
                }
            }
            if (l.start_hold > 0) start_w |= bit;
            for (unsigned j = 0; j < 32; ++j)
                if ((l.mem_dout >> j) & 1u) mdi_w[j] |= bit;
        }

        core_.set_input_lanes(core_src_->ga_load, ga_load_w);
        core_.set_input_lanes(core_src_->data_valid, data_valid_w);
        core_.set_input_lanes(core_src_->start_ga, start_w);
        core_.set_input_lanes(core_src_->fit_valid, 0);
        for (unsigned j = 0; j < 3; ++j)
            core_.set_input_lanes(core_src_->index[j], index_w[j]);
        for (unsigned j = 0; j < 16; ++j) {
            core_.set_input_lanes(core_src_->value[j], value_w[j]);
            core_.set_input_lanes(core_src_->fit_value[j], 0);
            core_.set_input_lanes(core_src_->rn[j], rng_.lanes(rng_src_->rn[j]));
        }
        for (unsigned j = 0; j < 32; ++j)
            core_.set_input_lanes(core_src_->mem_data_in[j], mdi_w[j]);
        core_.eval();

        // Same-cycle fitness response, matching the RT-level system where
        // the 200 MHz FEM answers inside one 50 MHz core cycle: fit_valid
        // combinationally tracks fit_request. fit_request and candidate are
        // Moore outputs, so sampling them before driving fit_valid back is
        // loop-free; the second eval() only recomputes next-state logic.
        const std::uint64_t fit_req_w = core_.lanes(core_src_->fit_request);
        if (fit_req_w != 0) {
            std::array<std::uint64_t, 16> fitv_w{};
            for (unsigned k = 0; k < kLanes; ++k) {
                if (!((fit_req_w >> k) & 1u)) continue;
                const std::uint16_t cand =
                    static_cast<std::uint16_t>(core_.word_value(core_src_->candidate, k));
                const std::uint16_t fv = fitness::fitness_u16(cfg_.fn, cand);
                for (unsigned j = 0; j < 16; ++j)
                    if ((fv >> j) & 1u) fitv_w[j] |= std::uint64_t{1} << k;
            }
            core_.set_input_lanes(core_src_->fit_valid, fit_req_w);
            for (unsigned j = 0; j < 16; ++j)
                core_.set_input_lanes(core_src_->fit_value[j], fitv_w[j]);
            core_.eval();
        }

        const std::uint64_t data_ack_w = core_.lanes(core_src_->data_ack);
        const std::uint64_t mem_wr_w = core_.lanes(core_src_->mem_wr);
        const std::uint64_t rn_next_w = core_.lanes(core_src_->rn_next);

        rng_.set_input_lanes(rng_src_->ga_load, ga_load_w);
        rng_.set_input_lanes(rng_src_->data_valid, data_valid_w);
        rng_.set_input_lanes(rng_src_->start, start_w);
        rng_.set_input_lanes(rng_src_->rn_next, rn_next_w);
        for (unsigned j = 0; j < 3; ++j)
            rng_.set_input_lanes(rng_src_->index[j], index_w[j]);
        for (unsigned j = 0; j < 16; ++j)
            rng_.set_input_lanes(rng_src_->value[j], value_w[j]);
        rng_.eval();

        core_.clock();
        rng_.clock();
        ++cycle_;

        // Post-edge register state: the cycle counter and injection points
        // are defined on it (cycle 0 = the edge that loaded kStart).
        for (unsigned j = 0; j < 6; ++j) state_w_[j] = core_.lanes(core_src_->state[j]);
        if (opt_cycle_ >= 0) {
            ++opt_cycle_;
        } else if (lane_state(0) == static_cast<std::uint8_t>(GaCore::State::kStart)) {
            opt_cycle_ = 0;
        }

        // Fault injection: a lane is injected at the first scan-safe cycle
        // >= its site's grid cycle. Pre-injection every lane is bit-exact
        // with golden lane 0, so lane 0's state decides safety for all.
        if (opt_cycle_ >= 0) {
            const std::uint8_t gstate = lane_state(0);
            if (scan_safe_state(gstate)) {
                for (unsigned k = 1; k < kLanes; ++k) {
                    Lane& l = lanes_[k];
                    if (l.has_site && !l.injected &&
                        l.site.cycle <= static_cast<std::uint64_t>(opt_cycle_)) {
                        core_.xor_register_lanes(l.site_net, std::uint64_t{1} << k);
                        l.injected = true;
                        l.inject_cycle = static_cast<std::uint64_t>(opt_cycle_);
                    }
                }
            } else if (gstate == static_cast<std::uint8_t>(GaCore::State::kDone)) {
                for (unsigned k = 1; k < kLanes; ++k)
                    if (lanes_[k].has_site && !lanes_[k].injected)
                        throw std::logic_error(
                            "GateLaneRunner: golden run ended before injection (grid too late)");
            }
        }

        // Per-lane peripheral models (identical to the batch runner).
        for (unsigned k = 0; k < kLanes; ++k) {
            Lane& l = lanes_[k];
            const std::uint64_t bit = std::uint64_t{1} << k;

            const std::uint8_t addr =
                static_cast<std::uint8_t>(core_.word_value(core_src_->mem_address, k));
            if (mem_wr_w & bit) {
                const std::uint32_t wdata =
                    static_cast<std::uint32_t>(core_.word_value(core_src_->mem_data_out, k));
                l.mem[addr] = wdata;
                l.mem_dout = wdata;
            } else {
                l.mem_dout = l.mem[addr];
            }

            if (!l.init_done) {
                if (l.init_asserting) {
                    if (data_ack_w & bit) l.init_asserting = false;
                } else if (!(data_ack_w & bit)) {
                    if (++l.init_item >= program_.size()) {
                        l.init_done = true;
                        l.start_hold = 2;
                    } else {
                        l.init_asserting = true;
                    }
                }
            } else if (l.start_hold > 0) {
                --l.start_hold;
            }

            // Completion / watchdog bookkeeping on the post-edge state.
            if (!l.finished && opt_cycle_ >= 0) {
                const std::uint8_t s = lane_state(k);
                l.final_state = s;
                if (s == static_cast<std::uint8_t>(GaCore::State::kDone)) {
                    l.finished = true;
                    l.best_fitness =
                        static_cast<std::uint16_t>(core_.word_value(core_src_->best_fit, k));
                    l.best_candidate =
                        static_cast<std::uint16_t>(core_.word_value(core_src_->best_ind, k));
                    l.ga_cycles = static_cast<std::uint64_t>(opt_cycle_);
                }
            }
        }
    }

    CampaignConfig cfg_;
    GoldenRun golden_;
    std::unique_ptr<gates::GaCoreNetlist> core_src_;
    std::unique_ptr<gates::RngNetlist> rng_src_;
    gates::CompiledNetlist core_;
    gates::CompiledNetlist rng_;
    std::vector<std::pair<std::uint8_t, std::uint16_t>> program_;
    std::unordered_map<std::string, gates::Net> reg_net_by_name_;
    std::vector<Lane> lanes_;
    std::array<std::uint64_t, 6> state_w_{};
    std::int64_t opt_cycle_ = -1;
    std::uint64_t cycle_ = 0;
};

}  // namespace

FaultCampaign::FaultCampaign(CampaignConfig cfg)
    : cfg_(cfg),
      injector_(InjectorConfig{.fn = cfg.fn, .params = cfg.params,
                               .watchdog_factor = cfg.watchdog_factor,
                               .fallback_preset = cfg.fallback_preset}) {
    if (cfg_.cycle_points == 0)
        throw std::invalid_argument("FaultCampaign: cycle_points must be > 0");
    if (!(cfg_.cycle_span > 0.0) || cfg_.cycle_span >= 1.0)
        throw std::invalid_argument("FaultCampaign: cycle_span must be in (0, 1)");
    if (cfg_.stride == 0) throw std::invalid_argument("FaultCampaign: stride must be > 0");
}

std::vector<FaultSite> FaultCampaign::enumerate_sites() const {
    const std::uint64_t span =
        static_cast<std::uint64_t>(cfg_.cycle_span * static_cast<double>(golden().ga_cycles));
    std::vector<FaultSite> sites;
    std::uint64_t idx = 0;
    for (const auto& [reg, width] : injector_.layout()) {
        for (unsigned bit = 0; bit < width; ++bit) {
            for (unsigned g = 0; g < cfg_.cycle_points; ++g) {
                if (idx++ % cfg_.stride == 0)
                    sites.push_back(FaultSite{reg, bit, span * g / cfg_.cycle_points});
                if (cfg_.max_sites != 0 && sites.size() >= cfg_.max_sites) return sites;
            }
        }
    }
    return sites;
}

CampaignResult FaultCampaign::run_gate(
    const std::vector<FaultSite>& sites,
    const std::function<void(std::size_t, std::size_t)>& progress) {
    CampaignResult res;
    res.golden = injector_.golden();
    res.preset_baseline = injector_.preset_baseline();
    res.records.reserve(sites.size());

    GateLaneRunner runner(cfg_, res.golden);
    for (std::size_t base = 0; base < sites.size(); base += kLanes - 1) {
        const std::size_t n = std::min<std::size_t>(kLanes - 1, sites.size() - base);
        const std::vector<FaultSite> batch(sites.begin() + static_cast<std::ptrdiff_t>(base),
                                           sites.begin() + static_cast<std::ptrdiff_t>(base + n));
        for (FaultRecord& rec : runner.run_batch(batch)) {
            res.count(rec);
            res.records.push_back(std::move(rec));
        }
        ++res.batches;
        if (progress) progress(base + n, sites.size());
    }
    res.gate_cycles = runner.cycles();
    return res;
}

}  // namespace gaip::fault
