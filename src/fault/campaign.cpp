#include "fault/campaign.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <utility>

#include "gates/compiled.hpp"
#include "gates/ga_core_gates.hpp"
#include "gates/rng_gates.hpp"
#include "mem/ga_memory.hpp"
#include "util/bits.hpp"
#include "util/worker_pool.hpp"

namespace gaip::fault {

namespace {

using core::GaCore;

constexpr unsigned kWordBits = gates::CompiledNetlist::kWordBits;

/// The gate-level lane-block batch engine behind FaultCampaign::run_gate.
/// The per-lane peripheral models (init-handshake FSM, zero-latency FEM,
/// write-first 256x32 memory, start pulse) mirror bench/gate_batch_runner's
/// — re-stated here because src/ libraries cannot depend on bench/ headers
/// — except that every lane runs the SAME configuration and each non-golden
/// lane carries one scheduled SEU. The compiled cores run with the
/// instruction-stream optimizer's dead-gate prune, keeping the observable
/// port surface this runner reads.
class GateLaneRunner {
public:
    GateLaneRunner(const CampaignConfig& cfg, const GoldenRun& golden)
        : cfg_(cfg),
          golden_(golden),
          core_src_(gates::build_ga_core_netlist()),
          rng_src_(gates::build_rng_netlist()),
          core_(core_src_->nl,
                gates::CompiledNetlist::Options{.words = cfg.lane_words,
                                                .cse = true,
                                                .prune = true,
                                                .keep = core_src_->observable_port_nets(),
                                                .backend = cfg.backend}),
          rng_(rng_src_->nl,
               gates::CompiledNetlist::Options{.words = cfg.lane_words,
                                               .cse = true,
                                               .prune = true,
                                               .keep = rng_src_->observable_port_nets(),
                                               .backend = cfg.backend}),
          words_(core_.words()),
          lane_count_(core_.lane_count()) {
        const core::GaParameters& p = cfg_.params;
        program_ = {
            {0, static_cast<std::uint16_t>(p.n_gens & 0xFFFF)},
            {1, static_cast<std::uint16_t>(p.n_gens >> 16)},
            {2, p.pop_size},
            {3, p.xover_threshold},
            {4, p.mut_threshold},
            {5, p.seed},
        };
        // Fault-site addressing: register bit nets are named "<reg><bit>".
        for (const gates::Net q : core_src_->nl.register_q_nets())
            reg_net_by_name_.emplace(core_src_->nl.name_of(q), q);

        // Resolve every signal step() touches to its storage slot ONCE:
        // the per-call validation inside set_input_word/lanes_word (net
        // kind + word range + pruning checks, ~1500 calls per cycle at
        // 8-word blocks) dominated the harness profile, swamping the SIMD
        // kernel itself. The cycle loop below runs exclusively on the
        // inline unchecked handle accessors.
        hc_ga_load_ = core_.input_handle(core_src_->ga_load);
        hc_data_valid_ = core_.input_handle(core_src_->data_valid);
        hc_start_ = core_.input_handle(core_src_->start_ga);
        hc_fit_valid_ = core_.input_handle(core_src_->fit_valid);
        hc_fit_request_ = core_.read_handle(core_src_->fit_request);
        hc_data_ack_ = core_.read_handle(core_src_->data_ack);
        hc_mem_wr_ = core_.read_handle(core_src_->mem_wr);
        hc_rn_next_ = core_.read_handle(core_src_->rn_next);
        for (unsigned j = 0; j < 3; ++j) {
            hc_index_[j] = core_.input_handle(core_src_->index[j]);
            hr_index_[j] = rng_.input_handle(rng_src_->index[j]);
        }
        for (unsigned j = 0; j < 16; ++j) {
            hc_value_[j] = core_.input_handle(core_src_->value[j]);
            hc_fit_value_[j] = core_.input_handle(core_src_->fit_value[j]);
            hc_rn_[j] = core_.input_handle(core_src_->rn[j]);
            hc_cand_[j] = core_.read_handle(core_src_->candidate[j]);
            hr_value_[j] = rng_.input_handle(rng_src_->value[j]);
            hr_rn_[j] = rng_.read_handle(rng_src_->rn[j]);
        }
        for (unsigned j = 0; j < 32; ++j) {
            hc_mdi_[j] = core_.input_handle(core_src_->mem_data_in[j]);
            hc_mdo_[j] = core_.read_handle(core_src_->mem_data_out[j]);
        }
        for (unsigned j = 0; j < 8; ++j)
            hc_addr_[j] = core_.read_handle(core_src_->mem_address[j]);
        for (unsigned j = 0; j < 6; ++j)
            hc_state_[j] = core_.read_handle(core_src_->state[j]);
        hr_ga_load_ = rng_.input_handle(rng_src_->ga_load);
        hr_data_valid_ = rng_.input_handle(rng_src_->data_valid);
        hr_start_ = rng_.input_handle(rng_src_->start);
        hr_rn_next_ = rng_.input_handle(rng_src_->rn_next);

        // The same-cycle fitness response only changes fit_valid/fit_value;
        // its fanout is a few hundred instructions, so the second eval of
        // step() runs just that cone instead of the full stream.
        std::vector<gates::Net> fit_sources{core_src_->fit_valid};
        fit_sources.insert(fit_sources.end(), core_src_->fit_value.begin(),
                           core_src_->fit_value.end());
        fit_cone_ = core_.make_cone(fit_sources);
    }

    std::uint64_t cycles() const noexcept { return cycle_; }
    unsigned lane_count() const noexcept { return lane_count_; }
    /// Injections retired per batch: every lane except golden lane 0.
    unsigned sites_per_batch() const noexcept { return lane_count_ - 1; }

    /// Run one batch: `sites` (at most lane_count() - 1) map to lanes 1..;
    /// lane 0 stays fault-free and must reproduce `golden_` exactly.
    /// Returns one record per site, in order.
    std::vector<FaultRecord> run_batch(const std::vector<FaultSite>& sites) {
        if (sites.empty() || sites.size() > sites_per_batch())
            throw std::invalid_argument("GateLaneRunner: need 1.." +
                                        std::to_string(sites_per_batch()) +
                                        " sites per batch");
        reset();
        for (std::size_t i = 0; i < sites.size(); ++i) {
            Lane& l = lanes_[i + 1];
            l.has_site = true;
            l.site = sites[i];
            l.site_net = net_for(sites[i]);
        }

        const std::uint64_t watchdog =
            golden_.ga_cycles * cfg_.watchdog_factor + 64;
        // Bound on edges before the optimizer starts (init handshake).
        std::uint64_t prestart_guard = 4096;
        while (true) {
            step();
            if (opt_cycle_ < 0) {
                if (--prestart_guard == 0)
                    throw std::runtime_error("GateLaneRunner: optimizer never started");
                continue;
            }
            bool open = false;
            for (const Lane& l : lanes_)
                open |= (l.tracked() && !l.finished);
            if (!open || static_cast<std::uint64_t>(opt_cycle_) >= watchdog) break;
        }

        // Golden-lane determinism check: the batched gate simulation must
        // reproduce the RT-level golden run bit- and cycle-exactly.
        const Lane& g = lanes_[0];
        if (!g.finished || g.best_fitness != golden_.best_fitness ||
            g.best_candidate != golden_.best_candidate || g.ga_cycles != golden_.ga_cycles)
            throw std::runtime_error(
                "GateLaneRunner: golden lane diverged from the RT-level reference (finished=" +
                std::to_string(g.finished) + " fit=" + std::to_string(g.best_fitness) + "/" +
                std::to_string(golden_.best_fitness) + " cand=" +
                std::to_string(g.best_candidate) + "/" + std::to_string(golden_.best_candidate) +
                " cycles=" + std::to_string(g.ga_cycles) + "/" +
                std::to_string(golden_.ga_cycles) + ")");

        std::vector<FaultRecord> out;
        out.reserve(sites.size());
        for (std::size_t i = 0; i < sites.size(); ++i) {
            const Lane& l = lanes_[i + 1];
            if (!l.injected)
                throw std::logic_error("GateLaneRunner: site was never injected (grid too late)");
            FaultRecord rec;
            rec.site = l.site;
            rec.inject_cycle = l.inject_cycle;
            rec.finished = l.finished;
            rec.final_state = l.final_state;
            if (l.finished) {
                rec.best_fitness = l.best_fitness;
                rec.best_candidate = l.best_candidate;
                rec.ga_cycles = l.ga_cycles;
            }
            rec.outcome = classify(rec.finished, rec.best_fitness, rec.best_candidate,
                                   rec.final_state, golden_);
            out.push_back(rec);
        }
        return out;
    }

private:
    /// One lane-block's worth of packed bits for a single signal.
    using WordVec = std::array<std::uint64_t, gates::CompiledNetlist::kMaxWords>;

    struct Lane {
        std::size_t init_item = 0;
        bool init_asserting = true;
        bool init_done = false;
        int start_hold = -1;

        bool has_site = false;
        FaultSite site;
        gates::Net site_net = gates::kNoNet;
        bool injected = false;
        std::uint64_t inject_cycle = 0;

        bool finished = false;
        std::uint16_t best_fitness = 0;
        std::uint16_t best_candidate = 0;
        std::uint64_t ga_cycles = 0;
        std::uint8_t final_state = 0;

        /// Lanes whose completion gates the batch: golden lane 0 (index
        /// checked by position) and every site lane.
        bool tracked() const noexcept { return has_site || golden_lane; }
        bool golden_lane = false;
    };

    using Handle = gates::CompiledNetlist::SlotHandle;

    static bool get(const WordVec& v, std::size_t k) noexcept {
        return (v[k / kWordBits] >> (k % kWordBits)) & 1u;
    }
    static void set(WordVec& v, std::size_t k) noexcept {
        v[k / kWordBits] |= std::uint64_t{1} << (k % kWordBits);
    }
    WordVec read_net(Handle h) const {
        WordVec v{};
        core_.read_words(h, v.data());
        return v;
    }
    static bool any(const WordVec& v) noexcept {
        std::uint64_t o = 0;
        for (const std::uint64_t w : v) o |= w;
        return o != 0;
    }
    void drive_core(Handle h, const WordVec& v) { core_.write_words(h, v.data()); }
    void drive_rng(Handle h, const WordVec& v) { rng_.write_words(h, v.data()); }

    gates::Net net_for(const FaultSite& site) const {
        const auto it = reg_net_by_name_.find(site.reg + std::to_string(site.bit));
        if (it == reg_net_by_name_.end())
            throw std::invalid_argument("GateLaneRunner: unknown fault site " + site.reg + "[" +
                                        std::to_string(site.bit) + "]");
        return it->second;
    }

    std::uint8_t lane_state(unsigned lane) const {
        std::uint8_t s = 0;
        for (unsigned j = 0; j < 6; ++j)
            if (get(state_w_[j], lane)) s |= static_cast<std::uint8_t>(1u << j);
        return s;
    }

    void reset() {
        lanes_.assign(lane_count_, Lane{});
        lanes_[0].golden_lane = true;
        opt_cycle_ = -1;
        inputs_quiet_ = false;
        mdi_w_ = {};
        mem_.assign(std::size_t{mem::kGaMemoryDepth} * lane_count_, 0);

        core_.set_input_all(core_src_->reset, false);
        for (const gates::Net n : core_src_->preset) core_.set_input_all(n, false);
        for (const gates::Net n : core_src_->fitfunc_select) core_.set_input_all(n, false);
        for (const gates::Net n : core_src_->fit_value_ext) core_.set_input_all(n, false);
        core_.set_input_all(core_src_->fit_valid_ext, false);
        core_.set_input_all(core_src_->sel_force_found, false);
        for (const gates::Net n : core_src_->mem_data_in) core_.set_input_all(n, false);
        for (const gates::Net n : core_src_->fit_value) core_.set_input_all(n, false);
        core_.set_input_all(core_src_->fit_valid, false);
        core_.set_input_all(core_src_->start_ga, false);
        core_.set_input_all(core_src_->ga_load, false);
        core_.set_input_all(core_src_->data_valid, false);
        for (const gates::Net n : core_src_->index) core_.set_input_all(n, false);
        for (const gates::Net n : core_src_->value) core_.set_input_all(n, false);
        rng_.set_input_all(rng_src_->reset, false);
        for (const gates::Net n : rng_src_->preset) rng_.set_input_all(n, false);
        rng_.set_input_all(rng_src_->start, false);
        rng_.set_input_all(rng_src_->rn_next, false);
        rng_.set_input_all(rng_src_->ga_load, false);
        rng_.set_input_all(rng_src_->data_valid, false);
        for (const gates::Net n : rng_src_->index) rng_.set_input_all(n, false);
        for (const gates::Net n : rng_src_->value) rng_.set_input_all(n, false);

        core_.set_input_all(core_src_->reset, true);
        rng_.set_input_all(rng_src_->reset, true);
        core_.eval();
        rng_.eval();
        core_.clock();
        rng_.clock();
        core_.set_input_all(core_src_->reset, false);
        rng_.set_input_all(rng_src_->reset, false);
    }

    /// One GA-clock cycle across all lanes (per-lane peripherals, clock
    /// edge, then fault injection and completion tracking post-edge).
    void step() {
        // Init-handshake/start drive words. Every lane runs the same
        // program, so once all lanes are past programming these vectors are
        // zero forever; `inputs_quiet_` skips the lane scan AND the drives
        // (the storage already holds zeros from the transition cycle).
        WordVec ga_load_w{}, data_valid_w{}, start_w{};
        const bool drive_handshake = !inputs_quiet_;
        if (drive_handshake) {
            std::array<WordVec, 3> index_w{};
            std::array<WordVec, 16> value_w{};
            bool all_idle = true;
            for (unsigned k = 0; k < lane_count_; ++k) {
                const Lane& l = lanes_[k];
                if (!l.init_done) {
                    all_idle = false;
                    set(ga_load_w, k);
                    if (l.init_asserting) {
                        set(data_valid_w, k);
                        const auto& [idx, val] = program_[l.init_item];
                        for (unsigned j = 0; j < 3; ++j)
                            if ((idx >> j) & 1u) set(index_w[j], k);
                        for (unsigned j = 0; j < 16; ++j)
                            if ((val >> j) & 1u) set(value_w[j], k);
                    }
                }
                if (l.start_hold > 0) {
                    all_idle = false;
                    set(start_w, k);
                }
            }
            inputs_quiet_ = all_idle;
            drive_core(hc_ga_load_, ga_load_w);
            drive_core(hc_data_valid_, data_valid_w);
            drive_core(hc_start_, start_w);
            drive_rng(hr_ga_load_, ga_load_w);
            drive_rng(hr_data_valid_, data_valid_w);
            drive_rng(hr_start_, start_w);
            for (unsigned j = 0; j < 3; ++j) {
                drive_core(hc_index_[j], index_w[j]);
                drive_rng(hr_index_[j], index_w[j]);
            }
            for (unsigned j = 0; j < 16; ++j) {
                drive_core(hc_value_[j], value_w[j]);
                drive_rng(hr_value_[j], value_w[j]);
            }
        }
        drive_core(hc_fit_valid_, WordVec{});
        for (unsigned j = 0; j < 16; ++j) {
            drive_core(hc_fit_value_[j], WordVec{});
            WordVec rn{};
            rng_.read_words(hr_rn_[j], rn.data());
            core_.write_words(hc_rn_[j], rn.data());
        }
        for (unsigned j = 0; j < 32; ++j) drive_core(hc_mdi_[j], mdi_w_[j]);
        core_.eval();

        // Same-cycle fitness response, matching the RT-level system where
        // the 200 MHz FEM answers inside one 50 MHz core cycle: fit_valid
        // combinationally tracks fit_request. fit_request and candidate are
        // Moore outputs, so sampling them before driving fit_valid back is
        // loop-free; the re-propagation runs only the precompiled
        // fit_valid/fit_value fanout cone (a few hundred instructions).
        const WordVec fit_req_w = read_net(hc_fit_request_);
        if (any(fit_req_w)) {
            std::array<WordVec, 16> fitv_w{};
            for (unsigned w = 0; w < words_; ++w) {
                if (fit_req_w[w] == 0) continue;
                // Gather this word's candidates into one value per lane,
                // evaluate the requesting lanes, scatter the fitness bits
                // back — two 64x64 transposes instead of per-lane bit
                // probes.
                std::uint64_t cand[kWordBits] = {};
                for (unsigned j = 0; j < 16; ++j) cand[j] = core_.read_word(hc_cand_[j], w);
                util::transpose64(cand);
                std::uint64_t fv[kWordBits] = {};
                for (std::uint64_t req = fit_req_w[w]; req != 0; req &= req - 1) {
                    const unsigned k = static_cast<unsigned>(std::countr_zero(req));
                    fv[k] = fitness::fitness_u16(cfg_.fn,
                                                 static_cast<std::uint16_t>(cand[k]));
                }
                util::transpose64(fv);
                for (unsigned j = 0; j < 16; ++j) fitv_w[j][w] = fv[j];
            }
            drive_core(hc_fit_valid_, fit_req_w);
            for (unsigned j = 0; j < 16; ++j) drive_core(hc_fit_value_[j], fitv_w[j]);
            core_.eval_cone(fit_cone_);
        }

        const WordVec data_ack_w = read_net(hc_data_ack_);
        const WordVec mem_wr_w = read_net(hc_mem_wr_);
        const WordVec rn_next_w = read_net(hc_rn_next_);

        drive_rng(hr_rn_next_, rn_next_w);
        rng_.eval();

        core_.clock();
        rng_.clock();
        ++cycle_;

        // Post-edge register state: the cycle counter and injection points
        // are defined on it (cycle 0 = the edge that loaded kStart).
        for (unsigned j = 0; j < 6; ++j) state_w_[j] = read_net(hc_state_[j]);
        if (opt_cycle_ >= 0) {
            ++opt_cycle_;
        } else if (lane_state(0) == static_cast<std::uint8_t>(GaCore::State::kStart)) {
            opt_cycle_ = 0;
        }

        // Fault injection: a lane is injected at the first scan-safe cycle
        // >= its site's grid cycle. Pre-injection every lane is bit-exact
        // with golden lane 0, so lane 0's state decides safety for all.
        if (opt_cycle_ >= 0) {
            const std::uint8_t gstate = lane_state(0);
            if (scan_safe_state(gstate)) {
                for (unsigned k = 1; k < lane_count_; ++k) {
                    Lane& l = lanes_[k];
                    if (l.has_site && !l.injected &&
                        l.site.cycle <= static_cast<std::uint64_t>(opt_cycle_)) {
                        core_.xor_register_word(l.site_net, k / kWordBits,
                                                std::uint64_t{1} << (k % kWordBits));
                        l.injected = true;
                        l.inject_cycle = static_cast<std::uint64_t>(opt_cycle_);
                    }
                }
            } else if (gstate == static_cast<std::uint8_t>(GaCore::State::kDone)) {
                for (unsigned k = 1; k < lane_count_; ++k)
                    if (lanes_[k].has_site && !lanes_[k].injected)
                        throw std::logic_error(
                            "GateLaneRunner: golden run ended before injection (grid too late)");
            }
        }

        // Per-lane peripheral models (identical to the batch runner); the
        // memory address/data sampling point (post-edge) is unchanged from
        // the original 64-lane engine — the golden-lane determinism check
        // pins it. All lane-block <-> per-lane conversions go through one
        // 64x64 bit transpose per word instead of per-lane bit probes.
        for (unsigned w = 0; w < words_; ++w) {
            const unsigned lane_base = w * kWordBits;
            std::uint64_t addr_t[kWordBits] = {};
            for (unsigned j = 0; j < 8; ++j) addr_t[j] = core_.read_word(hc_addr_[j], w);
            util::transpose64(addr_t);  // addr_t[k] = lane lane_base+k's address
            const std::uint64_t wr = mem_wr_w[w];
            std::uint64_t mdo_t[kWordBits] = {};
            if (wr != 0) {
                for (unsigned j = 0; j < 32; ++j) mdo_t[j] = core_.read_word(hc_mdo_[j], w);
                util::transpose64(mdo_t);  // mdo_t[k] = lane's write data
            }
            std::uint64_t st_t[kWordBits] = {};
            for (unsigned j = 0; j < 6; ++j) st_t[j] = state_w_[j][w];
            util::transpose64(st_t);  // st_t[k] = lane's post-edge FSM state
            const std::uint64_t ack = data_ack_w[w];
            std::uint64_t dout[kWordBits];

            for (unsigned k = 0; k < kWordBits; ++k) {
                Lane& l = lanes_[lane_base + k];

                // Shared [addr][lane] memory layout: pre-divergence every
                // lane reads the same address, so the per-cycle accesses
                // stay on a handful of contiguous cache lines instead of
                // one private 1 KiB array per lane.
                const std::uint8_t addr = static_cast<std::uint8_t>(addr_t[k]);
                std::uint32_t& cell =
                    mem_[std::size_t{addr} * lane_count_ + lane_base + k];
                if ((wr >> k) & 1u) cell = static_cast<std::uint32_t>(mdo_t[k]);
                dout[k] = cell;

                if (!l.init_done) {
                    if (l.init_asserting) {
                        if ((ack >> k) & 1u) l.init_asserting = false;
                    } else if (!((ack >> k) & 1u)) {
                        if (++l.init_item >= program_.size()) {
                            l.init_done = true;
                            l.start_hold = 2;
                        } else {
                            l.init_asserting = true;
                        }
                    }
                } else if (l.start_hold > 0) {
                    --l.start_hold;
                }

                // Completion / watchdog bookkeeping on the post-edge state.
                if (!l.finished && opt_cycle_ >= 0) {
                    const std::uint8_t s = static_cast<std::uint8_t>(st_t[k]);
                    l.final_state = s;
                    if (s == static_cast<std::uint8_t>(GaCore::State::kDone)) {
                        l.finished = true;
                        l.best_fitness = static_cast<std::uint16_t>(
                            core_.word_value(core_src_->best_fit, lane_base + k));
                        l.best_candidate = static_cast<std::uint16_t>(
                            core_.word_value(core_src_->best_ind, lane_base + k));
                        l.ga_cycles = static_cast<std::uint64_t>(opt_cycle_);
                    }
                }
            }

            // Transposed mem_data_out -> next cycle's mem_data_in drive.
            util::transpose64(dout);
            for (unsigned j = 0; j < 32; ++j) mdi_w_[j][w] = dout[j];
        }
    }

    CampaignConfig cfg_;
    GoldenRun golden_;
    std::unique_ptr<gates::GaCoreNetlist> core_src_;
    std::unique_ptr<gates::RngNetlist> rng_src_;
    gates::CompiledNetlist core_;
    gates::CompiledNetlist rng_;
    unsigned words_ = 1;
    unsigned lane_count_ = kWordBits;
    std::vector<std::pair<std::uint8_t, std::uint16_t>> program_;
    std::unordered_map<std::string, gates::Net> reg_net_by_name_;
    // Validated-once storage handles for every per-cycle signal (resolved
    // in the constructor; see the comment there).
    Handle hc_ga_load_, hc_data_valid_, hc_start_, hc_fit_valid_;
    Handle hc_fit_request_, hc_data_ack_, hc_mem_wr_, hc_rn_next_;
    std::array<Handle, 3> hc_index_{};
    std::array<Handle, 16> hc_value_{}, hc_fit_value_{}, hc_rn_{}, hc_cand_{};
    std::array<Handle, 32> hc_mdi_{}, hc_mdo_{};
    std::array<Handle, 8> hc_addr_{};
    std::array<Handle, 6> hc_state_{};
    Handle hr_ga_load_, hr_data_valid_, hr_start_, hr_rn_next_;
    std::array<Handle, 3> hr_index_{};
    std::array<Handle, 16> hr_value_{}, hr_rn_{};
    std::vector<Lane> lanes_;
    /// Per-lane write-first GA memory, transposed: element [addr *
    /// lane_count_ + lane]. See the locality note in the peripheral loop.
    std::vector<std::uint32_t> mem_;
    std::array<WordVec, 6> state_w_{};
    /// Transposed mem_data_in drive words for the NEXT cycle (bit k of
    /// [j][w] = bit j of lane w*64+k's mem_dout), refreshed at the end of
    /// each step()'s peripheral pass.
    std::array<WordVec, 32> mdi_w_{};
    /// True once every lane is past programming + start pulse: the
    /// handshake drive words are all-zero from then on and step() skips
    /// building and driving them.
    bool inputs_quiet_ = false;
    std::uint32_t fit_cone_ = 0;  // fanout of fit_valid/fit_value (see ctor)
    std::int64_t opt_cycle_ = -1;
    std::uint64_t cycle_ = 0;
};

}  // namespace

FaultCampaign::FaultCampaign(CampaignConfig cfg)
    : cfg_(cfg),
      injector_(InjectorConfig{.fn = cfg.fn, .params = cfg.params,
                               .watchdog_factor = cfg.watchdog_factor,
                               .fallback_preset = cfg.fallback_preset}) {
    if (cfg_.cycle_points == 0)
        throw std::invalid_argument("FaultCampaign: cycle_points must be > 0");
    if (!(cfg_.cycle_span > 0.0) || cfg_.cycle_span >= 1.0)
        throw std::invalid_argument("FaultCampaign: cycle_span must be in (0, 1)");
    if (cfg_.stride == 0) throw std::invalid_argument("FaultCampaign: stride must be > 0");
    if (cfg_.lane_words != 1 && cfg_.lane_words != 2 && cfg_.lane_words != 4 &&
        cfg_.lane_words != 8)
        throw std::invalid_argument("FaultCampaign: lane_words must be 1, 2, 4 or 8");
}

std::vector<FaultSite> FaultCampaign::enumerate_sites() const {
    const std::uint64_t span =
        static_cast<std::uint64_t>(cfg_.cycle_span * static_cast<double>(golden().ga_cycles));
    std::vector<FaultSite> sites;
    std::uint64_t idx = 0;
    for (const auto& [reg, width] : injector_.layout()) {
        for (unsigned bit = 0; bit < width; ++bit) {
            for (unsigned g = 0; g < cfg_.cycle_points; ++g) {
                if (idx++ % cfg_.stride == 0)
                    sites.push_back(FaultSite{reg, bit, span * g / cfg_.cycle_points});
                if (cfg_.max_sites != 0 && sites.size() >= cfg_.max_sites) return sites;
            }
        }
    }
    return sites;
}

CampaignResult FaultCampaign::run_gate(
    const std::vector<FaultSite>& sites,
    const std::function<void(std::size_t, std::size_t)>& progress) {
    CampaignResult res;
    res.golden = injector_.golden();
    res.preset_baseline = injector_.preset_baseline();
    res.records.reserve(sites.size());
    if (sites.empty()) return res;

    // Partition into fixed (lane_count - 1)-site batches and fan the
    // batches out across workers: each worker lazily builds ONE compiled
    // gate engine and reuses it for every batch it picks up. Results land
    // in batch-indexed slots, so record order, counts and gate_cycles are
    // identical at every thread count.
    const std::size_t per_batch = std::size_t{cfg_.lane_words} * kWordBits - 1;
    const std::size_t n_batches = (sites.size() + per_batch - 1) / per_batch;
    const unsigned threads = util::resolve_threads(cfg_.threads, n_batches);

    std::vector<std::unique_ptr<GateLaneRunner>> runners(threads);
    std::vector<std::vector<FaultRecord>> batch_recs(n_batches);
    std::vector<std::uint64_t> batch_cycles(n_batches, 0);
    std::mutex progress_mu;
    std::size_t done = 0;

    util::parallel_for_workers(threads, n_batches, [&](unsigned worker, std::size_t b) {
        if (!runners[worker])
            runners[worker] = std::make_unique<GateLaneRunner>(cfg_, res.golden);
        GateLaneRunner& runner = *runners[worker];
        const std::size_t base = b * per_batch;
        const std::size_t n = std::min(per_batch, sites.size() - base);
        const std::vector<FaultSite> batch(sites.begin() + static_cast<std::ptrdiff_t>(base),
                                           sites.begin() + static_cast<std::ptrdiff_t>(base + n));
        const std::uint64_t cycles_before = runner.cycles();
        batch_recs[b] = runner.run_batch(batch);
        batch_cycles[b] = runner.cycles() - cycles_before;
        if (progress) {
            const std::lock_guard<std::mutex> lock(progress_mu);
            done += n;
            progress(done, sites.size());
        }
    });

    for (std::size_t b = 0; b < n_batches; ++b) {
        res.gate_cycles += batch_cycles[b];
        for (FaultRecord& rec : batch_recs[b]) {
            res.count(rec);
            res.records.push_back(std::move(rec));
        }
    }
    res.batches = n_batches;
    return res;
}

}  // namespace gaip::fault
