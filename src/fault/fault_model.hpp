// Single-event-upset (SEU) fault model for the GA core (Sec. III-C.2: the
// AUDI scan chain gives full state controllability; Table IV's PRESET modes
// are the paper's fault-tolerance story for initialization failure).
//
// A fault is one inverted flip-flop at one point of the optimization cycle:
// the (register, bit, cycle) triple of FaultSite. Injection is restricted to
// SCAN-SAFE cycles — cycles whose controller state has no memory access or
// handshake in flight (the *Rn states, where the core only waits one cycle
// for the RNG) — so that all three injection backends (scan-chain
// read-modify-write, direct register poke, lane-wise XOR mask; see
// seu_injector.hpp) plant the *same* architectural upset and must agree on
// the outcome.
//
// Outcome taxonomy (campaign.hpp classifies every run):
//   kMasked      — run finished within the watchdog with the fault-free best
//                  fitness AND candidate (the upset was logically masked);
//   kWrongAnswer — run finished within the watchdog but delivered a
//                  different result (silent data corruption);
//   kRecovered   — run missed the watchdog, but the core's FSM settled in
//                  kIdle, where the PRESET fallback (assert preset pins,
//                  pulse start_GA — no reset needed) deterministically
//                  restarts the engine with the Table IV parameters;
//   kHang        — run missed the watchdog and the FSM is wedged outside
//                  kIdle (start_GA is only sampled in kIdle/kDone, so only
//                  a system reset can reclaim the core).
// "Missed the watchdog" includes faults that merely made the run
// pathologically long (e.g. an upper eff_ngens bit set): like a timeout-
// classified DUE in a radiation campaign, the supervisor cannot tell the
// difference without unbounded waiting.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/ga_core.hpp"

namespace gaip::fault {

enum class FaultOutcome : std::uint8_t { kMasked = 0, kWrongAnswer, kHang, kRecovered };

inline const char* outcome_name(FaultOutcome o) noexcept {
    switch (o) {
        case FaultOutcome::kMasked: return "masked";
        case FaultOutcome::kWrongAnswer: return "wrong-answer";
        case FaultOutcome::kHang: return "hang";
        case FaultOutcome::kRecovered: return "recovered";
    }
    return "?";
}

/// One fault: invert `bit` (LSB-relative) of register `reg` at the first
/// scan-safe cycle >= `cycle` (cycles counted from the kStart cycle of the
/// optimization run). `reg`/`bit` name the flip-flop identically in the
/// RT-level core (scan-chain position) and the gate-level netlist (bit net
/// "<reg><bit>"), so one site replays on every backend.
struct FaultSite {
    std::string reg;
    unsigned bit = 0;
    std::uint64_t cycle = 0;

    friend bool operator==(const FaultSite&, const FaultSite&) = default;
};

/// Reference (fault-free) run of the campaign configuration.
struct GoldenRun {
    std::uint16_t best_fitness = 0;
    std::uint16_t best_candidate = 0;
    std::uint32_t generations = 0;
    std::uint64_t ga_cycles = 0;  ///< kStart to kDone, 50 MHz cycles
};

/// One classified injection.
struct FaultRecord {
    FaultSite site;
    std::uint64_t inject_cycle = 0;  ///< actual (scan-safe) injection cycle
    FaultOutcome outcome = FaultOutcome::kMasked;
    bool finished = false;           ///< GA_done within the watchdog
    std::uint16_t best_fitness = 0;  ///< final values (valid when finished)
    std::uint16_t best_candidate = 0;
    std::uint64_t ga_cycles = 0;     ///< kStart to GA_done (when finished)
    std::uint8_t final_state = 0;    ///< FSM state at the watchdog (when not)
};

/// The controller states whose cycles are scan-safe injection points: the
/// core is waiting exactly one cycle for the RNG — no memory address or
/// handshake output is live, so freezing the core (scan backend) or editing
/// state between two edges (poke / lane-mask backends) are equivalent.
inline bool scan_safe_state(core::GaCore::State s) noexcept {
    using S = core::GaCore::State;
    return s == S::kIpRn || s == S::kSelRn || s == S::kXoRn || s == S::kMu1Rn || s == S::kMu2Rn;
}

inline bool scan_safe_state(std::uint8_t s) noexcept {
    return scan_safe_state(static_cast<core::GaCore::State>(s));
}

/// Classification shared by every backend (see taxonomy above).
inline FaultOutcome classify(bool finished, std::uint16_t best_fitness,
                             std::uint16_t best_candidate, std::uint8_t final_state,
                             const GoldenRun& golden) noexcept {
    if (finished) {
        const bool exact = best_fitness == golden.best_fitness &&
                           best_candidate == golden.best_candidate;
        return exact ? FaultOutcome::kMasked : FaultOutcome::kWrongAnswer;
    }
    return static_cast<core::GaCore::State>(final_state) == core::GaCore::State::kIdle
               ? FaultOutcome::kRecovered
               : FaultOutcome::kHang;
}

/// Watchdog cycle budget shared by the SEU injector and the mission
/// supervisor: `ga_cycles * factor + 64`, with explicit uint64 overflow
/// checking. A pathological `eff_ngens` (e.g. an upper bit set during
/// programming or by an upset) can push the golden cycle count high enough
/// that the naive product wraps and silently arms an absurdly SHORT
/// watchdog; this throws std::overflow_error with the offending values
/// instead.
std::uint64_t watchdog_budget(std::uint64_t ga_cycles, std::uint64_t factor);

/// Per-register aggregation for the vulnerability table.
struct RegisterVulnerability {
    std::string reg;
    unsigned width = 0;
    std::uint64_t injections = 0;
    std::uint64_t masked = 0;
    std::uint64_t wrong = 0;
    std::uint64_t hang = 0;
    std::uint64_t recovered = 0;

    /// Fraction of injections that did NOT end in the golden answer.
    double vulnerability() const noexcept {
        return injections == 0
                   ? 0.0
                   : static_cast<double>(injections - masked) / static_cast<double>(injections);
    }
};

std::vector<RegisterVulnerability> aggregate_by_register(
    const std::vector<FaultRecord>& records);

}  // namespace gaip::fault
