// Programmable GA parameters (Tables III & IV of the paper) and the preset
// resolution logic.
//
// Initialization protocol (Sec. III-B.6): with ga_load asserted, the user
// places a parameter index on `index`, the value on the `value` bus, and
// asserts data_valid; the core latches the register selected by the index
// and answers on data_ack (two-way handshake). Indices:
//
//   0  number of generations [15:0]
//   1  number of generations [31:16]
//   2  population size
//   3  crossover rate (4-bit threshold: crossover iff rand4 < threshold)
//   4  mutation rate  (4-bit threshold: mutate   iff rand4 < threshold)
//   5  RNG seed (captured by the RNG module, which also snoops the bus)
//
// Preset modes (Table IV) bypass the programmed values entirely; mode 00
// selects the user-programmed registers.
#pragma once

#include <cstdint>

namespace gaip::core {

enum class ParamIndex : std::uint8_t {
    kNumGensLo = 0,
    kNumGensHi = 1,
    kPopSize = 2,
    kCrossoverRate = 3,
    kMutationRate = 4,
    kRngSeed = 5,
};

/// Resolved GA parameters as the optimization cycle consumes them.
struct GaParameters {
    std::uint8_t pop_size = 32;          ///< individuals per population (2..128)
    std::uint32_t n_gens = 32;           ///< generations to evolve
    std::uint8_t xover_threshold = 12;   ///< crossover iff rand4 < threshold (rate = t/16)
    std::uint8_t mut_threshold = 1;      ///< mutate iff rand4 < threshold (rate = t/16)
    std::uint16_t seed = 1;              ///< RNG seed (0 remaps to 1)

    friend bool operator==(const GaParameters&, const GaParameters&) = default;
};

/// The double-banked 256-word GA memory bounds the population at 128
/// members per bank. (Table IV's user row says "< 256", but the paper's own
/// presets stop at 128 and a 256-deep single-port memory cannot double-
/// buffer more; we clamp and document.)
inline constexpr std::uint8_t kMaxPopSize = 128;
inline constexpr std::uint8_t kMinPopSize = 2;

constexpr std::uint8_t clamp_pop_size(std::uint32_t p) noexcept {
    if (p < kMinPopSize) return kMinPopSize;
    if (p > kMaxPopSize) return kMaxPopSize;
    return static_cast<std::uint8_t>(p);
}

/// Preset parameter sets of Table IV (modes 01, 10, 11).
constexpr GaParameters preset_parameters(std::uint8_t mode) noexcept {
    switch (mode & 0x3) {
        case 1: return {.pop_size = 32, .n_gens = 512, .xover_threshold = 12, .mut_threshold = 1};
        case 2: return {.pop_size = 64, .n_gens = 1024, .xover_threshold = 13, .mut_threshold = 2};
        case 3: return {.pop_size = 128, .n_gens = 4096, .xover_threshold = 14, .mut_threshold = 3};
        default: return {};
    }
}

/// Resolve the parameters the core will actually run with: preset mode 00
/// uses the user-programmed values, other modes the Table IV constants.
constexpr GaParameters resolve_parameters(std::uint8_t preset, const GaParameters& user) noexcept {
    if ((preset & 0x3) == 0) {
        GaParameters p = user;
        p.pop_size = clamp_pop_size(p.pop_size);
        p.xover_threshold &= 0xF;
        p.mut_threshold &= 0xF;
        if (p.seed == 0) p.seed = 1;
        return p;
    }
    return preset_parameters(preset);
}

/// Static configuration of a core instance (fixed at synthesis time, like
/// generics of the netlist).
struct GaCoreConfig {
    /// Bit i set => fitness slot i is served by the external FEM ports
    /// (fit_value_ext / fit_valid_ext) instead of the internal pair.
    std::uint8_t external_slot_mask = 0xF0;
};

}  // namespace gaip::core
