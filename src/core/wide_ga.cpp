#include "core/wide_ga.hpp"

#include <stdexcept>

#include "util/bits.hpp"

namespace gaip::core {

std::pair<std::uint64_t, std::uint64_t> crossover_pair_wide(std::uint64_t p1, std::uint64_t p2,
                                                            unsigned cut, unsigned bits) {
    const std::uint64_t mask = util::low_mask(cut);
    const std::uint64_t width_mask = util::low_mask(bits);
    const std::uint64_t o1 = ((p1 & mask) | (p2 & ~mask)) & width_mask;
    const std::uint64_t o2 = ((p2 & mask) | (p1 & ~mask)) & width_mask;
    return {o1, o2};
}

namespace {

/// Assemble a chromosome of `bits` width from 16-bit RNG words.
std::uint64_t random_chromosome(RngState& rng, unsigned bits) {
    std::uint64_t v = 0;
    for (unsigned got = 0; got < bits; got += 16) v = (v << 16) | rng.next16();
    return v & util::low_mask(bits);
}

/// Uniform-ish draw in [0, n) from a 16-bit word (n <= 64: the modulo bias
/// over 65536 draws is negligible and matches what a hardware modulo-free
/// implementation would tolerate).
unsigned draw_mod(RngState& rng, unsigned n) { return rng.next16() % n; }

std::size_t select_wide(const std::vector<WideMember>& pop, std::uint32_t fit_sum,
                        std::uint16_t r) {
    const std::uint32_t thresh =
        static_cast<std::uint32_t>((static_cast<std::uint64_t>(fit_sum) * r) >> 16);
    std::uint32_t cum = 0;
    std::size_t idx = 0;
    for (std::size_t reads = 0;; ++reads) {
        const std::uint16_t fit = pop[idx].fitness;
        if (cum + fit > thresh || reads + 1 >= 2 * pop.size()) return idx;
        cum += fit;
        idx = (idx + 1) % pop.size();
    }
}

}  // namespace

WideRunResult run_wide_ga(const WideGaParameters& raw, const FitnessFnWide& fitness,
                          prng::RngKind rng_kind) {
    if (!fitness) throw std::invalid_argument("run_wide_ga: null fitness");
    if (raw.chrom_bits == 0 || raw.chrom_bits > 64)
        throw std::invalid_argument("run_wide_ga: chromosome width must be 1..64");

    WideGaParameters params = raw;
    params.pop_size = clamp_pop_size(params.pop_size);
    RngState rng(params.seed, rng_kind);
    WideRunResult result;

    std::uint64_t best_ind = 0;
    std::uint16_t best_fit = 0;
    auto offer = [&](std::uint64_t cand, std::uint16_t fit) {
        if (fit > best_fit) {
            best_fit = fit;
            best_ind = cand;
        }
    };

    std::vector<WideMember> cur(params.pop_size);
    std::uint32_t fit_sum = 0;
    for (WideMember& m : cur) {
        m.candidate = random_chromosome(rng, params.chrom_bits);
        m.fitness = fitness(m.candidate);
        ++result.evaluations;
        fit_sum += m.fitness;
        offer(m.candidate, m.fitness);
    }
    result.best_per_generation.push_back(best_fit);

    std::vector<WideMember> next(params.pop_size);
    for (std::uint32_t gen = 0; gen < params.n_gens; ++gen) {
        next[0] = {best_ind, best_fit};
        std::uint32_t sum_new = best_fit;
        std::size_t idx = 1;
        while (idx < params.pop_size) {
            const std::size_t i1 = select_wide(cur, fit_sum, rng.next16());
            const std::size_t i2 = select_wide(cur, fit_sum, rng.next16());

            std::uint64_t o1 = cur[i1].candidate;
            std::uint64_t o2 = cur[i2].candidate;
            if ((rng.next16() & 0xF) < params.xover_threshold) {
                const unsigned cut = draw_mod(rng, params.chrom_bits);
                std::tie(o1, o2) = crossover_pair_wide(o1, o2, cut, params.chrom_bits);
            }
            for (std::uint64_t* off : {&o1, &o2}) {
                if ((rng.next16() & 0xF) < params.mut_threshold)
                    *off ^= std::uint64_t{1} << draw_mod(rng, params.chrom_bits);
                const std::uint16_t f = fitness(*off);
                ++result.evaluations;
                next[idx] = {*off, f};
                sum_new += f;
                offer(*off, f);
                ++idx;
                if (idx >= params.pop_size) break;
            }
        }
        cur.swap(next);
        fit_sum = sum_new;
        result.best_per_generation.push_back(best_fit);
    }

    result.best_candidate = best_ind;
    result.best_fitness = best_fit;
    return result;
}

}  // namespace gaip::core
