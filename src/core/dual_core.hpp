// Dual-core 32-bit GA engine (Sec. III-D.1, Fig. 6): two 16-bit GA cores
// evolve the MSB and LSB halves of a 32-bit chromosome in lockstep.
//
//  * GA_Core1 (MSB) owns the shared 48-bit GA memory's address/write port
//    and the fitness field; GA_Core2 (LSB) contributes only its candidate
//    half ("the write signal ... is generated from GA_Core1; the fitness
//    value is written only from GA_Core1").
//  * Parent-selection synchronization (scalingLogic_parSel): the memory glue
//    supplies a fitness of zero to GA_Core2 during its selection scan, so
//    its cumulative sum can never cross its threshold and it keeps scanning
//    in lockstep with GA_Core1; when GA_Core1's combinational sel_found
//    fires, the glue forces GA_Core2 to select the same slot via
//    sel_force_found. (The paper describes the zero-fitness masking; the
//    explicit force is our cycle-exact realization of its "until GA_Core1
//    has found the parent individual" release, which a pure fitness-value
//    release cannot achieve off-by-one-free.)
//  * Both cores receive the full fitness value on their fit_value inputs
//    (a 16-bit bus fans out at zero cost), which keeps their fitness sums
//    and best-member tracking identical — necessary for the elite slot to
//    hold a coherent 32-bit individual. The paper routes the value only to
//    GA_Core1 and does not discuss elite coherence; see DESIGN.md.
//  * Crossover/mutation run independently per half, so the 32-bit operator
//    is a (up to) three-point crossover / up to two-bit mutation with the
//    composed probabilities of the paper's equations (compose_probability).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/behavioral.hpp"
#include "core/ga_core.hpp"
#include "core/params.hpp"
#include "prng/rng_module.hpp"
#include "rtl/kernel.hpp"
#include "system/app_module.hpp"
#include "system/init_module.hpp"
#include "system/wires.hpp"

namespace gaip::core {

/// Probability composition for independent per-half operators:
/// p32 = p_msb + p_lsb - p_msb * p_lsb (both paper equations have this form).
constexpr double compose_probability(double p_msb, double p_lsb) noexcept {
    return p_msb + p_lsb - p_msb * p_lsb;
}

/// Largest 4-bit threshold whose equal-per-half composition stays at or
/// below the requested 32-bit rate ("lower crossover probabilities should
/// be used" — the paper's guidance for the more disruptive 3-point case).
std::uint8_t split_threshold_for_rate32(double target_rate32) noexcept;

/// Fitness over the concatenated 32-bit chromosome.
using FitnessFn32 = std::function<std::uint16_t(std::uint32_t)>;

/// The shared 48-bit GA memory of Fig. 6 plus the scalingLogic_parSel
/// read-path glue. Storage word: {fitness[47:32], msb[31:16], lsb[15:0]}.
class DualGaMemory final : public rtl::Module {
public:
    struct Ports {
        // master (core 1) side
        rtl::Wire<std::uint8_t>& addr;
        rtl::Wire<bool>& write;
        rtl::Wire<std::uint32_t>& data1;   // core1 mem_data_out {fit, msb}
        rtl::Wire<std::uint32_t>& data2;   // core2 mem_data_out {fit ignored, lsb}
        rtl::Wire<std::uint32_t>& dout1;   // to core1: {fit, msb}
        rtl::Wire<std::uint32_t>& dout2;   // to core2: {0, lsb} (masked fitness)
    };

    explicit DualGaMemory(Ports ports);

    void eval() override;
    void tick() override;
    void reset_state() override;

    std::uint32_t candidate32_at(bool bank, std::uint8_t idx) const;
    std::uint16_t fitness_at(bool bank, std::uint8_t idx) const;
    std::uint64_t storage_bits() const noexcept { return mem_.size() * 48ull; }

private:
    Ports p_;
    std::vector<std::uint64_t> mem_;
    rtl::Reg<std::uint64_t> dout_reg_{"dual_mem_dout", 0, 48};
};

/// Combinational glue between the two cores: start fanout, selection
/// synchronization, init-completion conjunction.
class DualGlue final : public rtl::Module {
public:
    struct Ports {
        rtl::Wire<bool>& start1;           // app -> core1 start_ga (source)
        rtl::Wire<bool>& start2;           // -> core2 start_ga
        rtl::Wire<bool>& sel_found1;       // core1 -> force core2
        rtl::Wire<bool>& force2;           // -> core2 sel_force_found
        rtl::Wire<bool>& init_done1;
        rtl::Wire<bool>& init_done2;
        rtl::Wire<bool>& init_done_both;   // -> app module
    };

    explicit DualGlue(Ports ports) : Module("dual_glue"), p_(ports) {}

    void eval() override {
        p_.start2.drive(p_.start1.read());
        p_.force2.drive(p_.sel_found1.read());
        p_.init_done_both.drive(p_.init_done1.read() && p_.init_done2.read());
    }

private:
    Ports p_;
};

/// Fitness evaluation module over the concatenated candidate. Answers on
/// both cores' fit_value/fit_valid pairs simultaneously.
class Fem32 final : public rtl::Module {
public:
    struct Ports {
        rtl::Wire<bool>& fit_request;          // from core1
        rtl::Wire<std::uint16_t>& cand_msb;    // core1 candidate bus
        rtl::Wire<std::uint16_t>& cand_lsb;    // core2 candidate bus
        rtl::Wire<std::uint16_t>& fit_value1;
        rtl::Wire<bool>& fit_valid1;
        rtl::Wire<std::uint16_t>& fit_value2;
        rtl::Wire<bool>& fit_valid2;
    };

    Fem32(Ports ports, FitnessFn32 fn);

    void eval() override;
    void tick() override;
    void reset_state() override { evaluations_ = 0; }

    std::uint64_t evaluations() const noexcept { return evaluations_; }

private:
    enum class State : std::uint8_t { kIdle = 0, kLookup, kPresent, kWaitDrop };

    Ports p_;
    FitnessFn32 fn_;
    std::uint64_t evaluations_ = 0;
    rtl::Reg<State> state_{"fem32_state", State::kIdle, 2};
    rtl::Reg<std::uint32_t> cand_{"fem32_cand", 0};
    rtl::Reg<std::uint16_t> value_{"fem32_value", 0};
};

struct DualGaConfig {
    std::uint8_t pop_size = 32;
    std::uint32_t n_gens = 32;
    std::uint8_t xover_threshold_msb = 7;  // composed 32-bit rate ~0.76
    std::uint8_t xover_threshold_lsb = 7;
    std::uint8_t mut_threshold_msb = 1;
    std::uint8_t mut_threshold_lsb = 1;
    std::uint16_t seed_msb = 0x2961;
    std::uint16_t seed_lsb = 0xB342;
    FitnessFn32 fitness;
};

struct DualRunResult {
    std::uint32_t best_candidate = 0;
    std::uint16_t best_fitness = 0;
    std::uint64_t evaluations = 0;
    std::uint64_t ga_cycles = 0;
};

/// The assembled dual-core system of Fig. 6.
class DualGaSystem {
public:
    explicit DualGaSystem(DualGaConfig cfg);

    DualRunResult run();

    GaCore& core_msb() noexcept { return *core1_; }
    GaCore& core_lsb() noexcept { return *core2_; }
    const DualGaMemory& memory() const noexcept { return *memory_; }
    rtl::Kernel& kernel() noexcept { return kernel_; }
    std::uint8_t pop_size() const noexcept { return cfg_.pop_size; }

private:
    DualGaConfig cfg_;
    rtl::Kernel kernel_;
    rtl::Clock* ga_clk_ = nullptr;
    rtl::Clock* app_clk_ = nullptr;

    system::CoreWireBundle w1_;
    system::CoreWireBundle w2_;
    rtl::Wire<bool> init_done1_;
    rtl::Wire<bool> init_done2_;
    rtl::Wire<bool> init_done_both_;
    rtl::Wire<bool> app_done_;

    std::unique_ptr<GaCore> core1_;
    std::unique_ptr<GaCore> core2_;
    std::unique_ptr<prng::RngModule> rng1_;
    std::unique_ptr<prng::RngModule> rng2_;
    std::unique_ptr<DualGaMemory> memory_;
    std::unique_ptr<DualGlue> glue_;
    std::unique_ptr<Fem32> fem_;
    std::unique_ptr<system::InitModule> init1_;
    std::unique_ptr<system::InitModule> init2_;
    std::unique_ptr<system::AppModule> app_;
};

}  // namespace gaip::core
