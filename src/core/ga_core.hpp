// The GA IP core — RTL model of the paper's primary contribution.
//
// An elitist generational GA engine with run-time-programmable parameters,
// modeled as an FSM + datapath in the style of the AUDI high-level-synthesis
// output the authors describe: a serial controller performing one register-
// transfer operation per state (and therefore per 50 MHz clock cycle).
//
// The port surface implements all 25 signals of Table II plus three kinds of
// documented extensions:
//   * rn_next            — RNG advance enable (see rng_module.hpp for why);
//   * sel_found / sel_force_found — the parent-selection synchronization
//     hooks the dual-core composition of Fig. 6 needs (our realization of
//     the paper's scalingLogic_parSel, see dual_core.hpp);
//   * mon_*              — generation-statistics taps, the model's stand-in
//     for the ChipScope cores the authors attached to the design.
//
// Optimization cycle (Fig. 2): initial random population -> per generation:
// elite copy, then {proportionate selection x2, single-point crossover,
// single-bit mutation, fitness handshake, store} until the new bank is full,
// then bank swap — for the programmed number of generations. The best
// individual ever seen is continuously driven on `candidate` (the paper:
// "the best candidate of every generation is always output to the
// application to use in case of an emergency").
#pragma once

#include <cstdint>

#include "core/params.hpp"
#include "rtl/module.hpp"
#include "rtl/scan.hpp"

namespace gaip::core {

struct GaCorePorts {
    // -- initialization interface (Table II signals 3-7)
    rtl::Wire<bool>& ga_load;
    rtl::Wire<std::uint8_t>& index;
    rtl::Wire<std::uint16_t>& value;
    rtl::Wire<bool>& data_valid;
    rtl::Wire<bool>& data_ack;  // out

    // -- fitness interface, internal pair (signals 8-11)
    rtl::Wire<std::uint16_t>& fit_value;
    rtl::Wire<bool>& fit_request;  // out
    rtl::Wire<bool>& fit_valid;
    rtl::Wire<std::uint16_t>& candidate;  // out

    // -- GA memory interface (signals 12-15)
    rtl::Wire<std::uint8_t>& mem_address;    // out
    rtl::Wire<std::uint32_t>& mem_data_out;  // out
    rtl::Wire<bool>& mem_wr;                 // out
    rtl::Wire<std::uint32_t>& mem_data_in;

    // -- control (16-17)
    rtl::Wire<bool>& start_ga;
    rtl::Wire<bool>& ga_done;  // out

    // -- scan test (18-20)
    rtl::Wire<bool>& test;
    rtl::Wire<bool>& scanin;
    rtl::Wire<bool>& scanout;  // out

    // -- preset / RNG / fitness selection (21-25)
    rtl::Wire<std::uint8_t>& preset;
    rtl::Wire<std::uint16_t>& rn;
    rtl::Wire<std::uint8_t>& fitfunc_select;
    rtl::Wire<std::uint16_t>& fit_value_ext;
    rtl::Wire<bool>& fit_valid_ext;

    // -- extensions (documented above)
    rtl::Wire<bool>& rn_next;          // out: advance the RNG one step
    rtl::Wire<bool>& sel_found;        // out: selection hit this cycle
    rtl::Wire<bool>& sel_force_found;  // in:  dual-core slave override

    // -- monitor taps (out)
    rtl::Wire<bool>& mon_gen_pulse;
    rtl::Wire<std::uint32_t>& mon_gen_id;
    rtl::Wire<std::uint16_t>& mon_best_fit;
    rtl::Wire<std::uint32_t>& mon_fit_sum;
    rtl::Wire<std::uint16_t>& mon_best_ind;
    rtl::Wire<bool>& mon_bank;
    rtl::Wire<std::uint8_t>& mon_pop_size;
};

class GaCore final : public rtl::Module {
public:
    /// Controller states. One register-transfer operation per state; the
    /// names follow the optimization cycle of Fig. 2.
    enum class State : std::uint8_t {
        kIdle = 0,
        kInitWait,     // init handshake: wait for data_valid, latch parameter
        kInitAck,      // init handshake: data_ack high until data_valid drops
        kStart,        // resolve presets, clear loop registers
        kIpRn,         // initial population: advance RNG
        kIpGen,        // initial population: random chromosome from rn
        kEvalReq,      // fitness handshake: request asserted, await valid
        kEvalDrop,     // fitness handshake: await valid deassertion
        kIpStore,      // initial population: write member, accumulate stats
        kGenCheck,     // generation boundary: monitor pulse, loop or finish
        kElite,        // write best-ever member into slot 0 of the new bank
        kSelRn,        // selection: advance RNG for the threshold
        kSelThresh,    // selection: threshold = (fit_sum * rn) >> 16
        kSelAddr,      // selection: issue memory read of the scanned member
        kSelCheck,     // selection: accumulate, compare, possibly select
        kXoRn,         // crossover: advance RNG
        kXoDecide,     // crossover: latch decide nibble and cut point
        kXoApply,      // crossover: compute both offspring via the bit mask
        kMu1Rn,        // mutation of offspring 1: advance RNG
        kMu1Apply,     // mutation of offspring 1: conditional bit flip
        kStore1,       // store offspring 1, accumulate stats
        kMu2Rn,        // mutation of offspring 2: advance RNG
        kMu2Apply,     // mutation of offspring 2: conditional bit flip
        kStore2,       // store offspring 2, accumulate stats
        kGenEnd,       // bank swap, fitness-sum handover, generation++
        kDone,         // GA_done asserted, best candidate on the bus
    };

    GaCore(std::string name, GaCorePorts ports, GaCoreConfig cfg = {});

    void eval() override;
    void tick() override;
    void reset_state() override;

    // --- introspection for tests / monitors (simulator visibility only) ---
    State state() const noexcept { return state_.read(); }
    GaParameters programmed_parameters() const;
    GaParameters effective_parameters() const;
    std::uint16_t best_fitness() const noexcept { return best_fit_.read(); }
    std::uint16_t best_candidate() const noexcept { return best_ind_.read(); }
    std::uint32_t generation() const noexcept { return gen_id_.read(); }
    bool current_bank() const noexcept { return bank_.read(); }
    /// Operation counters since the last kStart: RNG advances (one per *Rn
    /// state), crossovers applied (kXoApply with the decide bit set), and
    /// mutation bit flips (kMu1Apply/kMu2Apply below threshold). Simulator
    /// visibility for the telemetry tap — deliberately NOT rtl::Reg members,
    /// so the scan-chain layout and flip-flop census stay untouched.
    std::uint64_t rng_draws() const noexcept { return rng_draws_; }
    std::uint64_t crossovers() const noexcept { return crossovers_; }
    std::uint64_t mutations() const noexcept { return mutations_; }

    const rtl::ScanChain& scan_chain() const noexcept { return scan_; }
    /// Mutable chain access: the fault injector's register-poke backdoor
    /// (pair any ScanChain edit with input_changed() so the event-driven
    /// scheduler re-evaluates the Moore outputs before the next edge).
    rtl::ScanChain& scan_chain() noexcept { return scan_; }

private:
    // Effective fitness-response pair after internal/external selection.
    bool fit_valid_sel() const;
    std::uint16_t fit_value_sel() const;
    bool use_external_fem() const;

    // Combinational selection hit condition, valid in kSelCheck.
    bool selection_hit() const;

    void tick_init_handshake();
    void tick_optimizer();

    GaCorePorts p_;
    GaCoreConfig cfg_;

    // -- controller
    rtl::Reg<State> state_{"state", State::kIdle, 6};
    rtl::Reg<State> ret_state_{"ret_state", State::kIdle, 6};

    // -- programmable parameter registers (Table III)
    rtl::Reg<std::uint16_t> ngens_lo_{"ngens_lo", 32};
    rtl::Reg<std::uint16_t> ngens_hi_{"ngens_hi", 0};
    rtl::Reg<std::uint8_t> pop_size_{"pop_size", 32};
    rtl::Reg<std::uint8_t> xover_thresh_{"xover_thresh", 12, 4};
    rtl::Reg<std::uint8_t> mut_thresh_{"mut_thresh", 1, 4};

    // -- effective (preset-resolved) parameters for the running cycle
    rtl::Reg<std::uint8_t> eff_pop_{"eff_pop", 32};
    rtl::Reg<std::uint32_t> eff_ngens_{"eff_ngens", 32};
    rtl::Reg<std::uint8_t> eff_xt_{"eff_xt", 12, 4};
    rtl::Reg<std::uint8_t> eff_mt_{"eff_mt", 1, 4};

    // -- loop counters
    rtl::Reg<std::uint32_t> gen_id_{"gen_id", 0};
    rtl::Reg<std::uint8_t> pop_idx_{"pop_idx", 0};
    rtl::Reg<std::uint8_t> new_idx_{"new_idx", 0};
    rtl::Reg<std::uint8_t> scan_idx_{"scan_idx", 0};
    rtl::Reg<std::uint16_t> scan_reads_{"scan_reads", 0, 9};
    rtl::Reg<bool> bank_{"bank", false, 1};
    rtl::Reg<bool> parent2_phase_{"parent2_phase", false, 1};

    // -- datapath registers
    rtl::Reg<std::uint16_t> best_fit_{"best_fit", 0};
    rtl::Reg<std::uint16_t> best_ind_{"best_ind", 0};
    rtl::Reg<std::uint32_t> fit_sum_cur_{"fit_sum_cur", 0, 24};
    rtl::Reg<std::uint32_t> fit_sum_new_{"fit_sum_new", 0, 24};
    rtl::Reg<std::uint32_t> sel_thresh_{"sel_thresh", 0, 24};
    rtl::Reg<std::uint32_t> sel_cum_{"sel_cum", 0, 24};
    rtl::Reg<std::uint16_t> parent1_{"parent1", 0};
    rtl::Reg<std::uint16_t> parent2_{"parent2", 0};
    rtl::Reg<std::uint16_t> off1_{"off1", 0};
    rtl::Reg<std::uint16_t> off2_{"off2", 0};
    rtl::Reg<std::uint16_t> eval_cand_{"eval_cand", 0};
    rtl::Reg<std::uint16_t> fit_reg_{"fit_reg", 0};
    rtl::Reg<std::uint8_t> xo_cut_{"xo_cut", 0, 4};
    rtl::Reg<bool> xo_do_{"xo_do", false, 1};
    rtl::Reg<bool> start_d_{"start_d", false, 1};  // start_GA edge detector

    // -- telemetry op counters (simulator state, not flip-flops; see above)
    std::uint64_t rng_draws_ = 0;
    std::uint64_t crossovers_ = 0;
    std::uint64_t mutations_ = 0;

    rtl::ScanChain scan_;
};

}  // namespace gaip::core
