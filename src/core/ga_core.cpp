#include "core/ga_core.hpp"

#include "mem/ga_memory.hpp"
#include "util/bits.hpp"

namespace gaip::core {

using mem::bank_address;
using mem::member_candidate;
using mem::member_fitness;
using mem::pack_member;

GaCore::GaCore(std::string name, GaCorePorts ports, GaCoreConfig cfg)
    : Module(std::move(name)), p_(ports), cfg_(cfg) {
    attach_all(state_, ret_state_, ngens_lo_, ngens_hi_, pop_size_, xover_thresh_, mut_thresh_,
               eff_pop_, eff_ngens_, eff_xt_, eff_mt_, gen_id_, pop_idx_, new_idx_, scan_idx_,
               scan_reads_, bank_, parent2_phase_, best_fit_, best_ind_, fit_sum_cur_,
               fit_sum_new_, sel_thresh_, sel_cum_, parent1_, parent2_, off1_, off2_, eval_cand_,
               fit_reg_, xo_cut_, xo_do_, start_d_);
    scan_.add_all(registers());
    // Complete eval() sensitivity: every other input port is sampled in
    // tick() only (fitness/init/start/RNG buses), so the scheduler needs to
    // re-run eval() just for scan-mode entry and memory-read data.
    sense(p_.test, p_.mem_data_in);
}

void GaCore::reset_state() { rng_draws_ = crossovers_ = mutations_ = 0; }

GaParameters GaCore::programmed_parameters() const {
    GaParameters p;
    p.pop_size = pop_size_.read();
    p.n_gens = (static_cast<std::uint32_t>(ngens_hi_.read()) << 16) | ngens_lo_.read();
    p.xover_threshold = xover_thresh_.read();
    p.mut_threshold = mut_thresh_.read();
    p.seed = 0;  // the seed register lives in the RNG module
    return p;
}

GaParameters GaCore::effective_parameters() const {
    GaParameters p;
    p.pop_size = eff_pop_.read();
    p.n_gens = eff_ngens_.read();
    p.xover_threshold = eff_xt_.read();
    p.mut_threshold = eff_mt_.read();
    p.seed = 0;
    return p;
}

bool GaCore::use_external_fem() const {
    return ((cfg_.external_slot_mask >> (p_.fitfunc_select.read() & 0x7)) & 1u) != 0;
}

bool GaCore::fit_valid_sel() const {
    return use_external_fem() ? p_.fit_valid_ext.read() : p_.fit_valid.read();
}

std::uint16_t GaCore::fit_value_sel() const {
    return use_external_fem() ? p_.fit_value_ext.read() : p_.fit_value.read();
}

bool GaCore::selection_hit() const {
    // Valid in kSelCheck: the scanned member's word is on mem_data_in.
    const std::uint16_t fit = member_fitness(p_.mem_data_in.read());
    const std::uint32_t cum = sel_cum_.read() + fit;
    // Fallback: a population whose fitness sum is zero can never exceed the
    // threshold; bail out after two full wrap-around passes (the wrap is
    // what the dual-core slave relies on, see dual_core.hpp).
    const bool exhausted = scan_reads_.read() + 1u >= 2u * eff_pop_.read();
    return cum > sel_thresh_.read() || exhausted;
}

void GaCore::eval() {
    const State s = state_.read();

    if (p_.test.read()) {
        // Scan mode: the chain cycles through arbitrary intermediate
        // patterns, so every control output is gated inert — the standard
        // scan-insertion guard that protects memories and handshake
        // partners during shifting. Only scanout (and the benign candidate
        // bus) stay live.
        p_.data_ack.drive(false);
        p_.ga_done.drive(false);
        p_.fit_request.drive(false);
        p_.rn_next.drive(false);
        p_.mem_wr.drive(false);
        p_.mem_address.drive(0);
        p_.mem_data_out.drive(0);
        p_.sel_found.drive(false);
        p_.mon_gen_pulse.drive(false);
        p_.candidate.drive(best_ind_.read());
        p_.scanout.drive(scan_.tail());
        return;
    }

    p_.data_ack.drive(s == State::kInitAck);
    p_.ga_done.drive(s == State::kDone);
    p_.fit_request.drive(s == State::kEvalReq);
    p_.rn_next.drive(s == State::kIpRn || s == State::kSelRn || s == State::kXoRn ||
                     s == State::kMu1Rn || s == State::kMu2Rn);

    const bool evaluating = (s == State::kEvalReq || s == State::kEvalDrop);
    p_.candidate.drive(evaluating ? eval_cand_.read() : best_ind_.read());

    // Memory interface (Moore outputs of the controller).
    std::uint8_t addr = 0;
    std::uint32_t data = 0;
    bool wr = false;
    switch (s) {
        case State::kSelAddr:
        case State::kSelCheck:
            addr = bank_address(bank_.read(), scan_idx_.read());
            break;
        case State::kIpStore:
            addr = bank_address(bank_.read(), pop_idx_.read());
            data = pack_member(eval_cand_.read(), fit_reg_.read());
            wr = true;
            break;
        case State::kElite:
            addr = bank_address(!bank_.read(), 0);
            data = pack_member(best_ind_.read(), best_fit_.read());
            wr = true;
            break;
        case State::kStore1:
        case State::kStore2:
            addr = bank_address(!bank_.read(), new_idx_.read());
            data = pack_member(eval_cand_.read(), fit_reg_.read());
            wr = true;
            break;
        default:
            break;
    }
    p_.mem_address.drive(addr);
    p_.mem_data_out.drive(data);
    p_.mem_wr.drive(wr);

    // Scan chain: present the current chain tail.
    p_.scanout.drive(p_.test.read() ? scan_.tail() : false);

    // Dual-core synchronization: combinational "I select this member now".
    // Deliberately excludes sel_force_found so that two cross-coupled cores
    // do not form a combinational loop.
    p_.sel_found.drive(s == State::kSelCheck && selection_hit());

    // Monitor taps (ChipScope substitute).
    p_.mon_gen_pulse.drive(s == State::kGenCheck);
    p_.mon_gen_id.drive(gen_id_.read());
    p_.mon_best_fit.drive(best_fit_.read());
    p_.mon_best_ind.drive(best_ind_.read());
    p_.mon_fit_sum.drive(fit_sum_cur_.read());
    p_.mon_bank.drive(bank_.read());
    p_.mon_pop_size.drive(eff_pop_.read());
}

void GaCore::tick() {
    if (p_.test.read()) {
        // Scan mode freezes the controller and shifts the register chain.
        // Shifting writes registers through set_bits (no commit), so tell
        // the scheduler directly that our state — and thus scanout — moved.
        scan_.shift(p_.scanin.read());
        input_changed();
        return;
    }
    // start_GA edge detection. The detector only tracks the pin in the two
    // states that can consume a start (kIdle / kDone); otherwise a pulse
    // arriving while the core drains the init handshake would be absorbed
    // by the flip-flop and never trigger the run.
    const bool start_rising = p_.start_ga.read() && !start_d_.read();
    const State s = state_.read();
    if (s == State::kIdle || s == State::kDone) {
        start_d_.load(p_.start_ga.read());
    } else {
        start_d_.load(false);
    }

    switch (s) {
        case State::kIdle:
            if (p_.ga_load.read()) {
                state_.load(State::kInitWait);
            } else if (start_rising) {
                state_.load(State::kStart);
            }
            break;

        case State::kInitWait:
            tick_init_handshake();
            break;

        case State::kInitAck:
            if (!p_.data_valid.read()) {
                state_.load(p_.ga_load.read() ? State::kInitWait : State::kIdle);
            }
            break;

        default:
            tick_optimizer();
            break;
    }
}

void GaCore::tick_init_handshake() {
    if (!p_.ga_load.read()) {
        state_.load(State::kIdle);
        return;
    }
    if (!p_.data_valid.read()) return;

    const std::uint16_t v = p_.value.read();
    switch (static_cast<ParamIndex>(p_.index.read() & 0x7)) {
        case ParamIndex::kNumGensLo: ngens_lo_.load(v); break;
        case ParamIndex::kNumGensHi: ngens_hi_.load(v); break;
        // Clamp on the full 16-bit bus BEFORE narrowing to the 8-bit
        // register: programming 256 must clamp to 128 (Table IV's "< 256"
        // row), not wrap to 0 and end up at the minimum of 2.
        case ParamIndex::kPopSize: pop_size_.load(clamp_pop_size(v)); break;
        case ParamIndex::kCrossoverRate: xover_thresh_.load(static_cast<std::uint8_t>(v)); break;
        case ParamIndex::kMutationRate: mut_thresh_.load(static_cast<std::uint8_t>(v)); break;
        case ParamIndex::kRngSeed: break;  // captured by the RNG module
    }
    state_.load(State::kInitAck);
}

void GaCore::tick_optimizer() {
    const std::uint16_t rn = p_.rn.read();

    switch (state_.read()) {
        case State::kStart: {
            rng_draws_ = crossovers_ = mutations_ = 0;
            const GaParameters eff =
                resolve_parameters(p_.preset.read(), programmed_parameters());
            eff_pop_.load(eff.pop_size);
            eff_ngens_.load(eff.n_gens);
            eff_xt_.load(eff.xover_threshold);
            eff_mt_.load(eff.mut_threshold);
            gen_id_.load(0);
            pop_idx_.load(0);
            fit_sum_cur_.load(0);
            best_fit_.load(0);
            best_ind_.load(0);
            bank_.load(false);
            state_.load(State::kIpRn);
            break;
        }

        case State::kIpRn:
            ++rng_draws_;
            state_.load(State::kIpGen);
            break;

        case State::kIpGen:
            eval_cand_.load(rn);
            ret_state_.load(State::kIpStore);
            state_.load(State::kEvalReq);
            break;

        case State::kEvalReq:
            if (fit_valid_sel()) {
                fit_reg_.load(fit_value_sel());
                state_.load(State::kEvalDrop);
            }
            break;

        case State::kEvalDrop:
            if (!fit_valid_sel()) state_.load(ret_state_.read());
            break;

        case State::kIpStore: {
            fit_sum_cur_.load(fit_sum_cur_.read() + fit_reg_.read());
            if (fit_reg_.read() > best_fit_.read()) {
                best_fit_.load(fit_reg_.read());
                best_ind_.load(eval_cand_.read());
            }
            if (pop_idx_.read() + 1u < eff_pop_.read()) {
                pop_idx_.load(static_cast<std::uint8_t>(pop_idx_.read() + 1));
                state_.load(State::kIpRn);
            } else {
                pop_idx_.load(0);
                state_.load(State::kGenCheck);
            }
            break;
        }

        case State::kGenCheck:
            state_.load(gen_id_.read() >= eff_ngens_.read() ? State::kDone : State::kElite);
            break;

        case State::kElite:
            // The elite member is written to slot 0 of the new bank (memory
            // write driven combinationally this cycle); its fitness seeds
            // the new bank's fitness sum.
            fit_sum_new_.load(best_fit_.read());
            new_idx_.load(1);
            parent2_phase_.load(false);
            state_.load(State::kSelRn);
            break;

        case State::kSelRn:
            ++rng_draws_;
            state_.load(State::kSelThresh);
            break;

        case State::kSelThresh:
            sel_thresh_.load(static_cast<std::uint32_t>(
                (static_cast<std::uint64_t>(fit_sum_cur_.read()) * rn) >> 16));
            sel_cum_.load(0);
            scan_idx_.load(0);
            scan_reads_.load(0);
            state_.load(State::kSelAddr);
            break;

        case State::kSelAddr:
            state_.load(State::kSelCheck);
            break;

        case State::kSelCheck: {
            const std::uint32_t word = p_.mem_data_in.read();
            const bool hit = selection_hit() || p_.sel_force_found.read();
            if (hit) {
                if (!parent2_phase_.read()) {
                    parent1_.load(member_candidate(word));
                    parent2_phase_.load(true);
                    state_.load(State::kSelRn);
                } else {
                    parent2_.load(member_candidate(word));
                    parent2_phase_.load(false);
                    state_.load(State::kXoRn);
                }
            } else {
                sel_cum_.load(sel_cum_.read() + member_fitness(word));
                scan_idx_.load(scan_idx_.read() + 1u >= eff_pop_.read()
                                   ? std::uint8_t{0}
                                   : static_cast<std::uint8_t>(scan_idx_.read() + 1));
                scan_reads_.load(static_cast<std::uint16_t>(scan_reads_.read() + 1));
                state_.load(State::kSelAddr);
            }
            break;
        }

        case State::kXoRn:
            ++rng_draws_;
            state_.load(State::kXoDecide);
            break;

        case State::kXoDecide:
            xo_do_.load((rn & 0xF) < eff_xt_.read());
            xo_cut_.load(static_cast<std::uint8_t>((rn >> 4) & 0xF));
            state_.load(State::kXoApply);
            break;

        case State::kXoApply: {
            if (xo_do_.read()) {
                ++crossovers_;
                const std::uint16_t mask = util::crossover_mask(xo_cut_.read());
                const std::uint16_t p1 = parent1_.read();
                const std::uint16_t p2 = parent2_.read();
                off1_.load(static_cast<std::uint16_t>((p1 & mask) | (p2 & ~mask)));
                off2_.load(static_cast<std::uint16_t>((p2 & mask) | (p1 & ~mask)));
            } else {
                off1_.load(parent1_.read());
                off2_.load(parent2_.read());
            }
            state_.load(State::kMu1Rn);
            break;
        }

        case State::kMu1Rn:
            ++rng_draws_;
            state_.load(State::kMu1Apply);
            break;

        case State::kMu1Apply: {
            std::uint16_t o = off1_.read();
            if ((rn & 0xF) < eff_mt_.read()) {
                ++mutations_;
                o ^= static_cast<std::uint16_t>(1u << ((rn >> 4) & 0xF));
            }
            off1_.load(o);
            eval_cand_.load(o);
            ret_state_.load(State::kStore1);
            state_.load(State::kEvalReq);
            break;
        }

        case State::kStore1:
        case State::kStore2: {
            fit_sum_new_.load(fit_sum_new_.read() + fit_reg_.read());
            if (fit_reg_.read() > best_fit_.read()) {
                best_fit_.load(fit_reg_.read());
                best_ind_.load(eval_cand_.read());
            }
            const bool full = new_idx_.read() + 1u >= eff_pop_.read();
            new_idx_.load(static_cast<std::uint8_t>(new_idx_.read() + 1));
            if (full) {
                state_.load(State::kGenEnd);
            } else {
                state_.load(state_.read() == State::kStore1 ? State::kMu2Rn : State::kSelRn);
            }
            break;
        }

        case State::kMu2Rn:
            ++rng_draws_;
            state_.load(State::kMu2Apply);
            break;

        case State::kMu2Apply: {
            std::uint16_t o = off2_.read();
            if ((rn & 0xF) < eff_mt_.read()) {
                ++mutations_;
                o ^= static_cast<std::uint16_t>(1u << ((rn >> 4) & 0xF));
            }
            off2_.load(o);
            eval_cand_.load(o);
            ret_state_.load(State::kStore2);
            state_.load(State::kEvalReq);
            break;
        }

        case State::kGenEnd:
            bank_.load(!bank_.read());
            fit_sum_cur_.load(fit_sum_new_.read());
            gen_id_.load(gen_id_.read() + 1);
            state_.load(State::kGenCheck);
            break;

        case State::kDone:
            if (p_.ga_load.read()) {
                state_.load(State::kInitWait);
            } else if (p_.start_ga.read() && !start_d_.read()) {
                state_.load(State::kStart);
            }
            break;

        default:
            break;
    }
}

}  // namespace gaip::core
