#include "core/dual_behavioral.hpp"

#include <stdexcept>

#include "util/bits.hpp"

namespace gaip::core {

namespace {

struct DualMember {
    std::uint16_t hi = 0;
    std::uint16_t lo = 0;
    std::uint16_t fit = 0;
};

/// Per-half crossover decision: each core draws its own word and applies a
/// single-point crossover to its 16-bit halves independently.
void half_crossover(std::uint16_t rx, std::uint8_t threshold, std::uint16_t& a,
                    std::uint16_t& b) {
    if ((rx & 0xF) < threshold) std::tie(a, b) = crossover_pair(a, b, (rx >> 4) & 0xF);
}

std::uint16_t half_mutate(std::uint16_t rm, std::uint8_t threshold, std::uint16_t v) {
    if ((rm & 0xF) < threshold) v ^= static_cast<std::uint16_t>(1u << ((rm >> 4) & 0xF));
    return v;
}

std::size_t shared_select(const std::vector<DualMember>& pop, std::uint32_t fit_sum,
                          std::uint16_t r) {
    // Identical to the single-core proportionate scan, over the shared
    // fitness column, governed by the MSB core's random word.
    const std::uint32_t thresh =
        static_cast<std::uint32_t>((static_cast<std::uint64_t>(fit_sum) * r) >> 16);
    std::uint32_t cum = 0;
    std::size_t idx = 0;
    for (std::size_t reads = 0;; ++reads) {
        const std::uint16_t fit = pop[idx].fit;
        if (cum + fit > thresh || reads + 1 >= 2 * pop.size()) return idx;
        cum += fit;
        idx = (idx + 1) % pop.size();
    }
}

}  // namespace

DualBehavioralResult run_dual_behavioral(const DualGaConfig& cfg) {
    if (!cfg.fitness) throw std::invalid_argument("run_dual_behavioral: null fitness");
    const std::uint8_t pop_size = clamp_pop_size(cfg.pop_size);

    RngState rng_hi(cfg.seed_msb);
    RngState rng_lo(cfg.seed_lsb);
    DualBehavioralResult result;

    std::uint16_t best_hi = 0;
    std::uint16_t best_lo = 0;
    std::uint16_t best_fit = 0;
    auto offer = [&](std::uint16_t hi, std::uint16_t lo, std::uint16_t fit) {
        if (fit > best_fit) {
            best_fit = fit;
            best_hi = hi;
            best_lo = lo;
        }
    };
    auto eval = [&](std::uint16_t hi, std::uint16_t lo) {
        ++result.evaluations;
        return cfg.fitness((static_cast<std::uint32_t>(hi) << 16) | lo);
    };

    std::vector<DualMember> cur(pop_size);
    std::uint32_t fit_sum = 0;
    for (DualMember& m : cur) {
        m.hi = rng_hi.next16();
        m.lo = rng_lo.next16();
        m.fit = eval(m.hi, m.lo);
        fit_sum += m.fit;
        offer(m.hi, m.lo, m.fit);
    }

    std::vector<DualMember> next(pop_size);
    for (std::uint32_t gen = 0; gen < cfg.n_gens; ++gen) {
        next[0] = {best_hi, best_lo, best_fit};
        std::uint32_t sum_new = best_fit;
        std::size_t idx = 1;
        while (idx < pop_size) {
            // Selection: both cores draw threshold words (lockstep), the
            // MSB core's word decides; the LSB core is slaved via
            // scalingLogic_parSel.
            const std::uint16_t r1 = rng_hi.next16();
            (void)rng_lo.next16();
            const std::size_t i1 = shared_select(cur, fit_sum, r1);
            const std::uint16_t r2 = rng_hi.next16();
            (void)rng_lo.next16();
            const std::size_t i2 = shared_select(cur, fit_sum, r2);

            std::uint16_t o1h = cur[i1].hi, o2h = cur[i2].hi;
            std::uint16_t o1l = cur[i1].lo, o2l = cur[i2].lo;
            half_crossover(rng_hi.next16(), cfg.xover_threshold_msb & 0xF, o1h, o2h);
            half_crossover(rng_lo.next16(), cfg.xover_threshold_lsb & 0xF, o1l, o2l);

            o1h = half_mutate(rng_hi.next16(), cfg.mut_threshold_msb & 0xF, o1h);
            o1l = half_mutate(rng_lo.next16(), cfg.mut_threshold_lsb & 0xF, o1l);
            const std::uint16_t f1 = eval(o1h, o1l);
            next[idx] = {o1h, o1l, f1};
            sum_new += f1;
            offer(o1h, o1l, f1);
            ++idx;
            if (idx >= pop_size) break;

            o2h = half_mutate(rng_hi.next16(), cfg.mut_threshold_msb & 0xF, o2h);
            o2l = half_mutate(rng_lo.next16(), cfg.mut_threshold_lsb & 0xF, o2l);
            const std::uint16_t f2 = eval(o2h, o2l);
            next[idx] = {o2h, o2l, f2};
            sum_new += f2;
            offer(o2h, o2l, f2);
            ++idx;
        }
        cur.swap(next);
        fit_sum = sum_new;
    }

    result.best_candidate = (static_cast<std::uint32_t>(best_hi) << 16) | best_lo;
    result.best_fitness = best_fit;
    result.final_population.reserve(pop_size);
    for (const DualMember& m : cur) {
        result.final_population.emplace_back(
            (static_cast<std::uint32_t>(m.hi) << 16) | m.lo, m.fit);
    }
    return result;
}

}  // namespace gaip::core
