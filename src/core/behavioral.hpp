// Behavioral model of the GA core: the same algorithm the RTL FSM executes,
// without timing. This mirrors the paper's design flow, where a behavioral
// VHDL model was written first and the synthesized RT-level netlist was
// verified against it. Here the two models share the exact RNG-consumption
// order, so for identical parameters and seed the behavioral run and the
// RTL simulation produce bit-identical populations, statistics, and best
// individuals — the strongest cross-verification available to the tests.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/params.hpp"
#include "prng/rng_module.hpp"

namespace gaip::core {

/// One population member as stored in GA memory.
struct Member {
    std::uint16_t candidate = 0;
    std::uint16_t fitness = 0;

    friend bool operator==(const Member&, const Member&) = default;
};

/// Snapshot taken at each generation boundary (what the RTL monitor taps
/// export at the kGenCheck pulse). gen == 0 is the initial population.
struct GenerationStats {
    std::uint32_t gen = 0;
    std::uint16_t best_fit = 0;
    std::uint16_t best_ind = 0;
    std::uint32_t fit_sum = 0;
    std::vector<Member> population;

    double mean_fitness() const {
        if (population.empty()) return 0.0;
        return static_cast<double>(fit_sum) / static_cast<double>(population.size());
    }
};

struct RunResult {
    std::uint16_t best_candidate = 0;
    std::uint16_t best_fitness = 0;
    std::uint64_t evaluations = 0;
    std::vector<GenerationStats> history;  ///< one entry per generation, 0..n_gens
};

using FitnessFn = std::function<std::uint16_t(std::uint16_t)>;

/// Deterministic 16-bit generator state shared with the RTL RNG module.
class RngState {
public:
    explicit RngState(std::uint16_t seed, prng::RngKind kind = prng::RngKind::kCellularAutomaton)
        : state_(seed == 0 ? 1 : seed), kind_(kind) {}

    std::uint16_t next16() noexcept {
        state_ = prng::rng_step(kind_, state_);
        return state_;
    }

    std::uint16_t state() const noexcept { return state_; }

private:
    std::uint16_t state_;
    prng::RngKind kind_;
};

/// Proportionate (roulette) selection exactly as the core's scan implements
/// it: threshold = (fit_sum * r) >> 16, wrap-around scan, 2P-read fallback.
std::size_t proportionate_select(const std::vector<Member>& pop, std::uint32_t fit_sum,
                                 std::uint16_t r);

/// Single-point crossover via the bit-mask construction of Fig. 3.
std::pair<std::uint16_t, std::uint16_t> crossover_pair(std::uint16_t p1, std::uint16_t p2,
                                                       unsigned cut);

/// Resumable form of the behavioral model: the same algorithm, one
/// generation at a time, with the current population exposed between
/// steps. This is the software analog of parking the RTL core at the
/// kGenCheck boundary and poking GA memory through the simulator backdoor —
/// what the island interconnect does to apply migration. The semantics
/// mirror the hardware exactly:
///   * poke_member() rewrites a slot of the CURRENT population bank only;
///     the running fitness sum (`fit_sum`) is a register loaded at the
///     previous kGenEnd and stays STALE until the next generation completes
///     (the next selection threshold uses the pre-poke sum, while the scan
///     reads the poked fitness values — identical to the RTL timing);
///   * the best-ever tracker is a register too: a poked member enters it
///     only once an offspring evaluation beats it, never retroactively.
/// run_behavioral_ga() is a thin wrapper over this class; the
/// behavioral-vs-RTL equivalence tests pin both to the same bit pattern.
class BehavioralEngine {
public:
    BehavioralEngine(const GaParameters& params, FitnessFn fitness,
                     prng::RngKind rng_kind = prng::RngKind::kCellularAutomaton,
                     bool keep_populations = true, bool elitism = true);

    /// Resolved parameters actually run (preset 0 resolution applied).
    const GaParameters& params() const noexcept { return params_; }
    /// Completed generations so far (0 = initial population only).
    std::uint32_t generation() const noexcept { return gen_; }
    bool done() const noexcept { return gen_ >= params_.n_gens; }

    /// Evolve one generation (throws std::logic_error when done()).
    void step_generation();
    /// Evolve until `gen` generations have completed (no-op if past it).
    void run_to(std::uint32_t gen) {
        while (gen_ < gen && !done()) step_generation();
    }

    // --- inter-generation state access (the island migration backdoor) ---
    const std::vector<Member>& population() const noexcept { return cur_; }
    /// Overwrite one slot of the current bank. Leaves fit_sum() and the
    /// best-ever registers untouched (see class comment).
    void poke_member(std::size_t slot, Member m);
    /// The stale fitness-sum register the NEXT generation's selection uses.
    std::uint32_t fit_sum() const noexcept { return fit_sum_cur_; }

    std::uint16_t best_fitness() const noexcept { return best_fit_; }
    std::uint16_t best_candidate() const noexcept { return best_ind_; }
    std::uint64_t evaluations() const noexcept { return evaluations_; }
    const std::vector<GenerationStats>& history() const noexcept { return history_; }

    /// Assemble the RunResult a completed (or truncated) run delivers.
    RunResult result() const;

private:
    void offer_best(std::uint16_t candidate, std::uint16_t fitness) noexcept {
        if (fitness > best_fit_) {  // strict: first-seen wins ties, like the RTL
            best_fit_ = fitness;
            best_ind_ = candidate;
        }
    }
    void snapshot();

    GaParameters params_;
    FitnessFn fitness_;
    RngState rng_;
    bool keep_populations_;
    bool elitism_;

    std::vector<Member> cur_;
    std::vector<Member> next_;
    std::uint32_t fit_sum_cur_ = 0;
    std::uint32_t gen_ = 0;
    std::uint16_t best_fit_ = 0;
    std::uint16_t best_ind_ = 0;
    std::uint64_t evaluations_ = 0;
    std::vector<GenerationStats> history_;
};

/// Run the full optimization cycle. `keep_populations` controls whether the
/// per-generation history stores full population snapshots (needed by the
/// convergence-scatter benches) or only the scalar statistics. `elitism`
/// exists for the ablation bench only — the hardware core is always elitist
/// (its convergence guarantee rests on it, Rudolph [17]); disabling it here
/// quantifies what that design choice buys.
RunResult run_behavioral_ga(const GaParameters& params, const FitnessFn& fitness,
                            prng::RngKind rng_kind = prng::RngKind::kCellularAutomaton,
                            bool keep_populations = true, bool elitism = true);

}  // namespace gaip::core
