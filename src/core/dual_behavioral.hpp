// Behavioral model of the dual-core 32-bit composition (Fig. 6), bit-exact
// with DualGaSystem: two RNG streams, per-half crossover/mutation, the
// MSB core's proportionate selection governing both halves (the
// scalingLogic_parSel synchronization), shared fitness, and a coherent
// elite. Exists for the same reason the single-core behavioral model does —
// it is the executable specification the RTL composition is verified
// against (tests/system/test_dual_core.cpp).
#pragma once

#include <cstdint>
#include <vector>

#include "core/behavioral.hpp"
#include "core/dual_core.hpp"

namespace gaip::core {

struct DualBehavioralResult {
    std::uint32_t best_candidate = 0;
    std::uint16_t best_fitness = 0;
    std::uint64_t evaluations = 0;
    /// Final population (concatenated candidates with their fitness).
    std::vector<std::pair<std::uint32_t, std::uint16_t>> final_population;
};

/// Run the dual-core algorithm exactly as the lockstep RTL pair executes it.
DualBehavioralResult run_dual_behavioral(const DualGaConfig& cfg);

}  // namespace gaip::core
