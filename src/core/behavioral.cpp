#include "core/behavioral.hpp"

#include <stdexcept>

#include "util/bits.hpp"

namespace gaip::core {

std::size_t proportionate_select(const std::vector<Member>& pop, std::uint32_t fit_sum,
                                 std::uint16_t r) {
    if (pop.empty()) throw std::invalid_argument("proportionate_select: empty population");
    const std::uint32_t thresh =
        static_cast<std::uint32_t>((static_cast<std::uint64_t>(fit_sum) * r) >> 16);
    std::uint32_t cum = 0;
    std::size_t idx = 0;
    for (std::size_t reads = 0;; ++reads) {
        const std::uint16_t fit = pop[idx].fitness;
        if (cum + fit > thresh || reads + 1 >= 2 * pop.size()) return idx;
        cum += fit;
        idx = (idx + 1) % pop.size();
    }
}

std::pair<std::uint16_t, std::uint16_t> crossover_pair(std::uint16_t p1, std::uint16_t p2,
                                                       unsigned cut) {
    const std::uint16_t mask = util::crossover_mask(cut);
    const auto off1 = static_cast<std::uint16_t>((p1 & mask) | (p2 & ~mask));
    const auto off2 = static_cast<std::uint16_t>((p2 & mask) | (p1 & ~mask));
    return {off1, off2};
}

namespace {

struct BestTracker {
    std::uint16_t fit = 0;
    std::uint16_t ind = 0;

    void offer(std::uint16_t candidate, std::uint16_t fitness) noexcept {
        if (fitness > fit) {  // strict: first-seen wins ties, like the RTL
            fit = fitness;
            ind = candidate;
        }
    }
};

std::uint16_t mutate(std::uint16_t off, std::uint16_t rn, std::uint8_t mut_thresh) noexcept {
    if ((rn & 0xF) < mut_thresh) off ^= static_cast<std::uint16_t>(1u << ((rn >> 4) & 0xF));
    return off;
}

}  // namespace

RunResult run_behavioral_ga(const GaParameters& raw_params, const FitnessFn& fitness,
                            prng::RngKind rng_kind, bool keep_populations, bool elitism) {
    const GaParameters params = resolve_parameters(0, raw_params);
    RngState rng(params.seed, rng_kind);
    RunResult result;
    BestTracker best;

    // --- initial population ---
    std::vector<Member> cur(params.pop_size);
    std::uint32_t fit_sum_cur = 0;
    for (Member& m : cur) {
        m.candidate = rng.next16();
        m.fitness = fitness(m.candidate);
        ++result.evaluations;
        fit_sum_cur += m.fitness;
        best.offer(m.candidate, m.fitness);
    }

    auto snapshot = [&](std::uint32_t gen) {
        GenerationStats s;
        s.gen = gen;
        s.best_fit = best.fit;
        s.best_ind = best.ind;
        s.fit_sum = fit_sum_cur;
        if (keep_populations) s.population = cur;
        result.history.push_back(std::move(s));
    };
    snapshot(0);

    // --- generations ---
    std::vector<Member> next(params.pop_size);
    for (std::uint32_t gen = 0; gen < params.n_gens; ++gen) {
        std::uint32_t fit_sum_new = 0;
        std::size_t idx = 0;
        if (elitism) {
            // Elitism: the best-ever member occupies slot 0 of the new bank.
            next[0] = {best.ind, best.fit};
            fit_sum_new = best.fit;
            idx = 1;
        }

        while (idx < params.pop_size) {
            const std::uint16_t r1 = rng.next16();
            const std::size_t i1 = proportionate_select(cur, fit_sum_cur, r1);
            const std::uint16_t r2 = rng.next16();
            const std::size_t i2 = proportionate_select(cur, fit_sum_cur, r2);

            const std::uint16_t rx = rng.next16();
            std::uint16_t off1 = cur[i1].candidate;
            std::uint16_t off2 = cur[i2].candidate;
            if ((rx & 0xF) < params.xover_threshold) {
                std::tie(off1, off2) = crossover_pair(off1, off2, (rx >> 4) & 0xF);
            }

            off1 = mutate(off1, rng.next16(), params.mut_threshold);
            const std::uint16_t f1 = fitness(off1);
            ++result.evaluations;
            next[idx] = {off1, f1};
            fit_sum_new += f1;
            best.offer(off1, f1);
            ++idx;
            if (idx >= params.pop_size) break;  // second offspring dropped (core skips Mu2)

            off2 = mutate(off2, rng.next16(), params.mut_threshold);
            const std::uint16_t f2 = fitness(off2);
            ++result.evaluations;
            next[idx] = {off2, f2};
            fit_sum_new += f2;
            best.offer(off2, f2);
            ++idx;
        }

        cur.swap(next);
        fit_sum_cur = fit_sum_new;
        snapshot(gen + 1);
    }

    result.best_candidate = best.ind;
    result.best_fitness = best.fit;
    return result;
}

}  // namespace gaip::core
