#include "core/behavioral.hpp"

#include <stdexcept>
#include <utility>

#include "util/bits.hpp"

namespace gaip::core {

std::size_t proportionate_select(const std::vector<Member>& pop, std::uint32_t fit_sum,
                                 std::uint16_t r) {
    if (pop.empty()) throw std::invalid_argument("proportionate_select: empty population");
    const std::uint32_t thresh =
        static_cast<std::uint32_t>((static_cast<std::uint64_t>(fit_sum) * r) >> 16);
    std::uint32_t cum = 0;
    std::size_t idx = 0;
    for (std::size_t reads = 0;; ++reads) {
        const std::uint16_t fit = pop[idx].fitness;
        if (cum + fit > thresh || reads + 1 >= 2 * pop.size()) return idx;
        cum += fit;
        idx = (idx + 1) % pop.size();
    }
}

std::pair<std::uint16_t, std::uint16_t> crossover_pair(std::uint16_t p1, std::uint16_t p2,
                                                       unsigned cut) {
    const std::uint16_t mask = util::crossover_mask(cut);
    const auto off1 = static_cast<std::uint16_t>((p1 & mask) | (p2 & ~mask));
    const auto off2 = static_cast<std::uint16_t>((p2 & mask) | (p1 & ~mask));
    return {off1, off2};
}

namespace {

std::uint16_t mutate(std::uint16_t off, std::uint16_t rn, std::uint8_t mut_thresh) noexcept {
    if ((rn & 0xF) < mut_thresh) off ^= static_cast<std::uint16_t>(1u << ((rn >> 4) & 0xF));
    return off;
}

}  // namespace

BehavioralEngine::BehavioralEngine(const GaParameters& raw_params, FitnessFn fitness,
                                   prng::RngKind rng_kind, bool keep_populations, bool elitism)
    : params_(resolve_parameters(0, raw_params)),
      fitness_(std::move(fitness)),
      rng_(params_.seed, rng_kind),
      keep_populations_(keep_populations),
      elitism_(elitism) {
    // --- initial population ---
    cur_.resize(params_.pop_size);
    next_.resize(params_.pop_size);
    for (Member& m : cur_) {
        m.candidate = rng_.next16();
        m.fitness = fitness_(m.candidate);
        ++evaluations_;
        fit_sum_cur_ += m.fitness;
        offer_best(m.candidate, m.fitness);
    }
    snapshot();
}

void BehavioralEngine::snapshot() {
    GenerationStats s;
    s.gen = gen_;
    s.best_fit = best_fit_;
    s.best_ind = best_ind_;
    s.fit_sum = fit_sum_cur_;
    if (keep_populations_) s.population = cur_;
    history_.push_back(std::move(s));
}

void BehavioralEngine::poke_member(std::size_t slot, Member m) {
    if (slot >= cur_.size())
        throw std::invalid_argument("BehavioralEngine::poke_member: slot out of range");
    cur_[slot] = m;
}

void BehavioralEngine::step_generation() {
    if (done()) throw std::logic_error("BehavioralEngine: run already complete");

    std::uint32_t fit_sum_new = 0;
    std::size_t idx = 0;
    if (elitism_) {
        // Elitism: the best-ever member occupies slot 0 of the new bank.
        next_[0] = {best_ind_, best_fit_};
        fit_sum_new = best_fit_;
        idx = 1;
    }

    while (idx < params_.pop_size) {
        const std::uint16_t r1 = rng_.next16();
        const std::size_t i1 = proportionate_select(cur_, fit_sum_cur_, r1);
        const std::uint16_t r2 = rng_.next16();
        const std::size_t i2 = proportionate_select(cur_, fit_sum_cur_, r2);

        const std::uint16_t rx = rng_.next16();
        std::uint16_t off1 = cur_[i1].candidate;
        std::uint16_t off2 = cur_[i2].candidate;
        if ((rx & 0xF) < params_.xover_threshold) {
            std::tie(off1, off2) = crossover_pair(off1, off2, (rx >> 4) & 0xF);
        }

        off1 = mutate(off1, rng_.next16(), params_.mut_threshold);
        const std::uint16_t f1 = fitness_(off1);
        ++evaluations_;
        next_[idx] = {off1, f1};
        fit_sum_new += f1;
        offer_best(off1, f1);
        ++idx;
        if (idx >= params_.pop_size) break;  // second offspring dropped (core skips Mu2)

        off2 = mutate(off2, rng_.next16(), params_.mut_threshold);
        const std::uint16_t f2 = fitness_(off2);
        ++evaluations_;
        next_[idx] = {off2, f2};
        fit_sum_new += f2;
        offer_best(off2, f2);
        ++idx;
    }

    cur_.swap(next_);
    fit_sum_cur_ = fit_sum_new;
    ++gen_;
    snapshot();
}

RunResult BehavioralEngine::result() const {
    RunResult r;
    r.best_candidate = best_ind_;
    r.best_fitness = best_fit_;
    r.evaluations = evaluations_;
    r.history = history_;
    return r;
}

RunResult run_behavioral_ga(const GaParameters& raw_params, const FitnessFn& fitness,
                            prng::RngKind rng_kind, bool keep_populations, bool elitism) {
    BehavioralEngine eng(raw_params, fitness, rng_kind, keep_populations, elitism);
    while (!eng.done()) eng.step_generation();
    RunResult result = eng.result();
    return result;
}

}  // namespace gaip::core
