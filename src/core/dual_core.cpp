#include "core/dual_core.hpp"

#include <cmath>
#include <stdexcept>

#include "mem/ga_memory.hpp"
#include "system/dcm.hpp"

namespace gaip::core {

std::uint8_t split_threshold_for_rate32(double target_rate32) noexcept {
    if (target_rate32 <= 0.0) return 0;
    if (target_rate32 >= 1.0) return 15;
    // Equal per-half rates p with p + p - p^2 == target  =>  p = 1 - sqrt(1-t)
    const double p = 1.0 - std::sqrt(1.0 - target_rate32);
    const double t = std::floor(p * 16.0);
    return static_cast<std::uint8_t>(t < 0 ? 0 : (t > 15 ? 15 : t));
}

// ---------------------------------------------------------------- memory --

DualGaMemory::DualGaMemory(Ports ports)
    : Module("dual_ga_memory"), p_(ports), mem_(mem::kGaMemoryDepth, 0) {
    attach(dout_reg_);
}

void DualGaMemory::eval() {
    const std::uint64_t w = dout_reg_.read();
    const auto fit = static_cast<std::uint16_t>((w >> 32) & 0xFFFF);
    const auto msb = static_cast<std::uint16_t>((w >> 16) & 0xFFFF);
    const auto lsb = static_cast<std::uint16_t>(w & 0xFFFF);
    p_.dout1.drive(mem::pack_member(msb, fit));
    // scalingLogic_parSel read path: the LSB core always sees zero fitness,
    // so its selection scan can never terminate on its own.
    p_.dout2.drive(mem::pack_member(lsb, 0));
}

void DualGaMemory::tick() {
    const std::size_t a = p_.addr.read();
    if (p_.write.read()) {
        const std::uint32_t d1 = p_.data1.read();
        const std::uint32_t d2 = p_.data2.read();
        const std::uint64_t word = (static_cast<std::uint64_t>(d1 >> 16) << 32) |
                                   (static_cast<std::uint64_t>(d1 & 0xFFFF) << 16) |
                                   (d2 & 0xFFFF);
        mem_.at(a) = word;
        dout_reg_.load(word);
    } else {
        dout_reg_.load(mem_.at(a));
    }
}

void DualGaMemory::reset_state() { std::fill(mem_.begin(), mem_.end(), 0); }

std::uint32_t DualGaMemory::candidate32_at(bool bank, std::uint8_t idx) const {
    const std::uint64_t w = mem_.at(mem::bank_address(bank, idx));
    return static_cast<std::uint32_t>(w & 0xFFFFFFFFu);
}

std::uint16_t DualGaMemory::fitness_at(bool bank, std::uint8_t idx) const {
    return static_cast<std::uint16_t>((mem_.at(mem::bank_address(bank, idx)) >> 32) & 0xFFFF);
}

// ----------------------------------------------------------------- fem32 --

Fem32::Fem32(Ports ports, FitnessFn32 fn) : Module("fem32"), p_(ports), fn_(std::move(fn)) {
    if (!fn_) throw std::invalid_argument("Fem32: null fitness function");
    attach_all(state_, cand_, value_);
}

void Fem32::eval() {
    const State s = state_.read();
    const bool valid = (s == State::kPresent || s == State::kWaitDrop);
    p_.fit_valid1.drive(valid);
    p_.fit_valid2.drive(valid);
    p_.fit_value1.drive(value_.read());
    p_.fit_value2.drive(value_.read());
}

void Fem32::tick() {
    switch (state_.read()) {
        case State::kIdle:
            if (p_.fit_request.read()) {
                cand_.load((static_cast<std::uint32_t>(p_.cand_msb.read()) << 16) |
                           p_.cand_lsb.read());
                state_.load(State::kLookup);
            }
            break;
        case State::kLookup:
            value_.load(fn_(cand_.read()));
            state_.load(State::kPresent);
            break;
        case State::kPresent:
            ++evaluations_;
            state_.load(State::kWaitDrop);
            break;
        case State::kWaitDrop:
            if (!p_.fit_request.read()) state_.load(State::kIdle);
            break;
    }
}

// ---------------------------------------------------------------- system --

DualGaSystem::DualGaSystem(DualGaConfig cfg) : cfg_(std::move(cfg)) {
    if (!cfg_.fitness) throw std::invalid_argument("DualGaSystem: fitness function required");

    const system::ClockTree clocks = system::make_clock_tree(kernel_);
    ga_clk_ = &clocks.ga_clk;
    app_clk_ = &clocks.app_clk;

    // Slot 0 internal on both cores (the Fem32 answers on the internal pair).
    const GaCoreConfig core_cfg{.external_slot_mask = 0x00};
    core1_ = std::make_unique<GaCore>("ga_core_msb", w1_.core_ports(), core_cfg);
    core2_ = std::make_unique<GaCore>("ga_core_lsb", w2_.core_ports(), core_cfg);
    rng1_ = std::make_unique<prng::RngModule>(w1_.rng_ports());
    rng2_ = std::make_unique<prng::RngModule>(w2_.rng_ports());

    memory_ = std::make_unique<DualGaMemory>(DualGaMemory::Ports{
        w1_.mem_address, w1_.mem_wr, w1_.mem_data_out, w2_.mem_data_out, w1_.mem_data_in,
        w2_.mem_data_in});

    glue_ = std::make_unique<DualGlue>(DualGlue::Ports{w1_.start_ga, w2_.start_ga, w1_.sel_found,
                                                       w2_.sel_force_found, init_done1_,
                                                       init_done2_, init_done_both_});

    fem_ = std::make_unique<Fem32>(
        Fem32::Ports{w1_.fit_request, w1_.candidate, w2_.candidate, w1_.fit_value, w1_.fit_valid,
                     w2_.fit_value, w2_.fit_valid},
        cfg_.fitness);

    init1_ = std::make_unique<system::InitModule>(system::InitModulePorts{
        w1_.ga_load, w1_.index, w1_.value, w1_.data_valid, w1_.data_ack, init_done1_});
    init1_->program_parameters(GaParameters{.pop_size = cfg_.pop_size, .n_gens = cfg_.n_gens,
                                            .xover_threshold = cfg_.xover_threshold_msb,
                                            .mut_threshold = cfg_.mut_threshold_msb,
                                            .seed = cfg_.seed_msb});
    init2_ = std::make_unique<system::InitModule>(system::InitModulePorts{
        w2_.ga_load, w2_.index, w2_.value, w2_.data_valid, w2_.data_ack, init_done2_});
    init2_->program_parameters(GaParameters{.pop_size = cfg_.pop_size, .n_gens = cfg_.n_gens,
                                            .xover_threshold = cfg_.xover_threshold_lsb,
                                            .mut_threshold = cfg_.mut_threshold_lsb,
                                            .seed = cfg_.seed_lsb});

    app_ = std::make_unique<system::AppModule>(system::AppModulePorts{
        init_done_both_, w1_.start_ga, w1_.ga_done, w1_.candidate, app_done_});

    kernel_.bind(*core1_, *ga_clk_);
    kernel_.bind(*core2_, *ga_clk_);
    kernel_.bind(*rng1_, *ga_clk_);
    kernel_.bind(*rng2_, *ga_clk_);
    kernel_.bind(*memory_, *ga_clk_);
    kernel_.bind(*fem_, *app_clk_);
    kernel_.bind(*init1_, *app_clk_);
    kernel_.bind(*init2_, *app_clk_);
    kernel_.bind(*app_, *app_clk_);
    kernel_.add_combinational(*glue_);
}

DualRunResult DualGaSystem::run() {
    kernel_.reset();

    const std::uint64_t evals =
        static_cast<std::uint64_t>(cfg_.pop_size) * (static_cast<std::uint64_t>(cfg_.n_gens) + 1);
    const std::uint64_t max_app_edges = (evals * (64ull + 8ull * cfg_.pop_size) + 100'000) * 4;

    std::uint64_t start_edge = 0;
    bool start_seen = false;
    std::uint64_t done_edge = 0;
    bool done_seen = false;

    const bool finished = kernel_.run_until(
        *app_clk_,
        [&] {
            if (!start_seen && w1_.start_ga.read()) {
                start_seen = true;
                start_edge = ga_clk_->edges();
            }
            if (start_seen && !done_seen && w1_.ga_done.read()) {
                done_seen = true;
                done_edge = ga_clk_->edges();
            }
            return app_done_.read();
        },
        max_app_edges);
    if (!finished)
        throw std::runtime_error("DualGaSystem::run: did not complete within cycle bound");

    DualRunResult r;
    r.best_candidate = (static_cast<std::uint32_t>(core1_->best_candidate()) << 16) |
                       core2_->best_candidate();
    r.best_fitness = core1_->best_fitness();
    r.evaluations = fem_->evaluations();
    r.ga_cycles = done_seen ? done_edge - start_edge : 0;
    return r;
}

}  // namespace gaip::core
