// Wide-chromosome GA — the paper's Sec. III-D option (a): "the most
// efficient method of obtaining a GA core that supports chromosome lengths
// of more than 16-bits is to modify the behavioral description ... and
// resynthesize the entire netlist". This is that modified behavioral
// description: the identical elitist cycle generalized to a configurable
// chromosome width (up to 64 bits), with
//   * initial chromosomes assembled from ceil(W/16) RNG words,
//   * a single crossover cut uniform over the full width (a true
//     single-point operator, unlike the dual-core composition's 3-point),
//   * single-bit mutation over the full width.
// bench_dualcore_vs_resynth compares this "resynthesized" engine against
// the two-core composition of Fig. 6 at equal budget, quantifying the
// paper's claim that resynthesis is the more efficient route.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/behavioral.hpp"

namespace gaip::core {

struct WideGaParameters {
    unsigned chrom_bits = 32;          ///< chromosome width, 1..64
    std::uint8_t pop_size = 32;
    std::uint32_t n_gens = 32;
    std::uint8_t xover_threshold = 10; ///< rate = t/16, as in the core
    std::uint8_t mut_threshold = 1;
    std::uint16_t seed = 1;
};

using FitnessFnWide = std::function<std::uint16_t(std::uint64_t)>;

struct WideMember {
    std::uint64_t candidate = 0;
    std::uint16_t fitness = 0;
};

struct WideRunResult {
    std::uint64_t best_candidate = 0;
    std::uint16_t best_fitness = 0;
    std::uint64_t evaluations = 0;
    std::vector<std::uint16_t> best_per_generation;  ///< index 0 = initial pop
};

WideRunResult run_wide_ga(const WideGaParameters& params, const FitnessFnWide& fitness,
                          prng::RngKind rng_kind = prng::RngKind::kCellularAutomaton);

/// Wide crossover helper (exposed for tests): single cut in [0, bits).
std::pair<std::uint64_t, std::uint64_t> crossover_pair_wide(std::uint64_t p1, std::uint64_t p2,
                                                            unsigned cut, unsigned bits);

}  // namespace gaip::core
