// Comparator PRNGs for the RNG-quality ablation (Sec. II-C of the paper
// discusses how RNG quality and seed choice affect GA performance; the
// bench_ablation_rng binary swaps these generators into the GA).
#pragma once

#include <cstdint>

namespace gaip::prng {

/// 16-bit Fibonacci LFSR with taps 16,15,13,4 (primitive polynomial
/// x^16 + x^15 + x^13 + x^4 + 1), period 2^16 - 1. This is the classic
/// "LSHR" generator used by Tommiska & Vuori [6].
class Lfsr16 {
public:
    explicit Lfsr16(std::uint16_t seed = 1) noexcept : state_(seed == 0 ? 1 : seed) {}

    void seed(std::uint16_t s) noexcept { state_ = (s == 0) ? 1 : s; }
    std::uint16_t state() const noexcept { return state_; }

    std::uint16_t next16() noexcept {
        // One full 16-bit refresh = 16 single-bit shifts, as a hardware LFSR
        // clocked 16x per use would produce.
        for (int i = 0; i < 16; ++i) {
            const std::uint16_t bit = static_cast<std::uint16_t>(
                ((state_ >> 15) ^ (state_ >> 14) ^ (state_ >> 12) ^ (state_ >> 3)) & 1u);
            state_ = static_cast<std::uint16_t>((state_ << 1) | bit);
        }
        if (state_ == 0) state_ = 1;
        return state_;
    }

    using result_type = std::uint16_t;
    static constexpr result_type min() noexcept { return 0; }
    static constexpr result_type max() noexcept { return 0xFFFF; }
    result_type operator()() noexcept { return next16(); }

private:
    std::uint16_t state_;
};

/// Deliberately poor generator: a 16-bit LCG with the low bits' short cycles
/// exposed (returns the raw state). Serves as the "bad PRNG" pole of the
/// quality ablation, in the spirit of Meysenburg & Foster's comparisons.
class WeakLcg16 {
public:
    explicit WeakLcg16(std::uint16_t seed = 1) noexcept : state_(seed) {}

    void seed(std::uint16_t s) noexcept { state_ = s; }
    std::uint16_t state() const noexcept { return state_; }

    std::uint16_t next16() noexcept {
        state_ = static_cast<std::uint16_t>(state_ * 25173u + 13849u);
        return state_;
    }

    using result_type = std::uint16_t;
    static constexpr result_type min() noexcept { return 0; }
    static constexpr result_type max() noexcept { return 0xFFFF; }
    result_type operator()() noexcept { return next16(); }

private:
    std::uint16_t state_;
};

/// xorshift-based 16-bit generator (good statistical quality for its size);
/// the "software-grade" pole of the quality ablation.
class XorShift16 {
public:
    explicit XorShift16(std::uint16_t seed = 1) noexcept : state_(seed == 0 ? 1 : seed) {}

    void seed(std::uint16_t s) noexcept { state_ = (s == 0) ? 1 : s; }
    std::uint16_t state() const noexcept { return state_; }

    std::uint16_t next16() noexcept {
        std::uint16_t x = state_;
        x ^= static_cast<std::uint16_t>(x << 7);
        x ^= static_cast<std::uint16_t>(x >> 9);
        x ^= static_cast<std::uint16_t>(x << 8);
        state_ = x;
        return state_;
    }

    using result_type = std::uint16_t;
    static constexpr result_type min() noexcept { return 0; }
    static constexpr result_type max() noexcept { return 0xFFFF; }
    result_type operator()() noexcept { return next16(); }

private:
    std::uint16_t state_;
};

}  // namespace gaip::prng
