// Statistical quality metrics for 16-bit generators, used by the PRNG unit
// tests and the RNG-quality ablation bench (Sec. II-C of the paper reviews
// how RNG quality and seeding interact with GA performance).
#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace gaip::prng {

/// Type-erased step function: returns the next 16-bit output.
using StepFn = std::function<std::uint16_t()>;

struct QualityReport {
    std::uint64_t period = 0;          ///< cycle length from the given start state
    double chi_square_nibbles = 0.0;   ///< low-nibble uniformity (15 dof)
    double chi_square_bytes = 0.0;     ///< low-byte uniformity (255 dof)
    double serial_correlation = 0.0;   ///< lag-1 correlation of full words
    double bit_balance = 0.0;          ///< mean fraction of set bits (ideal 0.5)
};

/// Measure the period of `step` starting from `first` (the value returned by
/// the first call). Capped at `limit` steps; returns `limit` if no cycle was
/// found within the cap.
std::uint64_t measure_period(const StepFn& step, std::uint16_t first, std::uint64_t limit = 1u << 20);

/// Compute all quality metrics over `samples` outputs of `step`.
QualityReport measure_quality(const StepFn& step, std::uint64_t samples = 65535);

}  // namespace gaip::prng
