#include "prng/rng_module.hpp"

namespace gaip::prng {

namespace {
/// Parameter index of the RNG seed on the init bus (Table III).
constexpr std::uint8_t kSeedIndex = 5;
}  // namespace

std::uint16_t rng_step(RngKind kind, std::uint16_t state) noexcept {
    switch (kind) {
        case RngKind::kCellularAutomaton: {
            CaPrng g(state);
            return g.next16();
        }
        case RngKind::kLfsr: {
            Lfsr16 g(state);
            return g.next16();
        }
        case RngKind::kWeakLcg: {
            WeakLcg16 g(state);
            return g.next16();
        }
        case RngKind::kXorShift: {
            XorShift16 g(state);
            return g.next16();
        }
    }
    return state;
}

RngModule::RngModule(RngModulePorts ports, RngKind kind)
    : Module("rng_module"), p_(ports), kind_(kind) {
    attach_all(seed_reg_, state_, start_d_);
    sense();  // eval() reads the state register only; the buses are tick inputs
}

std::uint16_t RngModule::effective_seed(std::uint8_t preset, std::uint16_t user_seed) noexcept {
    const std::uint8_t mode = preset & 0x3;
    if (mode == 0) return user_seed == 0 ? kPresetSeeds[0] : user_seed;
    return kPresetSeeds[mode - 1];
}

void RngModule::eval() {
    p_.rn.drive(state_.read());
}

void RngModule::tick() {
    const bool start_rising = p_.start.read() && !start_d_.read();
    start_d_.load(p_.start.read());

    if (p_.ga_load.read() && p_.data_valid.read() && (p_.index.read() & 0x7) == kSeedIndex) {
        const std::uint16_t v = p_.value.read();
        seed_reg_.load(v == 0 ? 1 : v);  // 0 is the CA fixed point; remap
        return;
    }
    if (start_rising) {
        state_.load(effective_seed(p_.preset.read(), seed_reg_.read()));
        return;
    }
    if (p_.rn_next.read()) {
        state_.load(rng_step(kind_, state_.read()));
    }
}

}  // namespace gaip::prng
