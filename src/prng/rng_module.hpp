// RTL model of the RNG module (Fig. 4 of the paper: the RNG receives the
// initialization `value` bus — signal 5 — and drives the `rn` bus — signal
// 22 — into the GA core).
//
// Seed sources:
//  * user seed: captured from the init bus when the parameter with index 5
//    (Table III) is written during the initialization handshake;
//  * preset seeds: three built-in constants selected by the 2-bit `preset`
//    input (modes 01/10/11 of Table IV). Mode 00 uses the user seed.
// The chosen seed is loaded into the CA state when `start` is asserted, and
// the automaton advances by one step whenever the core asserts `rn_next`.
//
// Note on `rn_next`: the paper only says "the GA core reads the output
// register of the RNG module when it needs a random number". We advance the
// generator per consumption (one explicit enable from the core) instead of
// free-running it; this makes the RTL core bit-exact with the behavioral
// model — the same cross-verification the authors performed between their
// behavioral and RT-level netlists — without changing any GA semantics.
#pragma once

#include <array>
#include <cstdint>

#include "prng/ca_prng.hpp"
#include "prng/lfsr.hpp"
#include "rtl/module.hpp"

namespace gaip::prng {

/// Seeds used by the three preset modes (chosen from the seed set the paper
/// exercises in its hardware experiments, Tables VII-IX).
inline constexpr std::array<std::uint16_t, 3> kPresetSeeds = {0x2961, 0x061F, 0xB342};

/// Which generator the module instantiates (CA is the paper's choice; the
/// others exist for the RNG-quality ablation bench).
enum class RngKind : std::uint8_t { kCellularAutomaton, kLfsr, kWeakLcg, kXorShift };

/// Advance `state` one step of the selected generator kind.
std::uint16_t rng_step(RngKind kind, std::uint16_t state) noexcept;

struct RngModulePorts {
    rtl::Wire<bool>& ga_load;      // init mode active
    rtl::Wire<std::uint8_t>& index;    // parameter index (3 bits)
    rtl::Wire<std::uint16_t>& value;   // init value bus
    rtl::Wire<bool>& data_valid;   // init handshake
    rtl::Wire<std::uint8_t>& preset;   // preset mode selector (2 bits)
    rtl::Wire<bool>& start;        // start_GA: (re)load the seed
    rtl::Wire<bool>& rn_next;      // advance enable from the core
    rtl::Wire<std::uint16_t>& rn;      // random number output (signal 22)
};

class RngModule final : public rtl::Module {
public:
    RngModule(RngModulePorts ports, RngKind kind = RngKind::kCellularAutomaton);

    void eval() override;
    void tick() override;

    std::uint16_t seed_register() const noexcept { return seed_reg_.read(); }
    std::uint16_t current_state() const noexcept { return state_.read(); }

    /// Seed the selected mode would load (resolution of user vs preset).
    static std::uint16_t effective_seed(std::uint8_t preset, std::uint16_t user_seed) noexcept;

private:
    RngModulePorts p_;
    RngKind kind_;
    rtl::Reg<std::uint16_t> seed_reg_{"rng_seed_reg", 1};
    rtl::Reg<std::uint16_t> state_{"rng_state", 1};
    rtl::Reg<bool> start_d_{"rng_start_d", false, 1};  // start edge detector
};

}  // namespace gaip::prng
