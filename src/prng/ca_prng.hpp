// 16-cell hybrid rule-90/150 cellular-automaton PRNG.
//
// This is the generator the GA core uses, following Scott et al. [5] (the
// construction is due to Hortensius et al.): a one-dimensional, null-
// boundary CA where each cell applies either rule 90 (next = left XOR right)
// or rule 150 (next = left XOR self XOR right). For a suitable rule
// assignment the transition matrix over GF(2) has a primitive characteristic
// polynomial, so the state sequence visits all 2^16 - 1 nonzero states
// before repeating — the maximal period attainable by a linear generator of
// this width.
//
// The rule vector used here (kRule150Mask) was found by exhaustive search
// over all 2^16 hybrid assignments and is verified to be maximal-period by a
// unit test. The all-zero state is the lone fixed point; seed 0 is remapped
// by the RNG module (see rng_module.hpp).
#pragma once

#include <cstdint>

namespace gaip::prng {

/// Bit i set => cell i runs rule 150; clear => rule 90.
inline constexpr std::uint16_t kRule150Mask = 0x003C;

/// One CA step for an arbitrary 16-bit rule assignment (null boundary:
/// cells beyond the edges read as 0).
constexpr std::uint16_t ca_step(std::uint16_t state, std::uint16_t rule150_mask) noexcept {
    const std::uint16_t left = static_cast<std::uint16_t>(state >> 1);
    const std::uint16_t right = static_cast<std::uint16_t>(state << 1);
    return static_cast<std::uint16_t>(left ^ right ^ (state & rule150_mask));
}

/// The CA PRNG proper. next16() advances the automaton one step and returns
/// the new state — this mirrors the hardware, where the CA register is the
/// RNG output register.
class CaPrng {
public:
    explicit CaPrng(std::uint16_t seed = 1, std::uint16_t rule150_mask = kRule150Mask) noexcept
        : state_(seed == 0 ? 1 : seed), rule_(rule150_mask) {}

    void seed(std::uint16_t s) noexcept { state_ = (s == 0) ? 1 : s; }

    std::uint16_t state() const noexcept { return state_; }

    std::uint16_t next16() noexcept {
        state_ = ca_step(state_, rule_);
        return state_;
    }

    /// Low nibble of a fresh state — the 4-bit random the core compares
    /// against the crossover / mutation thresholds.
    std::uint8_t next4() noexcept { return static_cast<std::uint8_t>(next16() & 0xF); }

    // UniformRandomBitGenerator interface so standard facilities accept it.
    using result_type = std::uint16_t;
    static constexpr result_type min() noexcept { return 0; }
    static constexpr result_type max() noexcept { return 0xFFFF; }
    result_type operator()() noexcept { return next16(); }

private:
    std::uint16_t state_;
    std::uint16_t rule_;
};

}  // namespace gaip::prng
