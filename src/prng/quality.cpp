#include "prng/quality.hpp"

#include <array>
#include <bit>
#include <vector>

#include "util/stats.hpp"

namespace gaip::prng {

std::uint64_t measure_period(const StepFn& step, std::uint16_t first, std::uint64_t limit) {
    std::uint64_t n = 1;
    while (n < limit) {
        if (step() == first) return n;
        ++n;
    }
    return limit;
}

QualityReport measure_quality(const StepFn& step, std::uint64_t samples) {
    QualityReport r;

    std::array<std::size_t, 16> nibble_buckets{};
    std::array<std::size_t, 256> byte_buckets{};
    std::vector<std::uint16_t> seq;
    seq.reserve(samples);
    std::uint64_t set_bits = 0;

    const std::uint16_t first = step();
    seq.push_back(first);
    nibble_buckets[first & 0xF]++;
    byte_buckets[first & 0xFF]++;
    set_bits += static_cast<std::uint64_t>(std::popcount(first));
    bool cycled = false;

    for (std::uint64_t i = 1; i < samples; ++i) {
        const std::uint16_t v = step();
        if (!cycled && v == first) {
            r.period = i;
            cycled = true;
        }
        seq.push_back(v);
        nibble_buckets[v & 0xF]++;
        byte_buckets[v & 0xFF]++;
        set_bits += static_cast<std::uint64_t>(std::popcount(v));
    }
    if (!cycled) r.period = samples;

    r.chi_square_nibbles = util::chi_square_uniform(
        std::span<const std::size_t>(nibble_buckets.data(), nibble_buckets.size()), samples);
    r.chi_square_bytes = util::chi_square_uniform(
        std::span<const std::size_t>(byte_buckets.data(), byte_buckets.size()), samples);
    r.serial_correlation = util::serial_correlation(std::span<const std::uint16_t>(seq));
    r.bit_balance = static_cast<double>(set_bits) / (16.0 * static_cast<double>(samples));
    return r;
}

}  // namespace gaip::prng
