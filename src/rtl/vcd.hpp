// Minimal VCD (value change dump) writer tracing every attached register of
// selected modules. Substitutes for the waveform visibility the authors had
// via NC-Verilog / ModelSim / ChipScope: dumps load in GTKWave.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "rtl/clock.hpp"
#include "rtl/module.hpp"

namespace gaip::rtl {

class VcdWriter {
public:
    /// Opens `path` for writing; throws std::runtime_error on failure.
    explicit VcdWriter(const std::string& path);

    /// Trace all registers of `m` under a scope named after the module.
    void add_module(const Module& m);

    /// Emit the header; must be called once, after all add_module calls and
    /// before the first sample.
    void write_header();

    /// Sample all traced registers at time `t`; emits only changed values.
    void sample(SimTime t);

    bool header_written() const noexcept { return header_written_; }

private:
    struct Entry {
        const RegBase* reg;
        std::string id;       // VCD short identifier
        std::string scope;    // module name
        std::uint64_t last = ~std::uint64_t{0};
        bool first = true;
    };

    static std::string make_id(std::size_t n);
    void emit(const Entry& e, std::uint64_t value);

    std::ofstream out_;
    std::vector<Entry> entries_;
    bool header_written_ = false;
    SimTime last_time_ = ~SimTime{0};
};

}  // namespace gaip::rtl
