// Clock definition for the multi-domain simulation kernel.
//
// The paper's system runs the GA module at 50 MHz and the initialization /
// application modules at 200 MHz, both derived from the board's 100 MHz
// oscillator by a DCM. The kernel schedules rising edges of every clock on
// a shared picosecond timeline, so four-phase handshakes between the domains
// are exercised with real relative timing.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace gaip::rtl {

/// Simulation time in picoseconds.
using SimTime = std::uint64_t;

class Clock {
public:
    Clock(std::string name, std::uint64_t freq_hz, SimTime phase_ps = 0)
        : name_(std::move(name)), freq_hz_(freq_hz), phase_ps_(phase_ps) {
        if (freq_hz == 0) throw std::invalid_argument("clock frequency must be nonzero");
        period_ps_ = 1'000'000'000'000ull / freq_hz;
        if (period_ps_ == 0) throw std::invalid_argument("clock frequency too high to model");
        next_edge_ = phase_ps_;
    }

    const std::string& name() const noexcept { return name_; }
    std::uint64_t freq_hz() const noexcept { return freq_hz_; }
    SimTime period_ps() const noexcept { return period_ps_; }

    /// Time of the next rising edge not yet processed.
    SimTime next_edge() const noexcept { return next_edge_; }

    /// Number of rising edges processed so far.
    std::uint64_t edges() const noexcept { return edges_; }

    /// Called by the kernel after processing the edge at next_edge().
    void advance() noexcept {
        next_edge_ += period_ps_;
        ++edges_;
    }

    void restart() noexcept {
        next_edge_ = phase_ps_;
        edges_ = 0;
    }

private:
    std::string name_;
    std::uint64_t freq_hz_;
    SimTime phase_ps_;
    SimTime period_ps_ = 0;
    SimTime next_edge_ = 0;
    std::uint64_t edges_ = 0;
};

}  // namespace gaip::rtl
