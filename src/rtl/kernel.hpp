// The cycle-level simulation kernel.
//
// Execution model per processed time point t:
//   1. settle(): run eval() over all modules repeatedly until no Wire
//      changes (bounded; throws on a combinational loop).
//   2. tick() every module bound to a clock whose rising edge falls at t
//      (multiple domains can coincide, e.g. 50 MHz and 200 MHz every 20 ns).
//   3. commit the registers of exactly the ticked modules.
//   4. settle() again so Moore outputs reflect the new state before the
//      next domain's edge.
//
// This is the standard two-phase synchronous-RTL semantics: all flip-flops
// of a domain sample their D inputs simultaneously.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "rtl/clock.hpp"
#include "rtl/module.hpp"

namespace gaip::rtl {

class VcdWriter;

class Kernel {
public:
    Kernel() = default;

    /// Define a clock domain. The returned reference stays valid for the
    /// kernel's lifetime.
    Clock& add_clock(std::string name, std::uint64_t freq_hz, SimTime phase_ps = 0);

    /// Bind a module to a clock domain (tick on its rising edges). A module
    /// may be bound to at most one clock.
    void bind(Module& m, Clock& c);

    /// Register a purely combinational module (eval only, never ticked).
    void add_combinational(Module& m);

    /// Hard-reset: resets every module's registers and state, rewinds all
    /// clocks and time to zero, then settles combinational logic.
    void reset();

    /// Advance simulation until `n` further rising edges of `c` have been
    /// processed.
    void run_cycles(Clock& c, std::uint64_t n);

    /// Advance until `pred()` becomes true (checked after each time point)
    /// or `max_edges` edges of `c` elapse. Returns true if pred fired.
    bool run_until(Clock& c, const std::function<bool()>& pred, std::uint64_t max_edges);

    /// Process exactly one time point (the earliest pending clock edge).
    void step();

    SimTime now() const noexcept { return now_; }

    /// Attach a VCD tracer (optional). The kernel does not own it.
    void set_vcd(VcdWriter* vcd) noexcept { vcd_ = vcd; }

    std::span<Module* const> modules() const noexcept { return all_modules_; }

    /// Number of delta-settling eval passes executed (model cost metric).
    std::uint64_t eval_passes() const noexcept { return eval_passes_; }

private:
    void settle();

    struct Domain {
        std::unique_ptr<Clock> clock;
        std::vector<Module*> modules;
    };

    std::vector<Domain> domains_;
    std::vector<Module*> combinational_;
    std::vector<Module*> all_modules_;
    SimTime now_ = 0;
    std::uint64_t eval_passes_ = 0;
    VcdWriter* vcd_ = nullptr;
};

}  // namespace gaip::rtl
