// The cycle-level simulation kernel.
//
// Execution model per processed time point t:
//   1. settle(): re-evaluate modules until no Wire changes (bounded; throws
//      on a combinational loop).
//   2. tick() every module bound to a clock whose rising edge falls at t
//      (multiple domains can coincide, e.g. 50 MHz and 200 MHz every 20 ns).
//   3. commit the registers of exactly the ticked modules; modules whose
//      registers actually changed are marked for re-evaluation.
//   4. settle() again so Moore outputs reflect the new state before the
//      next domain's edge.
//
// This is the standard two-phase synchronous-RTL semantics: all flip-flops
// of a domain sample their D inputs simultaneously.
//
// Scheduling: settle() is event-driven. Modules that declared their eval()
// sensitivity (Module::sense) are only re-evaluated when a sensed wire or
// one of their own registers changed since their last eval(); modules that
// did not are swept in full fixed-point passes exactly like the original
// kernel. Setting the environment variable GAIP_KERNEL_FULL_SETTLE=1 (or
// calling set_full_settle(true)) forces the original sweep for every module
// — the escape hatch differential tests compare against.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "rtl/clock.hpp"
#include "rtl/module.hpp"

namespace gaip::rtl {

/// Attach point for tracing/instrumentation: observers are invoked once per
/// processed time point, after the post-tick settle, when every wire and
/// register holds its final value for that instant. The VCD tracer
/// (trace::VcdWriter) attaches through this.
class KernelObserver {
public:
    virtual ~KernelObserver() = default;
    virtual void on_time_point(SimTime t) = 0;
};

/// Scheduler cost counters, cleared by Kernel::reset(). The model's own
/// simulation cost metric (host work), not modeled hardware time.
struct KernelStats {
    std::uint64_t time_points = 0;     ///< processed clock-edge instants
    std::uint64_t settle_calls = 0;    ///< settle() invocations (2 per time point + resets)
    std::uint64_t settle_passes = 0;   ///< fixed-point sweep iterations executed
    std::uint64_t module_evals = 0;    ///< individual Module::eval() calls
    std::uint64_t modules_skipped = 0; ///< evals avoided vs. one full sweep per settle pass

    double evals_per_time_point() const noexcept {
        return time_points == 0 ? 0.0
                                : static_cast<double>(module_evals) /
                                      static_cast<double>(time_points);
    }
};

class Kernel {
public:
    Kernel();

    /// Define a clock domain. The returned reference stays valid for the
    /// kernel's lifetime.
    Clock& add_clock(std::string name, std::uint64_t freq_hz, SimTime phase_ps = 0);

    /// Bind a module to a clock domain (tick on its rising edges). A module
    /// may be bound to at most one clock.
    void bind(Module& m, Clock& c);

    /// Register a purely combinational module (eval only, never ticked).
    void add_combinational(Module& m);

    /// Hard-reset: resets every module's registers and state, rewinds all
    /// clocks, time, and stats to zero, then settles combinational logic.
    void reset();

    /// Advance simulation until `n` further rising edges of `c` have been
    /// processed.
    void run_cycles(Clock& c, std::uint64_t n);

    /// Advance until `pred()` becomes true (checked after each time point)
    /// or `max_edges` edges of `c` elapse. Returns true if pred fired.
    bool run_until(Clock& c, const std::function<bool()>& pred, std::uint64_t max_edges);

    /// Process exactly one time point (the earliest pending clock edge).
    void step();

    SimTime now() const noexcept { return now_; }

    /// Attach a per-time-point observer (optional, e.g. a VCD tracer). The
    /// kernel does not own it; observers run in attachment order.
    void add_observer(KernelObserver* o) {
        if (o != nullptr) observers_.push_back(o);
    }
    /// Detach a previously attached observer (no-op if absent).
    void remove_observer(const KernelObserver* o) noexcept {
        std::erase(observers_, o);
    }

    std::span<Module* const> modules() const noexcept { return all_modules_; }

    /// Number of delta-settling sweep passes executed (legacy alias of
    /// stats().settle_passes).
    std::uint64_t eval_passes() const noexcept { return stats_.settle_passes; }

    const KernelStats& stats() const noexcept { return stats_; }

    /// Force the original evaluate-everything fixed-point sweep (the
    /// GAIP_KERNEL_FULL_SETTLE escape hatch, programmatically).
    void set_full_settle(bool on) noexcept { full_settle_ = on; }
    bool full_settle() const noexcept { return full_settle_; }

    /// True when the GAIP_KERNEL_FULL_SETTLE environment variable requests
    /// the sweep scheduler (any value but "0" / empty counts as set).
    static bool full_settle_from_env();

private:
    void settle();
    void drain_worklist(std::uint64_t& evals, std::uint64_t max_evals);
    void discard_worklist();
    void register_module(Module& m);

    struct Domain {
        std::unique_ptr<Clock> clock;
        std::vector<Module*> modules;
    };

    std::vector<Domain> domains_;
    std::vector<Module*> combinational_;
    std::vector<Module*> all_modules_;
    std::vector<Module*> legacy_;    ///< modules without a sensitivity list
    std::vector<Module*> worklist_;  ///< event-driven modules pending eval
    SimTime now_ = 0;
    KernelStats stats_;
    bool full_settle_ = false;
    std::vector<KernelObserver*> observers_;
};

}  // namespace gaip::rtl
