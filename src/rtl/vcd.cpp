#include "rtl/vcd.hpp"

#include <stdexcept>

namespace gaip::rtl {

VcdWriter::VcdWriter(const std::string& path) : out_(path) {
    if (!out_) throw std::runtime_error("VcdWriter: cannot open " + path);
}

std::string VcdWriter::make_id(std::size_t n) {
    // Printable identifier alphabet per the VCD spec (chars '!'..'~').
    std::string id;
    do {
        id.push_back(static_cast<char>('!' + n % 94));
        n /= 94;
    } while (n != 0);
    return id;
}

void VcdWriter::add_module(const Module& m) {
    if (header_written_) throw std::logic_error("VcdWriter: add_module after header");
    for (const RegBase* r : m.registers()) {
        Entry e;
        e.reg = r;
        e.id = make_id(entries_.size());
        e.scope = m.name();
        entries_.push_back(std::move(e));
    }
}

void VcdWriter::write_header() {
    out_ << "$timescale 1ps $end\n";
    std::string open_scope;
    for (const Entry& e : entries_) {
        if (e.scope != open_scope) {
            if (!open_scope.empty()) out_ << "$upscope $end\n";
            out_ << "$scope module " << e.scope << " $end\n";
            open_scope = e.scope;
        }
        out_ << "$var reg " << e.reg->width() << ' ' << e.id << ' ' << e.reg->name() << " $end\n";
    }
    if (!open_scope.empty()) out_ << "$upscope $end\n";
    out_ << "$enddefinitions $end\n";
    header_written_ = true;
}

void VcdWriter::emit(const Entry& e, std::uint64_t value) {
    if (e.reg->width() == 1) {
        out_ << (value & 1u) << e.id << '\n';
        return;
    }
    out_ << 'b';
    for (int i = static_cast<int>(e.reg->width()) - 1; i >= 0; --i)
        out_ << ((value >> i) & 1u);
    out_ << ' ' << e.id << '\n';
}

void VcdWriter::sample(SimTime t) {
    bool time_emitted = false;
    for (Entry& e : entries_) {
        const std::uint64_t v = e.reg->bits();
        if (e.first || v != e.last) {
            if (!time_emitted && t != last_time_) {
                out_ << '#' << t << '\n';
                last_time_ = t;
                time_emitted = true;
            }
            emit(e, v);
            e.last = v;
            e.first = false;
        }
    }
}

}  // namespace gaip::rtl
