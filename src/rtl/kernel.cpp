#include "rtl/kernel.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <stdexcept>

namespace gaip::rtl {

namespace {
/// Marks `t` as the module currently driving wires (thread-local), so wires
/// can record their driver. Cleared on scope exit even if eval() throws —
/// a stale pointer would outlive the module on this thread otherwise.
struct DriverScope {
    explicit DriverScope(EvalTarget* t) noexcept { detail::g_current_driver = t; }
    ~DriverScope() { detail::g_current_driver = nullptr; }
    DriverScope(const DriverScope&) = delete;
    DriverScope& operator=(const DriverScope&) = delete;
};
}  // namespace

bool Kernel::full_settle_from_env() {
    const char* v = std::getenv("GAIP_KERNEL_FULL_SETTLE");
    return v != nullptr && *v != '\0' && std::strcmp(v, "0") != 0;
}

Kernel::Kernel() : full_settle_(full_settle_from_env()) {}

Clock& Kernel::add_clock(std::string name, std::uint64_t freq_hz, SimTime phase_ps) {
    Domain d;
    d.clock = std::make_unique<Clock>(std::move(name), freq_hz, phase_ps);
    domains_.push_back(std::move(d));
    return *domains_.back().clock;
}

void Kernel::register_module(Module& m) {
    all_modules_.push_back(&m);
    if (m.event_driven()) {
        m.attach_scheduler(&worklist_);
    } else {
        legacy_.push_back(&m);
    }
}

void Kernel::bind(Module& m, Clock& c) {
    for (Domain& d : domains_) {
        if (d.clock.get() == &c) {
            d.modules.push_back(&m);
            register_module(m);
            return;
        }
    }
    throw std::invalid_argument("bind: clock does not belong to this kernel");
}

void Kernel::add_combinational(Module& m) {
    combinational_.push_back(&m);
    register_module(m);
}

void Kernel::reset() {
    for (Module* m : all_modules_) {
        m->reset_registers();
        m->reset_state();
    }
    for (Domain& d : domains_) d.clock->restart();
    now_ = 0;
    stats_ = KernelStats{};
    // Every module's state just moved: schedule a full first evaluation.
    discard_worklist();
    for (Module* m : all_modules_) {
        if (m->event_driven()) m->input_changed();
    }
    settle();
}

/// Evaluate queued event-driven modules until the queue runs dry. Modules
/// enqueue themselves (via Wire listeners) while the drain is in progress,
/// so this reaches the same fixed point a full sweep would — visiting only
/// modules whose inputs actually changed.
void Kernel::drain_worklist(std::uint64_t& evals, std::uint64_t max_evals) {
    for (std::size_t i = 0; i < worklist_.size(); ++i) {
        Module* m = worklist_[i];
        m->clear_dirty();
        {
            DriverScope scope(m);
            m->eval();
        }
        ++stats_.module_evals;
        if (++evals > max_evals)
            throw std::runtime_error("Kernel::settle: combinational loop did not converge");
    }
    worklist_.clear();
}

void Kernel::discard_worklist() {
    for (Module* m : worklist_) m->clear_dirty();
    worklist_.clear();
}

void Kernel::settle() {
    ++stats_.settle_calls;
    const std::size_t n = all_modules_.size();
    // Upper bound: each pass must change at least one wire to continue, and
    // a loop-free network of N modules settles within N passes.
    const std::size_t max_passes = n * 4 + 8;
    const std::uint64_t max_evals =
        static_cast<std::uint64_t>(max_passes) * static_cast<std::uint64_t>(std::max<std::size_t>(n, 1));
    std::uint64_t evals = 0;

    if (full_settle_) {
        // Escape hatch: the original evaluate-everything fixed-point sweep.
        // Wire listeners still fire during the sweep; their queue is
        // redundant here and is dropped after each pass.
        for (std::size_t pass = 0; pass < max_passes; ++pass) {
            const std::uint64_t before = wire_change_count();
            for (Module* m : all_modules_) {
                DriverScope scope(m);
                m->eval();
            }
            stats_.module_evals += n;
            ++stats_.settle_passes;
            discard_worklist();
            if (wire_change_count() == before) return;
        }
        throw std::runtime_error("Kernel::settle: combinational loop did not converge");
    }

    if (legacy_.empty()) {
        // Pure event-driven settle: one logical pass, visiting only pending
        // modules (usually a small fraction of the design).
        ++stats_.settle_passes;
        drain_worklist(evals, max_evals);
        stats_.modules_skipped += n > evals ? n - evals : 0;
        return;
    }

    // Mixed mode: modules without sensitivity info keep the sweep semantics;
    // event-driven modules ride along on the queue. Converges when a full
    // iteration (sweep + drain) changes no wire.
    for (std::size_t pass = 0; pass < max_passes; ++pass) {
        const std::uint64_t before = wire_change_count();
        const std::uint64_t evals_at_pass_start = evals;
        for (Module* m : legacy_) {
            DriverScope scope(m);
            m->eval();
        }
        stats_.module_evals += legacy_.size();
        evals += legacy_.size();
        ++stats_.settle_passes;
        drain_worklist(evals, max_evals);
        stats_.modules_skipped += n - std::min<std::uint64_t>(n, evals - evals_at_pass_start);
        if (wire_change_count() == before) return;
    }
    throw std::runtime_error("Kernel::settle: combinational loop did not converge");
}

void Kernel::step() {
    if (domains_.empty()) throw std::logic_error("Kernel::step: no clocks defined");

    SimTime t = std::numeric_limits<SimTime>::max();
    for (const Domain& d : domains_) t = std::min(t, d.clock->next_edge());
    now_ = t;
    ++stats_.time_points;

    settle();

    // Tick every module whose clock rises at t, then commit exactly those
    // modules' registers (simultaneous flip-flop semantics). A module whose
    // registers changed is re-scheduled so its Moore outputs get refreshed.
    std::vector<Module*> ticked;
    for (Domain& d : domains_) {
        if (d.clock->next_edge() == t) {
            for (Module* m : d.modules) {
                m->tick();
                ticked.push_back(m);
            }
            d.clock->advance();
        }
    }
    for (Module* m : ticked) {
        if (m->commit_registers() && m->event_driven()) m->input_changed();
    }

    settle();

    for (KernelObserver* o : observers_) o->on_time_point(now_);
}

void Kernel::run_cycles(Clock& c, std::uint64_t n) {
    const std::uint64_t target = c.edges() + n;
    while (c.edges() < target) step();
}

bool Kernel::run_until(Clock& c, const std::function<bool()>& pred, std::uint64_t max_edges) {
    const std::uint64_t limit = c.edges() + max_edges;
    while (c.edges() < limit) {
        if (pred()) return true;
        step();
    }
    return pred();
}

}  // namespace gaip::rtl
