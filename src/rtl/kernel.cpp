#include "rtl/kernel.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "rtl/vcd.hpp"

namespace gaip::rtl {

Clock& Kernel::add_clock(std::string name, std::uint64_t freq_hz, SimTime phase_ps) {
    Domain d;
    d.clock = std::make_unique<Clock>(std::move(name), freq_hz, phase_ps);
    domains_.push_back(std::move(d));
    return *domains_.back().clock;
}

void Kernel::bind(Module& m, Clock& c) {
    for (Domain& d : domains_) {
        if (d.clock.get() == &c) {
            d.modules.push_back(&m);
            all_modules_.push_back(&m);
            return;
        }
    }
    throw std::invalid_argument("bind: clock does not belong to this kernel");
}

void Kernel::add_combinational(Module& m) {
    combinational_.push_back(&m);
    all_modules_.push_back(&m);
}

void Kernel::reset() {
    for (Module* m : all_modules_) {
        m->reset_registers();
        m->reset_state();
    }
    for (Domain& d : domains_) d.clock->restart();
    now_ = 0;
    settle();
}

void Kernel::settle() {
    // Upper bound: each pass must change at least one wire to continue, and
    // a loop-free network of N modules settles within N passes.
    const std::size_t max_passes = all_modules_.size() * 4 + 8;
    for (std::size_t pass = 0; pass < max_passes; ++pass) {
        const std::uint64_t before = wire_change_count();
        for (Module* m : all_modules_) m->eval();
        ++eval_passes_;
        if (wire_change_count() == before) return;
    }
    throw std::runtime_error("Kernel::settle: combinational loop did not converge");
}

void Kernel::step() {
    if (domains_.empty()) throw std::logic_error("Kernel::step: no clocks defined");

    SimTime t = std::numeric_limits<SimTime>::max();
    for (const Domain& d : domains_) t = std::min(t, d.clock->next_edge());
    now_ = t;

    settle();

    // Tick every module whose clock rises at t, then commit exactly those
    // modules' registers (simultaneous flip-flop semantics).
    std::vector<Module*> ticked;
    for (Domain& d : domains_) {
        if (d.clock->next_edge() == t) {
            for (Module* m : d.modules) {
                m->tick();
                ticked.push_back(m);
            }
            d.clock->advance();
        }
    }
    for (Module* m : ticked) m->commit_registers();

    settle();

    if (vcd_ != nullptr) {
        if (!vcd_->header_written()) vcd_->write_header();
        vcd_->sample(now_);
    }
}

void Kernel::run_cycles(Clock& c, std::uint64_t n) {
    const std::uint64_t target = c.edges() + n;
    while (c.edges() < target) step();
}

bool Kernel::run_until(Clock& c, const std::function<bool()>& pred, std::uint64_t max_edges) {
    const std::uint64_t limit = c.edges() + max_edges;
    while (c.edges() < limit) {
        if (pred()) return true;
        step();
    }
    return pred();
}

}  // namespace gaip::rtl
