// Signal primitives of the cycle-level RTL model.
//
//  * Wire<T>  — a combinational net. Driven during Module::eval(); the kernel
//    re-evaluates modules until no wire changes (delta settling), so
//    combinational chains across modules resolve within a clock edge. A wire
//    additionally carries a listener list: modules that declared the wire as
//    an eval() input (Module::sense) are notified on every value change,
//    which is what powers the kernel's event-driven scheduler.
//  * Reg<T>   — a clocked register with two-phase semantics: Module::tick()
//    calls load(); the kernel commits all registers of the ticked modules
//    after every module has sampled its inputs, which models simultaneous
//    edge-triggered flip-flops without ordering races. commit() reports
//    whether the stored value actually changed so the scheduler can skip
//    re-evaluating modules whose state is unchanged.
//
// Registers expose their raw bits (bits()/set_bits()), which powers the scan
// chain model and exact flip-flop counting for the resource report.
//
// Thread-safety contract: a Wire/Reg belongs to exactly one Kernel and must
// only be driven/committed from the thread currently running that kernel.
// The delta change counter is thread-local, so independent kernels on
// different worker threads (the parallel GA array) neither contend nor
// perturb each other's settling convergence checks.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <vector>

#include "util/bits.hpp"

namespace gaip::rtl {

namespace detail {
/// Per-thread delta-settling change counter. The kernel snapshots it before
/// an eval pass; any Wire::drive() that changes a value bumps it. Thread-
/// local (not a shared atomic) so kernels running concurrently on worker
/// threads cannot make each other's fixed-point check spuriously fail.
inline thread_local std::uint64_t g_wire_change_count = 0;

template <typename T>
constexpr std::uint64_t to_bits(const T& v) noexcept {
    if constexpr (std::is_same_v<T, bool>) {
        return v ? 1u : 0u;
    } else if constexpr (std::is_enum_v<T>) {
        return static_cast<std::uint64_t>(static_cast<std::underlying_type_t<T>>(v));
    } else {
        return static_cast<std::uint64_t>(v);
    }
}

template <typename T>
constexpr T from_bits(std::uint64_t b) noexcept {
    if constexpr (std::is_same_v<T, bool>) {
        return (b & 1u) != 0;
    } else if constexpr (std::is_enum_v<T>) {
        return static_cast<T>(static_cast<std::underlying_type_t<T>>(b));
    } else {
        return static_cast<T>(b);
    }
}
}  // namespace detail

inline std::uint64_t wire_change_count() noexcept {
    return detail::g_wire_change_count;
}

/// Implemented by Module: the callback a wire fires when its value changes,
/// so the kernel can re-evaluate exactly the modules that read it.
class EvalTarget {
public:
    virtual void input_changed() noexcept = 0;

protected:
    ~EvalTarget() = default;
};

namespace detail {
/// The module whose eval() is currently running on this thread (set by the
/// kernel). Wires use it to learn their driver, and to distinguish module
/// drives from external testbench pokes.
inline thread_local EvalTarget* g_current_driver = nullptr;
}  // namespace detail

/// Type-erased base of Wire<T>: the listener list lives here so modules can
/// register sensitivity without knowing the wire's payload type.
class WireBase {
public:
    /// Register `t` to be notified whenever the wire's value changes.
    /// Listeners are never deregistered; wires and the modules observing
    /// them belong to the same system object and die together.
    void add_listener(EvalTarget* t) { listeners_.push_back(t); }

protected:
    void notify_changed() noexcept {
        ++detail::g_wire_change_count;
        if (detail::g_current_driver != nullptr) {
            driver_ = detail::g_current_driver;
        } else if (driver_ != nullptr) {
            // External (testbench) poke of a module-driven net. Under the
            // evaluate-everything sweep, the driving module would overwrite
            // the poked value at the next settle; schedule that module so
            // the event-driven schedule behaves identically.
            driver_->input_changed();
        }
        for (EvalTarget* t : listeners_) t->input_changed();
    }

private:
    std::vector<EvalTarget*> listeners_;
    EvalTarget* driver_ = nullptr;
};

/// Combinational net. Default-constructed to T{} (all zeros / false).
template <typename T>
class Wire : public WireBase {
    static_assert(std::is_trivially_copyable_v<T>);

public:
    Wire() = default;
    explicit Wire(T initial) : value_(initial) {}

    const T& read() const noexcept { return value_; }

    /// Drive a new value; registers a delta change (and wakes listening
    /// modules) if the value differs.
    void drive(const T& v) {
        if (!(v == value_)) {
            value_ = v;
            notify_changed();
        }
    }

private:
    T value_{};
};

/// Type-erased register interface: commit/reset plus raw bit access used by
/// the scan chain, VCD tracing, and the resource model.
class RegBase {
public:
    RegBase(std::string name, unsigned width) : name_(std::move(name)), width_(width) {}
    virtual ~RegBase() = default;
    RegBase(const RegBase&) = delete;
    RegBase& operator=(const RegBase&) = delete;

    /// Apply the pending load, if any. Returns true iff the stored value
    /// changed (the scheduler uses this to skip settled modules).
    virtual bool commit() = 0;
    virtual void hard_reset() = 0;
    virtual std::uint64_t bits() const = 0;
    virtual void set_bits(std::uint64_t b) = 0;

    const std::string& name() const noexcept { return name_; }
    unsigned width() const noexcept { return width_; }

private:
    std::string name_;
    unsigned width_;
};

/// Edge-triggered register of `width` bits (defaults to the full width of T).
template <typename T>
class Reg final : public RegBase {
    static_assert(std::is_trivially_copyable_v<T>);

public:
    Reg(std::string name, T reset_value = T{}, unsigned width = 8 * sizeof(T))
        : RegBase(std::move(name), width), reset_value_(reset_value), cur_(reset_value),
          nxt_(reset_value) {
        if (width > 64) throw std::invalid_argument("Reg width > 64");
    }

    const T& read() const noexcept { return cur_; }

    /// Schedule `v` to become the register value at commit (clock edge end).
    void load(const T& v) noexcept {
        nxt_ = v;
        loaded_ = true;
    }

    bool commit() override {
        if (!loaded_) return false;
        loaded_ = false;
        const T next = mask(nxt_);
        if (next == cur_) return false;
        cur_ = next;
        return true;
    }

    void hard_reset() override {
        cur_ = reset_value_;
        nxt_ = reset_value_;
        loaded_ = false;
    }

    std::uint64_t bits() const override {
        return detail::to_bits(cur_) & util::low_mask(width());
    }

    void set_bits(std::uint64_t b) override {
        cur_ = detail::from_bits<T>(b & util::low_mask(width()));
        nxt_ = cur_;
        loaded_ = false;
    }

private:
    T mask(const T& v) const noexcept {
        if constexpr (std::is_same_v<T, bool> || std::is_enum_v<T>) {
            return v;
        } else {
            return static_cast<T>(detail::to_bits(v) & util::low_mask(width()));
        }
    }

    T reset_value_;
    T cur_;
    T nxt_;
    bool loaded_ = false;
};

}  // namespace gaip::rtl
