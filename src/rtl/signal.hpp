// Signal primitives of the cycle-level RTL model.
//
//  * Wire<T>  — a combinational net. Driven during Module::eval(); the kernel
//    re-evaluates modules until no wire changes (delta settling), so
//    combinational chains across modules resolve within a clock edge.
//  * Reg<T>   — a clocked register with two-phase semantics: Module::tick()
//    calls load(); the kernel commits all registers of the ticked modules
//    after every module has sampled its inputs, which models simultaneous
//    edge-triggered flip-flops without ordering races.
//
// Registers expose their raw bits (bits()/set_bits()), which powers the scan
// chain model and exact flip-flop counting for the resource report.
#pragma once

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <type_traits>

#include "util/bits.hpp"

namespace gaip::rtl {

namespace detail {
/// Global delta-settling change counter. The kernel snapshots it before an
/// eval pass; any Wire::drive() that changes a value bumps it. Relaxed
/// atomic so independent kernels on different threads stay correct.
inline std::atomic<std::uint64_t> g_wire_change_count{0};

template <typename T>
constexpr std::uint64_t to_bits(const T& v) noexcept {
    if constexpr (std::is_same_v<T, bool>) {
        return v ? 1u : 0u;
    } else if constexpr (std::is_enum_v<T>) {
        return static_cast<std::uint64_t>(static_cast<std::underlying_type_t<T>>(v));
    } else {
        return static_cast<std::uint64_t>(v);
    }
}

template <typename T>
constexpr T from_bits(std::uint64_t b) noexcept {
    if constexpr (std::is_same_v<T, bool>) {
        return (b & 1u) != 0;
    } else if constexpr (std::is_enum_v<T>) {
        return static_cast<T>(static_cast<std::underlying_type_t<T>>(b));
    } else {
        return static_cast<T>(b);
    }
}
}  // namespace detail

inline std::uint64_t wire_change_count() noexcept {
    return detail::g_wire_change_count.load(std::memory_order_relaxed);
}

/// Combinational net. Default-constructed to T{} (all zeros / false).
template <typename T>
class Wire {
    static_assert(std::is_trivially_copyable_v<T>);

public:
    Wire() = default;
    explicit Wire(T initial) : value_(initial) {}

    const T& read() const noexcept { return value_; }

    /// Drive a new value; registers a delta change if the value differs.
    void drive(const T& v) {
        if (!(v == value_)) {
            value_ = v;
            detail::g_wire_change_count.fetch_add(1, std::memory_order_relaxed);
        }
    }

private:
    T value_{};
};

/// Type-erased register interface: commit/reset plus raw bit access used by
/// the scan chain, VCD tracing, and the resource model.
class RegBase {
public:
    RegBase(std::string name, unsigned width) : name_(std::move(name)), width_(width) {}
    virtual ~RegBase() = default;
    RegBase(const RegBase&) = delete;
    RegBase& operator=(const RegBase&) = delete;

    virtual void commit() = 0;
    virtual void hard_reset() = 0;
    virtual std::uint64_t bits() const = 0;
    virtual void set_bits(std::uint64_t b) = 0;

    const std::string& name() const noexcept { return name_; }
    unsigned width() const noexcept { return width_; }

private:
    std::string name_;
    unsigned width_;
};

/// Edge-triggered register of `width` bits (defaults to the full width of T).
template <typename T>
class Reg final : public RegBase {
    static_assert(std::is_trivially_copyable_v<T>);

public:
    Reg(std::string name, T reset_value = T{}, unsigned width = 8 * sizeof(T))
        : RegBase(std::move(name), width), reset_value_(reset_value), cur_(reset_value),
          nxt_(reset_value) {
        if (width > 64) throw std::invalid_argument("Reg width > 64");
    }

    const T& read() const noexcept { return cur_; }

    /// Schedule `v` to become the register value at commit (clock edge end).
    void load(const T& v) noexcept {
        nxt_ = v;
        loaded_ = true;
    }

    void commit() override {
        if (loaded_) {
            cur_ = mask(nxt_);
            loaded_ = false;
        }
    }

    void hard_reset() override {
        cur_ = reset_value_;
        nxt_ = reset_value_;
        loaded_ = false;
    }

    std::uint64_t bits() const override {
        return detail::to_bits(cur_) & util::low_mask(width());
    }

    void set_bits(std::uint64_t b) override {
        cur_ = detail::from_bits<T>(b & util::low_mask(width()));
        nxt_ = cur_;
        loaded_ = false;
    }

private:
    T mask(const T& v) const noexcept {
        if constexpr (std::is_same_v<T, bool> || std::is_enum_v<T>) {
            return v;
        } else {
            return static_cast<T>(detail::to_bits(v) & util::low_mask(width()));
        }
    }

    T reset_value_;
    T cur_;
    T nxt_;
    bool loaded_ = false;
};

}  // namespace gaip::rtl
