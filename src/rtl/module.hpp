// Module base class of the cycle-level RTL model.
//
// A Module is a hardware block with
//   * eval()  — combinational logic: read registers + input wires, drive
//               output wires. Must be idempotent; the kernel calls it
//               repeatedly until all wires settle.
//   * tick()  — sequential logic: executed once per rising edge of the clock
//               the module is bound to. Reads wires/registers, loads
//               registers. Register commits are performed by the kernel
//               after every module at the edge has ticked.
//   * reset_state() — re-initialize registers / local state.
//
// Modules register their Reg<> members with attach() so the kernel can
// commit/reset them and so the scan chain, VCD tracer, and resource model
// can enumerate every flip-flop in the design.
//
// Event-driven scheduling: a module that declares the complete set of wires
// its eval() reads via sense(...) opts into the kernel's event-driven
// scheduler — its eval() is skipped whenever neither a sensed wire nor one
// of its own registers changed since the last evaluation. The contract is
// that such an eval() is a pure function of the sensed wires and the
// attached registers (no other mutable inputs). Call sense() with no
// arguments for a module whose eval() reads registers only. Modules that
// never call sense() keep the legacy semantics: they are re-evaluated in
// every settling pass.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "rtl/signal.hpp"

namespace gaip::rtl {

class Module : public EvalTarget {
public:
    explicit Module(std::string name) : name_(std::move(name)) {}
    virtual ~Module() = default;
    Module(const Module&) = delete;
    Module& operator=(const Module&) = delete;

    /// Combinational function; default: none.
    virtual void eval() {}

    /// Sequential function, called at each rising edge of the bound clock.
    virtual void tick() {}

    /// Module-specific reset (beyond the automatic hard_reset of attached
    /// registers, which the kernel performs itself).
    virtual void reset_state() {}

    const std::string& name() const noexcept { return name_; }

    std::span<RegBase* const> registers() const noexcept { return regs_; }

    /// Total flip-flop bits in this module (resource model input).
    unsigned flipflop_bits() const noexcept {
        unsigned n = 0;
        for (const RegBase* r : regs_) n += r->width();
        return n;
    }

    /// Commit all pending register loads; returns true iff any register
    /// value actually changed (i.e. the module's Moore outputs may move).
    bool commit_registers() {
        bool changed = false;
        for (RegBase* r : regs_) changed |= r->commit();
        return changed;
    }

    void reset_registers() {
        for (RegBase* r : regs_) r->hard_reset();
    }

    /// True once the module declared its complete eval() sensitivity list
    /// (possibly empty) — the opt-in for event-driven scheduling.
    bool event_driven() const noexcept { return sensitivity_declared_; }

    // --- scheduler interface (used by Kernel) ---

    /// Wire-change callback: marks the module for re-evaluation and appends
    /// it to the kernel's worklist (once until re-evaluated).
    void input_changed() noexcept final {
        if (!dirty_) {
            dirty_ = true;
            if (worklist_ != nullptr) worklist_->push_back(this);
        }
    }

    /// Install the kernel's worklist the module enqueues itself on. Called
    /// at bind time; a module belongs to exactly one kernel. A module whose
    /// inputs moved before it was bound (wires driven during system
    /// construction) is enqueued right away — its dirty flag is already set,
    /// so later input_changed() calls would short-circuit and never queue it.
    void attach_scheduler(std::vector<Module*>* worklist) noexcept {
        worklist_ = worklist;
        if (dirty_) worklist_->push_back(this);
    }

    bool dirty() const noexcept { return dirty_; }
    void clear_dirty() noexcept { dirty_ = false; }

protected:
    void attach(RegBase& r) { regs_.push_back(&r); }

    template <typename... Rs>
    void attach_all(Rs&... rs) {
        (attach(rs), ...);
    }

    /// Declare the complete set of wires eval() reads. Callable multiple
    /// times (e.g. as inputs are wired up incrementally); with no arguments
    /// it declares an empty sensitivity list (eval() reads registers only).
    template <typename... Ws>
    void sense(Ws&... ws) {
        sensitivity_declared_ = true;
        (static_cast<WireBase&>(ws).add_listener(this), ...);
    }

private:
    std::string name_;
    std::vector<RegBase*> regs_;
    std::vector<Module*>* worklist_ = nullptr;
    bool dirty_ = false;
    bool sensitivity_declared_ = false;
};

}  // namespace gaip::rtl
