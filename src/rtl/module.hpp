// Module base class of the cycle-level RTL model.
//
// A Module is a hardware block with
//   * eval()  — combinational logic: read registers + input wires, drive
//               output wires. Must be idempotent; the kernel calls it
//               repeatedly until all wires settle.
//   * tick()  — sequential logic: executed once per rising edge of the clock
//               the module is bound to. Reads wires/registers, loads
//               registers. Register commits are performed by the kernel
//               after every module at the edge has ticked.
//   * reset_state() — re-initialize registers / local state.
//
// Modules register their Reg<> members with attach() so the kernel can
// commit/reset them and so the scan chain, VCD tracer, and resource model
// can enumerate every flip-flop in the design.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "rtl/signal.hpp"

namespace gaip::rtl {

class Module {
public:
    explicit Module(std::string name) : name_(std::move(name)) {}
    virtual ~Module() = default;
    Module(const Module&) = delete;
    Module& operator=(const Module&) = delete;

    /// Combinational function; default: none.
    virtual void eval() {}

    /// Sequential function, called at each rising edge of the bound clock.
    virtual void tick() {}

    /// Module-specific reset (beyond the automatic hard_reset of attached
    /// registers, which the kernel performs itself).
    virtual void reset_state() {}

    const std::string& name() const noexcept { return name_; }

    std::span<RegBase* const> registers() const noexcept { return regs_; }

    /// Total flip-flop bits in this module (resource model input).
    unsigned flipflop_bits() const noexcept {
        unsigned n = 0;
        for (const RegBase* r : regs_) n += r->width();
        return n;
    }

    void commit_registers() {
        for (RegBase* r : regs_) r->commit();
    }

    void reset_registers() {
        for (RegBase* r : regs_) r->hard_reset();
    }

protected:
    void attach(RegBase& r) { regs_.push_back(&r); }

    template <typename... Rs>
    void attach_all(Rs&... rs) {
        (attach(rs), ...);
    }

private:
    std::string name_;
    std::vector<RegBase*> regs_;
};

}  // namespace gaip::rtl
