// Scan-chain model (Sec. III-C.2 of the paper): every register of the design
// is stitched into a single shift register. When `test` is asserted the
// chain shifts one bit per clock: scanin enters at the chain head (the MSB
// of the first register) and the chain tail (LSB of the last register)
// appears on scanout. This gives full controllability/observability of the
// design state, exactly like the AUDI-inserted scan chain.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "rtl/signal.hpp"

namespace gaip::rtl {

class ScanChain {
public:
    ScanChain() = default;

    /// One flip-flop of the chain, addressed both ways: by snapshot position
    /// (head-first, MSB-first within a register — the order snapshot()
    /// returns) and by (register, LSB-relative bit index).
    struct BitRef {
        RegBase* reg = nullptr;
        unsigned bit = 0;  ///< LSB-relative index into reg (0 = LSB)
    };

    void add(RegBase& r) { regs_.push_back(&r); }

    void add_all(std::span<RegBase* const> rs) {
        for (RegBase* r : rs) regs_.push_back(r);
    }

    /// Total chain length in bits.
    unsigned length() const noexcept {
        unsigned n = 0;
        for (const RegBase* r : regs_) n += r->width();
        return n;
    }

    /// Bit that scanout presents *before* a shift: the chain tail (LSB of
    /// the last register).
    bool tail() const noexcept {
        if (regs_.empty()) return false;
        return (regs_.back()->bits() & 1u) != 0;
    }

    /// Shift the whole chain by one position toward the tail; `scanin`
    /// enters at the head. Returns the bit shifted out of the tail.
    bool shift(bool scanin) {
        bool carry = scanin;
        for (RegBase* r : regs_) {
            const std::uint64_t v = r->bits();
            const bool out = (v & 1u) != 0;
            std::uint64_t nv = v >> 1;
            if (carry) nv |= std::uint64_t{1} << (r->width() - 1);
            r->set_bits(nv);
            carry = out;
        }
        return carry;
    }

    /// Read the full chain state as a bit vector, head first (for tests).
    std::vector<bool> snapshot() const {
        std::vector<bool> bits;
        bits.reserve(length());
        for (const RegBase* r : regs_) {
            for (int i = static_cast<int>(r->width()) - 1; i >= 0; --i)
                bits.push_back(((r->bits() >> i) & 1u) != 0);
        }
        return bits;
    }

    /// Load a full chain state (the inverse of snapshot(): head first,
    /// MSB-first per register). Sizes must match exactly.
    void load(const std::vector<bool>& bits) {
        if (bits.size() != length())
            throw std::invalid_argument("ScanChain::load: bit count != chain length");
        std::size_t pos = 0;
        for (RegBase* r : regs_) {
            std::uint64_t v = 0;
            for (unsigned i = 0; i < r->width(); ++i) v = (v << 1) | (bits[pos++] ? 1u : 0u);
            r->set_bits(v);
        }
    }

    /// The stitched registers, head first (fault-site enumeration).
    std::span<RegBase* const> registers() const noexcept { return regs_; }

    /// Resolve a snapshot position to the flip-flop it addresses.
    BitRef locate(unsigned snapshot_pos) const {
        unsigned off = snapshot_pos;
        for (RegBase* r : regs_) {
            if (off < r->width()) return {r, r->width() - 1 - off};
            off -= r->width();
        }
        throw std::out_of_range("ScanChain::locate: position beyond chain length");
    }

    /// Snapshot position of `bit` (LSB-relative) of the register named
    /// `reg`; throws if no such flip-flop is stitched into the chain.
    unsigned position_of(const std::string& reg, unsigned bit) const {
        unsigned off = 0;
        for (const RegBase* r : regs_) {
            if (r->name() == reg) {
                if (bit >= r->width())
                    throw std::out_of_range("ScanChain::position_of: bit beyond register");
                return off + (r->width() - 1 - bit);
            }
            off += r->width();
        }
        throw std::out_of_range("ScanChain::position_of: unknown register " + reg);
    }

    /// Invert one flip-flop in place (simulator backdoor; the scan-shift
    /// read-modify-write sequence reaches the same state through the pins).
    void flip(unsigned snapshot_pos) {
        const BitRef b = locate(snapshot_pos);
        b.reg->set_bits(b.reg->bits() ^ (std::uint64_t{1} << b.bit));
    }

private:
    std::vector<RegBase*> regs_;
};

}  // namespace gaip::rtl
