// Scan-chain model (Sec. III-C.2 of the paper): every register of the design
// is stitched into a single shift register. When `test` is asserted the
// chain shifts one bit per clock: scanin enters at the chain head (the MSB
// of the first register) and the chain tail (LSB of the last register)
// appears on scanout. This gives full controllability/observability of the
// design state, exactly like the AUDI-inserted scan chain.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "rtl/signal.hpp"

namespace gaip::rtl {

class ScanChain {
public:
    ScanChain() = default;

    void add(RegBase& r) { regs_.push_back(&r); }

    void add_all(std::span<RegBase* const> rs) {
        for (RegBase* r : rs) regs_.push_back(r);
    }

    /// Total chain length in bits.
    unsigned length() const noexcept {
        unsigned n = 0;
        for (const RegBase* r : regs_) n += r->width();
        return n;
    }

    /// Bit that scanout presents *before* a shift: the chain tail (LSB of
    /// the last register).
    bool tail() const noexcept {
        if (regs_.empty()) return false;
        return (regs_.back()->bits() & 1u) != 0;
    }

    /// Shift the whole chain by one position toward the tail; `scanin`
    /// enters at the head. Returns the bit shifted out of the tail.
    bool shift(bool scanin) {
        bool carry = scanin;
        for (RegBase* r : regs_) {
            const std::uint64_t v = r->bits();
            const bool out = (v & 1u) != 0;
            std::uint64_t nv = v >> 1;
            if (carry) nv |= std::uint64_t{1} << (r->width() - 1);
            r->set_bits(nv);
            carry = out;
        }
        return carry;
    }

    /// Read the full chain state as a bit vector, head first (for tests).
    std::vector<bool> snapshot() const {
        std::vector<bool> bits;
        bits.reserve(length());
        for (const RegBase* r : regs_) {
            for (int i = static_cast<int>(r->width()) - 1; i >= 0; --i)
                bits.push_back(((r->bits() >> i) & 1u) != 0);
        }
        return bits;
    }

private:
    std::vector<RegBase*> regs_;
};

}  // namespace gaip::rtl
