// Supervised island ensemble: the mission supervisor's fault-handling
// story (src/supervisor/) applied to the N-core island system. Each island
// is checkpointed with the supervisor's audited capture (scan chain + RNG
// registers + both GA memory banks) at every migration barrier, a
// per-segment cycle-budget watchdog guards every barrier-to-barrier
// stretch, and a watchdog trip rolls back ONLY the affected island: a
// fresh system is initialized, the island's last checkpoint is restored,
// and the segment re-runs — deterministically reconverging on the exact
// state the fault-free island would have reached, while the other islands
// sit parked at the barrier with their emigrants already captured. The
// ring keeps delivering; one upset core costs one island one segment
// re-run, never the ensemble.
//
// Optionally the whole ensemble runs as N-modular redundancy: `nmr`
// replicas of the complete island job, majority-voted on the delivered
// (best fitness, best candidate) pair — meaningful because the island
// system is bit-exact per replica.
//
// Decisions are emitted as trace events: the supervisor's sup_checkpoint /
// watchdog_trip / sup_vote kinds plus the island_rollback kind, so
// gaip-trace tooling records supervised ensemble runs like any other
// telemetry stream.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "island/island.hpp"
#include "supervisor/supervisor.hpp"
#include "trace/event.hpp"

namespace gaip::island {

struct SupervisedIslandConfig {
    /// The island job. backend must be kRtl — the checkpoint/rollback
    /// machinery is the RT-level scan-chain path (throws otherwise).
    IslandConfig islands{};
    /// Per-segment watchdog: budget = factor x the formula estimate of the
    /// segment's cycles. Doubles per rollback attempt.
    unsigned watchdog_factor = 4;
    /// Rollback attempts per island per segment before the run aborts.
    unsigned max_retries = 2;
    /// Ensemble replicas majority-voted (1 = plain supervised run; use an
    /// odd count for a meaningful vote).
    unsigned nmr = 1;
    trace::TraceSink* sink = nullptr;
    /// Per-cycle fault-injection hook, invoked as
    /// hook(sys, info, cycle) with info.replica = ensemble replica,
    /// info.attempt = ISLAND index, info.rung = kPrimary or kRetry, and
    /// info.resumed/resumed_gen describing a rollback re-run. When a hook
    /// is set, islands are stepped sequentially (threads forced to 1) so
    /// the hook never runs concurrently.
    supervisor::CycleHook hook;
};

struct SupervisedIslandReport {
    supervisor::Status status = supervisor::Status::kAborted;
    std::uint16_t best_fitness = 0;
    std::uint16_t best_candidate = 0;
    unsigned checkpoints = 0;      ///< per-island snapshots captured
    unsigned watchdog_trips = 0;   ///< per-island segment budgets missed
    unsigned rollbacks = 0;        ///< single-island checkpoint restores
    bool voted = false;
    unsigned vote_agree = 0;       ///< replicas agreeing with the majority
    /// The delivered (majority) replica's full island result.
    IslandResult result;
    std::string abort_reason;

    bool ok() const noexcept { return status != supervisor::Status::kAborted; }
};

class SupervisedIslandSystem {
public:
    /// Throws std::invalid_argument for a non-RTL backend or the structural
    /// errors IslandSystem rejects.
    explicit SupervisedIslandSystem(SupervisedIslandConfig cfg);

    const SupervisedIslandConfig& config() const noexcept { return cfg_; }
    const core::GaParameters& params() const noexcept { return eff_params_; }
    const std::vector<std::uint32_t>& boundaries() const noexcept { return boundaries_; }

    /// Run all replicas, vote, and return the report. Faults the rollback
    /// ladder covers never throw — they end as status kAborted.
    SupervisedIslandReport run();

private:
    struct ReplicaOutcome {
        bool ok = false;
        IslandResult result;
        std::string abort_reason;
    };

    ReplicaOutcome run_replica(unsigned replica, SupervisedIslandReport& rep);
    void emit(trace::TraceEvent e) const;

    SupervisedIslandConfig cfg_;
    core::GaParameters eff_params_{};
    MigrationConfig eff_mig_{};
    std::vector<std::uint16_t> seeds_;
    std::vector<std::uint32_t> boundaries_;
};

}  // namespace gaip::island
