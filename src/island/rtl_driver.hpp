// Internal RT-level island driver helpers shared by island.cpp (plain
// ensemble) and supervised.cpp (checkpointed/rolled-back ensemble). Not
// part of the public island API.
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <vector>

#include "island/island.hpp"
#include "mem/ga_memory.hpp"
#include "supervisor/supervisor.hpp"
#include "system/ga_system.hpp"

namespace gaip::island::detail {

/// Init-handshake cycle bound (same constant the supervisor arms).
inline constexpr std::uint64_t kInitBound = 4096;

inline void ga_cycle(system::GaSystem& sys) { sys.kernel().run_cycles(sys.ga_clock(), 1); }

/// Whole-run GA-cycle bound per island: the formula estimate used across
/// the repo's cycle bounds, with a 4x watchdog margin.
inline std::uint64_t island_cycle_bound(const core::GaParameters& eff) {
    const std::uint64_t evals =
        static_cast<std::uint64_t>(eff.pop_size) * (static_cast<std::uint64_t>(eff.n_gens) + 1);
    return 4 * (evals * (64ull + 8ull * eff.pop_size) + 100'000);
}

/// GA cycles one generation costs (evaluation handshakes + selection scan).
inline std::uint64_t per_generation_cycles(const core::GaParameters& eff) {
    return static_cast<std::uint64_t>(eff.pop_size) * (64ull + 8ull * eff.pop_size);
}

inline std::vector<core::Member> members_from_memory(const mem::GaMemory& memory, bool bank,
                                                     unsigned pop) {
    std::vector<core::Member> out(pop);
    for (unsigned j = 0; j < pop; ++j)
        out[j] = core::Member{memory.candidate_at(bank, static_cast<std::uint8_t>(j)),
                              memory.fitness_at(bank, static_cast<std::uint8_t>(j))};
    return out;
}

/// One RT-level island: a complete GaSystem plus its interconnect bus port.
struct RtlIsland {
    std::unique_ptr<system::GaSystem> sys;
    std::unique_ptr<MigrationRegisterBus> bus;
    core::GaCore::State prev = core::GaCore::State::kIdle;
    std::uint64_t run_cycles = 0;
    std::uint64_t stall_cycles = 0;
};

/// Construct one island's system + bus snoop, reset, and drive the static
/// pins. The migration registers are programmed with the RAW requested
/// values — the interconnect clamps on use, like the hardware.
inline void build_rtl_island(RtlIsland& isl, const IslandConfig& cfg,
                             const core::GaParameters& eff, std::uint16_t seed) {
    system::GaSystemConfig scfg;
    scfg.params = eff;
    scfg.params.seed = seed;
    scfg.internal_fems = {cfg.fn};
    scfg.rng_kind = cfg.rng_kind;
    scfg.keep_populations = false;
    scfg.extra_init_writes = {
        {kMigIntervalIndex, cfg.migration.interval},
        {kMigCountIndex, pack_count_policy(cfg.migration)},
    };
    isl.sys = std::make_unique<system::GaSystem>(scfg);
    auto& w = isl.sys->wires();
    isl.bus = std::make_unique<MigrationRegisterBus>(
        MigrationBusPorts{w.ga_load, w.index, w.value, w.data_valid});
    // The bus snoops on the fast peripheral clock, like the system tap:
    // every handshake transition is visible there.
    isl.sys->kernel().bind(*isl.bus, isl.sys->app_clock());
    isl.sys->kernel().reset();
    w.preset.drive(0);
    w.fitfunc_select.drive(0);
    isl.prev = core::GaCore::State::kIdle;
}

/// Run the init handshake to the kStart state; optionally let the start
/// pulse fall afterwards (required before a checkpoint restore — a still-
/// high start_GA would re-trigger the RNG's seed-reload edge detector).
/// Returns false on handshake timeout.
inline bool init_rtl_island(RtlIsland& isl, bool drain_start_pulse) {
    core::GaCore& core = isl.sys->core();
    std::uint64_t c = 0;
    while (core.state() != core::GaCore::State::kStart) {
        if (c++ >= kInitBound) return false;
        ga_cycle(*isl.sys);
    }
    if (drain_start_pulse)
        for (unsigned g = 0; g < 32 && isl.sys->wires().start_ga.read(); ++g) ga_cycle(*isl.sys);
    isl.prev = core.state();
    return true;
}

struct AdvanceResult {
    bool ok = false;              ///< reached the target within the bound
    std::uint64_t cycles = 0;     ///< cycles consumed (== bound on a trip)
    std::uint8_t final_state = 0; ///< FSM state at a watchdog trip
};

/// Advance one island until it parks one cycle past the kGenCheck entry of
/// generation `target` — the post-E2 edge where the monitor has captured
/// the boundary and the current bank is poke-safe — or, for target ==
/// UINT32_MAX, until kDone. The optional hook is the supervised ensemble's
/// fault-injection surface, invoked after every cycle with `cycle_base +
/// cycles consumed so far` (the island's cumulative run-cycle numbering).
inline AdvanceResult advance_rtl(RtlIsland& isl, std::uint32_t target, std::uint64_t bound,
                                 const supervisor::CycleHook* hook = nullptr,
                                 const supervisor::AttemptInfo* info = nullptr,
                                 std::uint64_t cycle_base = 0) {
    core::GaCore& core = isl.sys->core();
    AdvanceResult res;
    while (true) {
        if (target == UINT32_MAX && core.state() == core::GaCore::State::kDone) {
            res.ok = true;
            return res;
        }
        if (res.cycles >= bound) {
            res.final_state = static_cast<std::uint8_t>(core.state());
            return res;
        }
        ga_cycle(*isl.sys);
        ++res.cycles;
        if (hook != nullptr && *hook) (*hook)(*isl.sys, *info, cycle_base + res.cycles);
        const core::GaCore::State st = core.state();
        if (target != UINT32_MAX && st == core::GaCore::State::kGenCheck &&
            isl.prev != core::GaCore::State::kGenCheck && core.generation() == target) {
            // E1 committed (monitor pulse high); one more edge commits the
            // monitor capture and leaves the memory quiescent for the poke.
            ga_cycle(*isl.sys);
            ++res.cycles;
            if (hook != nullptr && *hook) (*hook)(*isl.sys, *info, cycle_base + res.cycles);
            isl.prev = core.state();
            res.ok = true;
            return res;
        }
        isl.prev = st;
    }
}

}  // namespace gaip::island::detail
