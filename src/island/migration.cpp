#include "island/migration.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace gaip::island {

namespace {

/// Slots ordered best-first: fitness descending, slot ascending on ties.
/// Emigrants and the star hub's broadcast set are prefixes of this order.
std::vector<std::size_t> slots_best_first(const std::vector<core::Member>& pop) {
    std::vector<std::size_t> order(pop.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        if (pop[a].fitness != pop[b].fitness) return pop[a].fitness > pop[b].fitness;
        return a < b;
    });
    return order;
}

/// Victim slots for one destination island, on its pre-migration population.
std::vector<std::size_t> pick_victims(const std::vector<core::Member>& pop, unsigned count,
                                      ReplacePolicy policy, core::RngState& rng) {
    std::vector<std::size_t> victims;
    victims.reserve(count);
    if (policy == ReplacePolicy::kWorst) {
        // Fitness ascending, slot DESCENDING on ties: the elite copy the
        // core wrote into slot 0 is the last to be displaced.
        std::vector<std::size_t> order(pop.size());
        std::iota(order.begin(), order.end(), 0);
        std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
            if (pop[a].fitness != pop[b].fitness) return pop[a].fitness < pop[b].fitness;
            return a > b;
        });
        victims.assign(order.begin(), order.begin() + count);
    } else {
        // Distinct draws from the interconnect RNG stream; rejection on
        // repeats terminates because count <= pop/2 by the clamp contract.
        while (victims.size() < count) {
            const std::size_t slot = rng.next16() % pop.size();
            if (std::find(victims.begin(), victims.end(), slot) == victims.end())
                victims.push_back(slot);
        }
    }
    return victims;
}

struct Import {
    std::uint8_t from = 0;
    std::uint8_t src_slot = 0;
    core::Member member{};
};

void emit_imports(MigrationPlan& plan, std::uint8_t dst,
                  const std::vector<core::Member>& dst_pop, const std::vector<Import>& imports,
                  const MigrationConfig& eff, core::RngState& rng, std::uint32_t gen) {
    const std::vector<std::size_t> victims =
        pick_victims(dst_pop, static_cast<unsigned>(imports.size()), eff.policy, rng);
    for (std::size_t r = 0; r < imports.size(); ++r) {
        MigrationRecord rec;
        rec.gen = gen;
        rec.from = imports[r].from;
        rec.to = dst;
        rec.src_slot = imports[r].src_slot;
        rec.dst_slot = static_cast<std::uint8_t>(victims[r]);
        rec.member = imports[r].member;
        rec.victim = dst_pop[victims[r]];
        plan.records.push_back(rec);
    }
}

}  // namespace

MigrationPlan plan_migration(const std::vector<std::vector<core::Member>>& pops,
                             Topology topology, const MigrationConfig& eff,
                             core::RngState& mig_rng, std::uint32_t gen) {
    MigrationPlan plan;
    const std::size_t n = pops.size();
    if (n < 2 || eff.count == 0) return plan;
    const std::size_t pop_size = pops[0].size();
    if (pop_size == 0) throw std::invalid_argument("plan_migration: empty subpopulation");
    for (const auto& p : pops)
        if (p.size() != pop_size)
            throw std::invalid_argument("plan_migration: unequal subpopulation sizes");
    const unsigned count = std::min<unsigned>(eff.count, static_cast<unsigned>(pop_size / 2));
    if (count == 0) return plan;

    // Capture every island's emigrant set BEFORE any import is planned, so
    // simultaneous exchange never cascades a migrant onward.
    std::vector<std::vector<Import>> outbound(n);
    for (std::size_t i = 0; i < n; ++i) {
        const std::vector<std::size_t> order = slots_best_first(pops[i]);
        for (unsigned r = 0; r < count; ++r)
            outbound[i].push_back(Import{static_cast<std::uint8_t>(i),
                                         static_cast<std::uint8_t>(order[r]),
                                         pops[i][order[r]]});
    }

    // Destinations visited in ascending island order — this fixes the
    // consumption order of the random-replacement RNG stream.
    if (topology == Topology::kRing) {
        for (std::size_t dst = 0; dst < n; ++dst) {
            const std::size_t src = (dst + n - 1) % n;
            emit_imports(plan, static_cast<std::uint8_t>(dst), pops[dst], outbound[src], eff,
                         mig_rng, gen);
        }
    } else {  // star, hub = island 0
        // Hub imports the best `count` of the pooled spoke emigrants
        // (ties: source island ascending, then slot ascending — both
        // already the iteration order below).
        std::vector<Import> pooled;
        for (std::size_t s = 1; s < n; ++s)
            pooled.insert(pooled.end(), outbound[s].begin(), outbound[s].end());
        std::stable_sort(pooled.begin(), pooled.end(), [](const Import& a, const Import& b) {
            return a.member.fitness > b.member.fitness;
        });
        pooled.resize(count);
        emit_imports(plan, 0, pops[0], pooled, eff, mig_rng, gen);
        // Every spoke receives the hub's pre-import top-`count` broadcast.
        for (std::size_t dst = 1; dst < n; ++dst)
            emit_imports(plan, static_cast<std::uint8_t>(dst), pops[dst], outbound[0], eff,
                         mig_rng, gen);
    }
    return plan;
}

void apply_plan(const MigrationPlan& plan, std::vector<std::vector<core::Member>>& pops) {
    for (const MigrationRecord& rec : plan.records) pops[rec.to][rec.dst_slot] = rec.member;
}

std::vector<std::uint32_t> migration_boundaries(const MigrationConfig& eff, unsigned islands,
                                                std::uint32_t n_gens) {
    std::vector<std::uint32_t> out;
    if (islands < 2 || eff.interval == 0 || eff.count == 0) return out;
    for (std::uint32_t g = eff.interval; g < n_gens; g += eff.interval) out.push_back(g);
    return out;
}

}  // namespace gaip::island
