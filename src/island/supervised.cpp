#include "island/supervised.hpp"

#include <algorithm>
#include <atomic>
#include <stdexcept>

#include "island/rtl_driver.hpp"
#include "util/worker_pool.hpp"

namespace gaip::island {

namespace {

using detail::RtlIsland;
using supervisor::AttemptInfo;
using supervisor::Checkpoint;
using supervisor::Rung;

/// One supervised island: the live system plus its rollback anchor and the
/// trajectory stitched across system replacements.
struct SupIsland {
    RtlIsland isl;
    Checkpoint cp;                      ///< last good barrier snapshot
    std::int64_t last_traj_gen = -1;    ///< highest generation appended
    std::vector<std::uint16_t> traj;
    std::uint64_t cycle_base = 0;       ///< cumulative run cycles (hook numbering)
};

/// Append the monitor history entries the current system produced since the
/// last stitch. Survives system replacement on rollback: a restored run's
/// fresh monitor only ever sees generations past the checkpoint.
void stitch_trajectory(SupIsland& m) {
    for (const core::GenerationStats& gs : m.isl.sys->monitor().history()) {
        if (static_cast<std::int64_t>(gs.gen) > m.last_traj_gen) {
            m.traj.push_back(gs.best_fit);
            m.last_traj_gen = gs.gen;
        }
    }
}

}  // namespace

SupervisedIslandSystem::SupervisedIslandSystem(SupervisedIslandConfig cfg)
    : cfg_(std::move(cfg)) {
    if (cfg_.islands.backend != supervisor::BackendKind::kRtl)
        throw std::invalid_argument(
            "SupervisedIslandSystem: checkpoint rollback requires the RT-level substrate");
    // Reuse IslandSystem's structural validation and derived schedule.
    IslandSystem probe(cfg_.islands);
    eff_params_ = probe.params();
    eff_mig_ = probe.effective_migration();
    seeds_ = probe.seeds();
    boundaries_ = probe.boundaries();
}

void SupervisedIslandSystem::emit(trace::TraceEvent e) const {
    if (cfg_.sink != nullptr) cfg_.sink->on_event(e);
}

SupervisedIslandSystem::ReplicaOutcome SupervisedIslandSystem::run_replica(
    unsigned replica, SupervisedIslandReport& rep) {
    const unsigned n = cfg_.islands.islands;
    // A fault-injection hook must never run concurrently.
    const unsigned threads = cfg_.hook ? 1 : cfg_.islands.threads;
    const std::uint64_t per_gen = detail::per_generation_cycles(eff_params_);

    ReplicaOutcome out;
    std::vector<SupIsland> isls(n);
    std::atomic<bool> init_ok{true};
    util::parallel_for_n(threads, n, [&](std::size_t i) {
        detail::build_rtl_island(isls[i].isl, cfg_.islands, eff_params_, seeds_[i]);
        // Drain the start pulse before the gen-0 anchor: restores must not
        // re-trigger the RNG's seed-reload edge.
        if (!detail::init_rtl_island(isls[i].isl, /*drain_start_pulse=*/true)) init_ok = false;
    });
    if (!init_ok.load()) {
        out.abort_reason = "island init handshake timed out";
        return out;
    }
    for (unsigned i = 0; i < n; ++i) {
        isls[i].cp = supervisor::capture_checkpoint(*isls[i].isl.sys, 0);
        ++rep.checkpoints;
    }

    core::RngState mig_rng(eff_mig_.mig_seed);
    std::vector<MigrationRecord> migrations;
    std::vector<std::uint64_t> seg(n, 0);
    std::vector<std::string> fail(n);
    std::uint32_t prev_gen = 0;

    // One island's segment, with the rollback ladder: on a missed budget,
    // rebuild a fresh system, restore the island's last checkpoint, and
    // re-run with a doubled budget — only this island moves; the others
    // are already parked at the barrier.
    auto run_segment = [&](unsigned i, std::uint32_t target, std::uint32_t gens) {
        const std::uint64_t budget0 =
            cfg_.watchdog_factor * ((std::uint64_t{gens} + 1) * per_gen + 10'000);
        AttemptInfo info;
        info.replica = replica;
        info.attempt = i;  // island index (see SupervisedIslandConfig::hook)
        for (unsigned attempt = 0; attempt <= cfg_.max_retries; ++attempt) {
            info.rung = attempt == 0 ? Rung::kPrimary : Rung::kRetry;
            info.resumed = attempt > 0;
            info.resumed_gen = attempt > 0 ? isls[i].cp.generation : 0;
            const std::uint64_t budget = budget0 << attempt;
            const detail::AdvanceResult a =
                detail::advance_rtl(isls[i].isl, target, budget, cfg_.hook ? &cfg_.hook : nullptr,
                                    &info, isls[i].cycle_base);
            if (a.ok) {
                seg[i] = a.cycles;
                isls[i].cycle_base += a.cycles;
                return;
            }
            ++rep.watchdog_trips;
            emit(trace::TraceEvent(trace::kind::kWatchdogTrip, 0, isls[i].cycle_base + a.cycles)
                     .add("replica", std::uint64_t{replica})
                     .add("island", std::uint64_t{i})
                     .add("budget", budget)
                     .add("state", std::uint64_t{a.final_state}));
            if (attempt == cfg_.max_retries) break;
            // Roll back ONLY this island: fresh system, restored snapshot.
            detail::build_rtl_island(isls[i].isl, cfg_.islands, eff_params_, seeds_[i]);
            if (!detail::init_rtl_island(isls[i].isl, /*drain_start_pulse=*/true)) {
                fail[i] = "rollback init handshake timed out";
                return;
            }
            supervisor::restore_checkpoint(*isls[i].isl.sys, isls[i].cp);
            ++rep.rollbacks;
            emit(trace::TraceEvent(trace::kind::kIslandRollback, 0, isls[i].cycle_base)
                     .add("replica", std::uint64_t{replica})
                     .add("island", std::uint64_t{i})
                     .add("gen", std::uint64_t{isls[i].cp.generation})
                     .add("attempt", std::uint64_t{attempt + 1}));
        }
        fail[i] = "island exhausted its rollback budget";
    };

    auto run_all = [&](std::uint32_t target, std::uint32_t gens, bool barrier) -> bool {
        util::parallel_for_n(threads, n, [&](std::size_t i) {
            run_segment(static_cast<unsigned>(i), target, gens);
        });
        for (unsigned i = 0; i < n; ++i)
            if (!fail[i].empty()) {
                out.abort_reason = "island " + std::to_string(i) + ": " + fail[i];
                return false;
            }
        std::uint64_t seg_max = 0;
        for (unsigned i = 0; i < n; ++i) seg_max = std::max(seg_max, seg[i]);
        for (unsigned i = 0; i < n; ++i) {
            isls[i].isl.run_cycles += seg[i];
            if (barrier) isls[i].isl.stall_cycles += seg_max - seg[i];
            stitch_trajectory(isls[i]);
        }
        return true;
    };

    for (const std::uint32_t g : boundaries_) {
        if (!run_all(g, g - prev_gen, /*barrier=*/true)) return out;
        prev_gen = g;

        std::vector<std::vector<core::Member>> pops(n);
        std::vector<bool> banks(n);
        for (unsigned i = 0; i < n; ++i) {
            banks[i] = isls[i].isl.sys->core().current_bank();
            pops[i] = detail::members_from_memory(isls[i].isl.sys->memory(), banks[i],
                                                  eff_params_.pop_size);
        }
        const MigrationPlan plan = plan_migration(pops, cfg_.islands.topology, eff_mig_,
                                                  mig_rng, g);
        for (const MigrationRecord& rec : plan.records)
            isls[rec.to].isl.sys->memory().poke(
                mem::bank_address(banks[rec.to], rec.dst_slot),
                mem::pack_member(rec.member.candidate, rec.member.fitness));
        migrations.insert(migrations.end(), plan.records.begin(), plan.records.end());
        emit(trace::TraceEvent(trace::kind::kIslandBarrier, 0, g)
                 .add("replica", std::uint64_t{replica})
                 .add("gen", std::uint64_t{g})
                 .add("migrants", std::uint64_t{plan.records.size()}));

        // New rollback anchors: the post-migration park point, so a retry
        // re-runs the segment with its imports already in place.
        for (unsigned i = 0; i < n; ++i) {
            isls[i].cp = supervisor::capture_checkpoint(*isls[i].isl.sys, isls[i].cycle_base);
            ++rep.checkpoints;
            emit(trace::TraceEvent(trace::kind::kSupCheckpoint, 0, isls[i].cycle_base)
                     .add("replica", std::uint64_t{replica})
                     .add("island", std::uint64_t{i})
                     .add("gen", std::uint64_t{g}));
        }
    }
    if (!run_all(UINT32_MAX, eff_params_.n_gens - prev_gen, /*barrier=*/false)) return out;

    IslandResult& r = out.result;
    r.effective = eff_mig_;
    r.boundaries = boundaries_;
    r.migrations = std::move(migrations);
    r.islands.resize(n);
    for (unsigned i = 0; i < n; ++i) {
        IslandStats& s = r.islands[i];
        s.seed = seeds_[i];
        s.best_fitness = isls[i].isl.sys->best_fitness();
        s.best_candidate = isls[i].isl.sys->best_candidate();
        s.generations = isls[i].isl.sys->core().generation();
        s.evaluations = isls[i].isl.sys->fitness_evaluations();
        s.run_cycles = isls[i].isl.run_cycles;
        s.stall_cycles = isls[i].isl.stall_cycles;
        s.best_trajectory = std::move(isls[i].traj);
        if (s.best_fitness > r.best_fitness) {
            r.best_fitness = s.best_fitness;
            r.best_candidate = s.best_candidate;
            r.best_island = i;
        }
        r.makespan_cycles = std::max(r.makespan_cycles, s.run_cycles + s.stall_cycles);
    }
    r.bus_interval_reg = isls[0].isl.bus->interval_reg();
    r.bus_count_reg = isls[0].isl.bus->count_policy_reg();
    out.ok = true;
    return out;
}

SupervisedIslandReport SupervisedIslandSystem::run() {
    SupervisedIslandReport rep;
    std::vector<ReplicaOutcome> outcomes;
    for (unsigned r = 0; r < std::max(1u, cfg_.nmr); ++r)
        outcomes.push_back(run_replica(r, rep));

    // Majority vote on the delivered (best fitness, best candidate) pair
    // among the replicas that finished; plurality with lowest-replica tie
    // break (replicas are bit-exact absent faults, so disagreement means
    // an undetected upset slipped through a ladder).
    unsigned winner = 0, winner_votes = 0;
    for (unsigned a = 0; a < outcomes.size(); ++a) {
        if (!outcomes[a].ok) continue;
        unsigned votes = 0;
        for (const ReplicaOutcome& b : outcomes)
            if (b.ok && b.result.best_fitness == outcomes[a].result.best_fitness &&
                b.result.best_candidate == outcomes[a].result.best_candidate)
                ++votes;
        if (votes > winner_votes) {
            winner = a;
            winner_votes = votes;
        }
    }
    if (winner_votes == 0) {
        rep.status = supervisor::Status::kAborted;
        for (const ReplicaOutcome& o : outcomes)
            if (!o.abort_reason.empty()) {
                rep.abort_reason = o.abort_reason;
                break;
            }
        emit(trace::TraceEvent(trace::kind::kSupAbort, 0, 0).add("reason", rep.abort_reason));
        return rep;
    }
    rep.status = supervisor::Status::kOk;
    rep.result = std::move(outcomes[winner].result);
    rep.best_fitness = rep.result.best_fitness;
    rep.best_candidate = rep.result.best_candidate;
    if (outcomes.size() > 1) {
        rep.voted = true;
        rep.vote_agree = winner_votes;
        emit(trace::TraceEvent(trace::kind::kSupVote, 0, 0)
                 .add("replicas", std::uint64_t{outcomes.size()})
                 .add("agree", std::uint64_t{winner_votes})
                 .add("best_fit", std::uint64_t{rep.best_fitness}));
    }
    emit(trace::TraceEvent(trace::kind::kSupResult, 0, 0)
             .add("status", std::string(supervisor::status_name(rep.status)))
             .add("best_fit", std::uint64_t{rep.best_fitness})
             .add("rollbacks", std::uint64_t{rep.rollbacks}));
    return rep;
}

}  // namespace gaip::island
