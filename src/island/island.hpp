// IslandSystem: an N-core island-model GA built from the repo's GA engine.
// N engines run disjoint subpopulations of the same problem; a cycle-level
// migration interconnect parks every island at a generation-synchronous
// barrier each `interval` generations, exchanges the best members along a
// ring or star network, and releases the cores. The same system runs on
// three bit-exact substrates, selected by supervisor::BackendKind:
//
//   kRtl         N complete system::GaSystem instances (RT-level core, RNG,
//                memory, init/app modules), each with a MigrationRegisterBus
//                snooping its init handshake; islands advance cycle by cycle
//                and park at the kGenCheck boundary (the single-cycle
//                monitor-pulse window) while the interconnect pokes the
//                current population bank through the simulator backdoor;
//   kBehavioral  N core::BehavioralEngine instances stepped generation by
//                generation — the executable spec of the same exchange;
//   kGateLane    one bench::BatchGateRunner lane block (the compiled
//                gate-level netlist, interpreter or JIT backend): island i
//                is SIMD lane i, the barrier is per-lane clock gating
//                (CompiledNetlist::clock_gated), and migration pokes the
//                lane's software GA memory.
//
// Because all three substrates extract populations at the same observation
// point (the post-E2 monitor-capture edge, current bank), feed them through
// the one pure plan_migration() spec, and poke memory with the identical
// semantics (stale fit_sum, untouched best registers), the per-island
// trajectories AND the migration payloads are byte-identical everywhere —
// the property tests/island/test_island_differential.cpp pins.
//
// Barrier-to-barrier segments are data-independent across islands, so the
// RT-level and behavioral drivers parallelize them over `threads` workers
// (util::parallel_for_n) without changing a single bit of the result; the
// gate-lane driver is SIMD-parallel by construction and models the stall
// cycles a real N-core fabric would spend waiting at the barrier.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/params.hpp"
#include "fitness/functions.hpp"
#include "gates/compiled.hpp"
#include "island/migration.hpp"
#include "prng/rng_module.hpp"
#include "rtl/module.hpp"
#include "rtl/signal.hpp"
#include "supervisor/supervisor.hpp"
#include "trace/event.hpp"

namespace gaip::island {

/// Init-handshake nets one interconnect port snoops (a subset of the
/// CoreWireBundle the init module drives).
struct MigrationBusPorts {
    rtl::Wire<bool>& ga_load;
    rtl::Wire<std::uint8_t>& index;
    rtl::Wire<std::uint16_t>& value;
    rtl::Wire<bool>& data_valid;
};

/// The interconnect's programmable-register file, one port per island: a
/// pure bus snoop that latches the index-6/7 extension writes of the init
/// handshake, exactly like the RNG module latches the seed write. The GA
/// core ACKs these indices without touching any core register, so the bus
/// rides the existing two-way handshake unchanged.
class MigrationRegisterBus final : public rtl::Module {
public:
    explicit MigrationRegisterBus(MigrationBusPorts ports)
        : Module("migration_bus"), p_(ports) {
        attach_all(interval_, count_policy_);
        sense();  // sampling snoop: no eval(), registers load on clock edges
    }

    void tick() override {
        if (!p_.ga_load.read() || !p_.data_valid.read()) return;
        switch (p_.index.read() & 0x7) {
            case kMigIntervalIndex: interval_.load(p_.value.read()); break;
            case kMigCountIndex: count_policy_.load(p_.value.read()); break;
            default: break;
        }
    }

    std::uint16_t interval_reg() const noexcept { return interval_.read(); }
    std::uint16_t count_policy_reg() const noexcept { return count_policy_.read(); }
    /// The raw register view, decoded (clamp against pop size separately).
    MigrationConfig decoded() const noexcept {
        return decode_registers(interval_.read(), count_policy_.read());
    }

private:
    MigrationBusPorts p_;
    rtl::Reg<std::uint16_t> interval_{"mig_interval", 0};
    rtl::Reg<std::uint16_t> count_policy_{"mig_count_policy", 0};
};

struct IslandConfig {
    fitness::FitnessId fn = fitness::FitnessId::kMBf6_2;
    /// Per-island GA parameters: pop_size is the SUBpopulation each island
    /// evolves; seed is the base seed per-island seeds derive from when
    /// `seeds` is empty.
    core::GaParameters base{};
    unsigned islands = 4;
    /// Per-island seeds (size == islands), or empty to derive them from
    /// base.seed deterministically.
    std::vector<std::uint16_t> seeds;
    Topology topology = Topology::kRing;
    /// Requested migration registers — the RAW values the init handshake
    /// programs; every substrate applies the same decode + clamp.
    MigrationConfig migration{};
    supervisor::BackendKind backend = supervisor::BackendKind::kBehavioral;
    /// Gate-lane substrate knobs (ignored elsewhere).
    gates::Backend gate_backend = gates::Backend::kAuto;
    unsigned words = 0;  ///< lane-block width in 64-lane words (0 = smallest fit)
    /// Worker threads for the barrier-to-barrier segments of the RT-level
    /// and behavioral drivers (bit-identical for any value; 1 = sequential).
    unsigned threads = 1;
    prng::RngKind rng_kind = prng::RngKind::kCellularAutomaton;
    /// Telemetry for the island_* interconnect events (borrowed; may be null).
    trace::TraceSink* sink = nullptr;
};

/// Per-island outcome and accounting.
struct IslandStats {
    std::uint16_t seed = 0;
    std::uint16_t best_fitness = 0;
    std::uint16_t best_candidate = 0;
    std::uint32_t generations = 0;
    std::uint64_t evaluations = 0;
    /// GA cycles the island's core actually clocked (0 for behavioral).
    std::uint64_t run_cycles = 0;
    /// GA cycles spent clock-gated (RTL: idle) at migration barriers.
    std::uint64_t stall_cycles = 0;
    /// Best-ever fitness register at each generation 0..n_gens (the
    /// monitor-tap trajectory the differential harness compares).
    std::vector<std::uint16_t> best_trajectory;
};

struct IslandResult {
    std::uint16_t best_fitness = 0;
    std::uint16_t best_candidate = 0;
    unsigned best_island = 0;  ///< lowest island index achieving best_fitness
    /// Effective migration config every substrate ran: register decode +
    /// clamp of the requested values (mig_seed carried over).
    MigrationConfig effective{};
    std::vector<std::uint32_t> boundaries;
    /// Every migration of the run, in canonical order (boundary ascending,
    /// destination ascending, rank ascending) — byte-identical across
    /// substrates.
    std::vector<MigrationRecord> migrations;
    std::vector<IslandStats> islands;
    /// Wall GA cycles until the last island finished, barrier stalls
    /// included — the N-core makespan (0 for behavioral).
    std::uint64_t makespan_cycles = 0;
    /// What the RT-level MigrationRegisterBus latched off the handshake
    /// (mirrors the requested raw values; set on the RTL substrate only).
    std::uint16_t bus_interval_reg = 0;
    std::uint16_t bus_count_reg = 0;
};

class IslandSystem {
public:
    /// Validates the structural config (C++-API path: throws
    /// std::invalid_argument on zero islands, a seed vector of the wrong
    /// size, a non-CA RNG on the gate substrate, or an oversized lane
    /// count). Migration register values are NOT structural — they clamp
    /// silently, like the hardware register path they model.
    explicit IslandSystem(IslandConfig cfg);

    const IslandConfig& config() const noexcept { return cfg_; }
    /// Resolved per-island parameters (preset-0 resolution of base).
    const core::GaParameters& params() const noexcept { return eff_params_; }
    const MigrationConfig& effective_migration() const noexcept { return eff_mig_; }
    const std::vector<std::uint16_t>& seeds() const noexcept { return seeds_; }
    const std::vector<std::uint32_t>& boundaries() const noexcept { return boundaries_; }

    /// Run the full island job on the configured substrate. Throws
    /// std::runtime_error if an island misses a barrier or completion
    /// within the cycle bound (the supervised wrapper turns that trip into
    /// a rollback instead; see supervised.hpp).
    IslandResult run();

private:
    IslandResult run_behavioral();
    IslandResult run_rtl();
    IslandResult run_gate();
    void emit(trace::TraceEvent e) const;
    void emit_boundary(std::uint32_t gen, const MigrationPlan& plan,
                       std::uint64_t makespan_so_far) const;
    void finalize(IslandResult& r) const;

    IslandConfig cfg_;
    core::GaParameters eff_params_{};
    MigrationConfig eff_mig_{};
    std::vector<std::uint16_t> seeds_;
    std::vector<std::uint32_t> boundaries_;
};

/// Convenience wrapper mirroring run_ga_system().
IslandResult run_island_system(const IslandConfig& cfg);

}  // namespace gaip::island
