#include "island/island.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "bench/gate_batch_runner.hpp"
#include "island/rtl_driver.hpp"
#include "mem/ga_memory.hpp"
#include "system/ga_system.hpp"
#include "util/worker_pool.hpp"

namespace gaip::island {

namespace {

using core::GaCore;
using detail::RtlIsland;

/// Deterministic per-island seed schedule when no explicit seeds are given.
std::vector<std::uint16_t> derive_seeds(std::uint16_t base, unsigned islands) {
    std::vector<std::uint16_t> seeds(islands);
    for (unsigned i = 0; i < islands; ++i) {
        std::uint16_t s =
            static_cast<std::uint16_t>(base ^ static_cast<std::uint16_t>(0x9E37u * i));
        if (s == 0) s = 1;
        seeds[i] = s;
    }
    return seeds;
}

}  // namespace

IslandSystem::IslandSystem(IslandConfig cfg) : cfg_(std::move(cfg)) {
    if (cfg_.islands == 0)
        throw std::invalid_argument("IslandSystem: need at least one island");
    if (cfg_.islands > bench::BatchGateRunner::kMaxLanes)
        throw std::invalid_argument("IslandSystem: island count exceeds the lane ceiling");
    if (!cfg_.seeds.empty() && cfg_.seeds.size() != cfg_.islands)
        throw std::invalid_argument("IslandSystem: seed vector size must equal island count");
    if (cfg_.backend == supervisor::BackendKind::kGateLane &&
        cfg_.rng_kind != prng::RngKind::kCellularAutomaton)
        throw std::invalid_argument("IslandSystem: the gate-lane substrate requires the CA RNG");

    eff_params_ = core::resolve_parameters(0, cfg_.base);
    // Every substrate runs the REGISTER view of the migration request:
    // 16-bit interval, 8-bit count + policy bit, then the silent clamp —
    // so an out-of-range request degrades identically everywhere.
    eff_mig_ = clamp_migration(
        decode_registers(cfg_.migration.interval, pack_count_policy(cfg_.migration)),
        eff_params_.pop_size);
    eff_mig_.mig_seed = cfg_.migration.mig_seed;
    seeds_ = cfg_.seeds.empty() ? derive_seeds(eff_params_.seed, cfg_.islands) : cfg_.seeds;
    boundaries_ = migration_boundaries(eff_mig_, cfg_.islands, eff_params_.n_gens);
}

void IslandSystem::emit(trace::TraceEvent e) const {
    if (cfg_.sink != nullptr) cfg_.sink->on_event(e);
}

void IslandSystem::emit_boundary(std::uint32_t gen, const MigrationPlan& plan,
                                 std::uint64_t makespan_so_far) const {
    if (cfg_.sink == nullptr) return;
    emit(trace::TraceEvent(trace::kind::kIslandBarrier, 0, makespan_so_far)
             .add("gen", std::uint64_t{gen})
             .add("islands", std::uint64_t{cfg_.islands})
             .add("migrants", std::uint64_t{plan.records.size()})
             .add("topology", std::string(topology_name(cfg_.topology))));
    for (const MigrationRecord& rec : plan.records)
        emit(trace::TraceEvent(trace::kind::kIslandMigrate, 0, makespan_so_far)
                 .add("gen", std::uint64_t{rec.gen})
                 .add("from", std::uint64_t{rec.from})
                 .add("to", std::uint64_t{rec.to})
                 .add("src_slot", std::uint64_t{rec.src_slot})
                 .add("dst_slot", std::uint64_t{rec.dst_slot})
                 .add("candidate", std::uint64_t{rec.member.candidate})
                 .add("fitness", std::uint64_t{rec.member.fitness}));
}

void IslandSystem::finalize(IslandResult& r) const {
    r.effective = eff_mig_;
    r.boundaries = boundaries_;
    r.best_fitness = 0;
    r.best_island = 0;
    for (unsigned i = 0; i < r.islands.size(); ++i) {
        const IslandStats& s = r.islands[i];
        if (s.best_fitness > r.best_fitness) {
            r.best_fitness = s.best_fitness;
            r.best_candidate = s.best_candidate;
            r.best_island = i;
        }
        r.makespan_cycles =
            std::max(r.makespan_cycles, s.run_cycles + s.stall_cycles);
        emit(trace::TraceEvent(trace::kind::kIslandStall, 0, s.stall_cycles)
                 .add("island", std::uint64_t{i})
                 .add("stall_cycles", s.stall_cycles));
        emit(trace::TraceEvent(trace::kind::kIslandDone, 0, s.run_cycles)
                 .add("island", std::uint64_t{i})
                 .add("best_fit", std::uint64_t{s.best_fitness})
                 .add("best_ind", std::uint64_t{s.best_candidate})
                 .add("gens", std::uint64_t{s.generations})
                 .add("evals", s.evaluations));
    }
}

IslandResult IslandSystem::run() {
    switch (cfg_.backend) {
        case supervisor::BackendKind::kBehavioral: return run_behavioral();
        case supervisor::BackendKind::kRtl: return run_rtl();
        case supervisor::BackendKind::kGateLane: return run_gate();
    }
    throw std::logic_error("IslandSystem: unknown backend");
}

IslandResult IslandSystem::run_behavioral() {
    const unsigned n = cfg_.islands;
    const fitness::FitnessId fn = cfg_.fn;
    const core::FitnessFn fitness = [fn](std::uint16_t x) { return fitness::fitness_u16(fn, x); };

    std::vector<std::unique_ptr<core::BehavioralEngine>> eng(n);
    for (unsigned i = 0; i < n; ++i) {
        core::GaParameters p = eff_params_;
        p.seed = seeds_[i];
        eng[i] = std::make_unique<core::BehavioralEngine>(p, fitness, cfg_.rng_kind,
                                                          /*keep_populations=*/false);
    }

    IslandResult r;
    core::RngState mig_rng(eff_mig_.mig_seed);
    for (const std::uint32_t g : boundaries_) {
        util::parallel_for_n(cfg_.threads, n, [&](std::size_t i) { eng[i]->run_to(g); });
        std::vector<std::vector<core::Member>> pops(n);
        for (unsigned i = 0; i < n; ++i) pops[i] = eng[i]->population();
        const MigrationPlan plan = plan_migration(pops, cfg_.topology, eff_mig_, mig_rng, g);
        for (const MigrationRecord& rec : plan.records)
            eng[rec.to]->poke_member(rec.dst_slot, rec.member);
        emit_boundary(g, plan, 0);
        r.migrations.insert(r.migrations.end(), plan.records.begin(), plan.records.end());
    }
    util::parallel_for_n(cfg_.threads, n,
                         [&](std::size_t i) { eng[i]->run_to(eff_params_.n_gens); });

    r.islands.resize(n);
    for (unsigned i = 0; i < n; ++i) {
        IslandStats& s = r.islands[i];
        s.seed = seeds_[i];
        s.best_fitness = eng[i]->best_fitness();
        s.best_candidate = eng[i]->best_candidate();
        s.generations = eng[i]->generation();
        s.evaluations = eng[i]->evaluations();
        for (const core::GenerationStats& gs : eng[i]->history())
            s.best_trajectory.push_back(gs.best_fit);
    }
    finalize(r);
    return r;
}

IslandResult IslandSystem::run_rtl() {
    const unsigned n = cfg_.islands;
    const std::uint64_t bound = detail::island_cycle_bound(eff_params_);

    std::vector<RtlIsland> isl(n);
    for (unsigned i = 0; i < n; ++i)
        detail::build_rtl_island(isl[i], cfg_, eff_params_, seeds_[i]);

    // Init handshakes (uncounted, like the paper's on-fabric GA counter
    // that starts at the start_GA pulse).
    util::parallel_for_n(cfg_.threads, n, [&](std::size_t i) {
        if (!detail::init_rtl_island(isl[i], /*drain_start_pulse=*/false))
            throw std::runtime_error("IslandSystem: island init handshake timed out");
    });

    IslandResult r;
    core::RngState mig_rng(eff_mig_.mig_seed);
    std::vector<std::uint64_t> seg(n, 0);
    std::uint64_t makespan = 0;
    // At a barrier every island idles (clock-gated in hardware) until the
    // slowest of the segment arrives; after the LAST barrier there is no
    // further sync, so the final segment accrues no stall cycles.
    auto account_segment = [&](bool barrier) {
        std::uint64_t seg_max = 0;
        for (unsigned i = 0; i < n; ++i) seg_max = std::max(seg_max, seg[i]);
        for (unsigned i = 0; i < n; ++i) {
            isl[i].run_cycles += seg[i];
            if (barrier) isl[i].stall_cycles += seg_max - seg[i];
        }
        makespan += seg_max;
    };
    auto advance_all = [&](std::uint32_t target) {
        util::parallel_for_n(cfg_.threads, n, [&](std::size_t i) {
            const detail::AdvanceResult a = detail::advance_rtl(isl[i], target, bound);
            if (!a.ok)
                throw std::runtime_error("IslandSystem: island missed its cycle bound (rtl)");
            seg[i] = a.cycles;
        });
    };

    for (const std::uint32_t g : boundaries_) {
        advance_all(g);
        account_segment(/*barrier=*/true);
        std::vector<std::vector<core::Member>> pops(n);
        std::vector<bool> banks(n);
        for (unsigned i = 0; i < n; ++i) {
            banks[i] = isl[i].sys->core().current_bank();
            pops[i] =
                detail::members_from_memory(isl[i].sys->memory(), banks[i], eff_params_.pop_size);
        }
        const MigrationPlan plan = plan_migration(pops, cfg_.topology, eff_mig_, mig_rng, g);
        for (const MigrationRecord& rec : plan.records)
            isl[rec.to].sys->memory().poke(
                mem::bank_address(banks[rec.to], rec.dst_slot),
                mem::pack_member(rec.member.candidate, rec.member.fitness));
        emit_boundary(g, plan, makespan);
        r.migrations.insert(r.migrations.end(), plan.records.begin(), plan.records.end());
    }
    advance_all(UINT32_MAX);
    account_segment(/*barrier=*/false);

    r.islands.resize(n);
    for (unsigned i = 0; i < n; ++i) {
        IslandStats& s = r.islands[i];
        s.seed = seeds_[i];
        s.best_fitness = isl[i].sys->best_fitness();
        s.best_candidate = isl[i].sys->best_candidate();
        s.generations = isl[i].sys->core().generation();
        s.evaluations = isl[i].sys->fitness_evaluations();
        s.run_cycles = isl[i].run_cycles;
        s.stall_cycles = isl[i].stall_cycles;
        for (const core::GenerationStats& gs : isl[i].sys->monitor().history())
            s.best_trajectory.push_back(gs.best_fit);
    }
    r.bus_interval_reg = isl[0].bus->interval_reg();
    r.bus_count_reg = isl[0].bus->count_policy_reg();
    finalize(r);
    return r;
}

IslandResult IslandSystem::run_gate() {
    const unsigned n = cfg_.islands;
    std::vector<core::GaParameters> lane_params(n, eff_params_);
    for (unsigned i = 0; i < n; ++i) lane_params[i].seed = seeds_[i];

    bench::BatchGateRunner runner(cfg_.fn, lane_params, cfg_.words, cfg_.gate_backend);
    std::vector<trace::MemorySink> sinks(n);
    for (unsigned i = 0; i < n; ++i) {
        runner.append_lane_write(i, kMigIntervalIndex, cfg_.migration.interval);
        runner.append_lane_write(i, kMigCountIndex, pack_count_policy(cfg_.migration));
        runner.set_lane_sink(i, &sinks[i]);
    }
    runner.begin_run();
    const std::uint64_t bound = runner.default_cycle_bound() * 4;

    IslandResult r;
    core::RngState mig_rng(eff_mig_.mig_seed);
    for (const std::uint32_t g : boundaries_) {
        runner.arm_generation_barrier(g);
        const std::size_t pending = runner.run_to_barrier(bound);
        if (pending != 0)
            throw std::runtime_error("IslandSystem: " + std::to_string(pending) +
                                     " lane(s) missed the migration barrier (gate)");
        std::vector<std::vector<core::Member>> pops(n);
        std::vector<bool> banks(n);
        for (unsigned i = 0; i < n; ++i) {
            banks[i] = runner.lane_bank(i);
            pops[i].resize(eff_params_.pop_size);
            for (unsigned j = 0; j < eff_params_.pop_size; ++j) {
                const std::uint32_t word = runner.peek_lane_mem(
                    i, mem::bank_address(banks[i], static_cast<std::uint8_t>(j)));
                pops[i][j] =
                    core::Member{mem::member_candidate(word), mem::member_fitness(word)};
            }
        }
        const MigrationPlan plan = plan_migration(pops, cfg_.topology, eff_mig_, mig_rng, g);
        for (const MigrationRecord& rec : plan.records)
            runner.poke_lane_mem(rec.to, mem::bank_address(banks[rec.to], rec.dst_slot),
                                 mem::pack_member(rec.member.candidate, rec.member.fitness));
        emit_boundary(g, plan, runner.cycles());
        r.migrations.insert(r.migrations.end(), plan.records.begin(), plan.records.end());
        runner.release_lanes();
    }
    runner.disarm_generation_barrier();
    if (runner.run_to_barrier(bound) != 0)
        throw std::runtime_error("IslandSystem: lane(s) missed the completion bound (gate)");

    r.islands.resize(n);
    for (unsigned i = 0; i < n; ++i) {
        IslandStats& s = r.islands[i];
        const bench::BatchLaneResult& lr = runner.lane_result(i);
        s.seed = seeds_[i];
        s.best_fitness = lr.best_fitness;
        s.best_candidate = lr.best_candidate;
        s.generations = lr.generations;
        s.evaluations = lr.evaluations;
        s.stall_cycles = runner.lane_stall_cycles(i);
        s.run_cycles = lr.ga_cycles - s.stall_cycles;
        for (const trace::TraceEvent& e : sinks[i].events())
            if (e.kind == trace::kind::kGeneration)
                s.best_trajectory.push_back(static_cast<std::uint16_t>(e.u64("best_fit")));
    }
    finalize(r);
    return r;
}

IslandResult run_island_system(const IslandConfig& cfg) {
    IslandSystem sys(cfg);
    return sys.run();
}

}  // namespace gaip::island
