// Migration spec of the island-model GA: the pure, substrate-independent
// definition of what one migration boundary does. Every substrate driver
// (RT-level GaSystem array, behavioral engines, gate-level lane block)
// extracts its islands' populations at a generation-synchronous barrier,
// calls plan_migration() to obtain the exact member movements, and applies
// them through its own memory backdoor — so the migrated payloads and every
// downstream trajectory are byte-identical across substrates by
// construction (asserted in tests/island/).
//
// Hardware model (grounded in Torquato & Fernandes' multi-core FPGA GA,
// PAPERS.md): N GA engines run disjoint subpopulations; a migration
// interconnect wakes at every `interval` generations, copies each island's
// best `count` members to its neighbor(s), and overwrites victims chosen by
// the replacement policy. The interconnect owns three programmable values
// carried over the same init handshake as the Table III parameters:
//
//   index 6   migration interval, 16 bits (0 = migration off)
//   index 7   bits [7:0] emigrant count, bit [8] replacement policy
//             (0 = worst-replaced, 1 = random-replaced); upper bits ignored
//
// The GA core ACKs every 3-bit index and latches registers only for 0..5,
// so the extension writes ride the handshake unchanged; the interconnect
// snoops the bus exactly like the RNG module snoops the seed write
// (MigrationRegisterBus in island.hpp).
//
// Clamp contract (see DESIGN.md): values arriving over the REGISTER path
// clamp silently, like the pop-size register — the effective emigrant count
// saturates at min(kMaxEmigrants, pop_size / 2) so migration can never
// replace the majority of a subpopulation. Structural errors in the C++
// API (zero islands, seed-vector size mismatch, ...) throw
// std::invalid_argument instead; they have no hardware register analog.
//
// Migration semantics shared by all substrates:
//   * migration touches ONLY the current population bank, at the boundary
//     between generations; the core's fit_sum register stays STALE until
//     the next generation completes (the next selection threshold uses the
//     pre-migration sum while the scan reads post-migration fitness
//     values), and the best-ever registers are untouched — a migrant
//     enters an island's best tracking only via an evaluated offspring;
//   * emigrants are COPIES of the island's top-`count` members (fitness
//     descending, slot ascending on ties), captured before any import is
//     applied, so simultaneous exchange can never cascade;
//   * victims are chosen per destination on its pre-migration population:
//     worst-replaced takes the bottom-`count` (fitness ascending, slot
//     DESCENDING on ties — the slot-0 elite copy survives longest);
//     random-replaced draws `count` distinct slots from the interconnect's
//     own CA RNG stream (destinations visited in ascending island order);
//   * ring topology: island i imports from island (i-1+N) mod N;
//   * star topology: every spoke sends its top-`count` to the hub (island
//     0), which imports the best `count` of the pooled candidates (ties:
//     source island ascending, then slot ascending) and broadcasts its own
//     pre-import top-`count` back to every spoke.
#pragma once

#include <cstdint>
#include <vector>

#include "core/behavioral.hpp"
#include "core/params.hpp"

namespace gaip::island {

/// Interconnect shapes of the migration network.
enum class Topology : std::uint8_t { kRing = 0, kStar = 1 };

inline const char* topology_name(Topology t) noexcept {
    switch (t) {
        case Topology::kRing: return "ring";
        case Topology::kStar: return "star";
    }
    return "?";
}

/// Who an arriving migrant overwrites.
enum class ReplacePolicy : std::uint8_t { kWorst = 0, kRandom = 1 };

inline const char* policy_name(ReplacePolicy p) noexcept {
    switch (p) {
        case ReplacePolicy::kWorst: return "worst";
        case ReplacePolicy::kRandom: return "random";
    }
    return "?";
}

/// Init-handshake indices of the interconnect's extension registers.
inline constexpr std::uint8_t kMigIntervalIndex = 6;
inline constexpr std::uint8_t kMigCountIndex = 7;

/// Hardware ceiling on emigrants per island per boundary (register clamp).
inline constexpr unsigned kMaxEmigrants = 16;

/// The three programmable migration values (plus the interconnect-local
/// RNG seed, which is a construction-time constant like a netlist generic,
/// not a bus register).
struct MigrationConfig {
    std::uint16_t interval = 0;  ///< generations between boundaries (0 = off)
    std::uint16_t count = 1;     ///< requested emigrants per island (clamped)
    ReplacePolicy policy = ReplacePolicy::kWorst;
    std::uint16_t mig_seed = 0x5EED;  ///< interconnect CA-RNG seed (kRandom)

    friend bool operator==(const MigrationConfig&, const MigrationConfig&) = default;
};

/// Pack count + policy into the index-7 register value.
constexpr std::uint16_t pack_count_policy(const MigrationConfig& cfg) noexcept {
    return static_cast<std::uint16_t>((cfg.count & 0xFF) |
                                      (cfg.policy == ReplacePolicy::kRandom ? 0x100 : 0));
}

/// Decode the two register values (raw bus view; clamp separately).
constexpr MigrationConfig decode_registers(std::uint16_t interval_reg,
                                           std::uint16_t count_reg) noexcept {
    MigrationConfig cfg;
    cfg.interval = interval_reg;
    cfg.count = static_cast<std::uint16_t>(count_reg & 0xFF);
    cfg.policy = (count_reg & 0x100) != 0 ? ReplacePolicy::kRandom : ReplacePolicy::kWorst;
    return cfg;
}

/// Register-path clamp: the effective emigrant count saturates at
/// min(kMaxEmigrants, pop_size / 2). Silent, like the pop-size clamp.
constexpr MigrationConfig clamp_migration(const MigrationConfig& raw,
                                          std::uint8_t pop_size) noexcept {
    MigrationConfig eff = raw;
    const unsigned cap =
        kMaxEmigrants < static_cast<unsigned>(pop_size / 2) ? kMaxEmigrants : pop_size / 2u;
    if (eff.count > cap) eff.count = static_cast<std::uint16_t>(cap);
    return eff;
}

/// One member movement at one boundary — the migrated-individual payload
/// the differential harness compares byte-for-byte across substrates.
struct MigrationRecord {
    std::uint32_t gen = 0;        ///< boundary generation
    std::uint8_t from = 0;        ///< source island
    std::uint8_t to = 0;          ///< destination island
    std::uint8_t src_slot = 0;    ///< emigrant's slot in the source bank
    std::uint8_t dst_slot = 0;    ///< victim slot overwritten at the destination
    core::Member member{};        ///< migrant payload (candidate + fitness)
    core::Member victim{};        ///< pre-migration member it replaced

    friend bool operator==(const MigrationRecord&, const MigrationRecord&) = default;
};

/// All movements of one boundary, in the canonical deterministic order:
/// destination islands ascending, import rank ascending within an island.
struct MigrationPlan {
    std::vector<MigrationRecord> records;
};

/// THE migration spec: compute one boundary's plan from the pre-migration
/// populations. `eff` must already be clamped (clamp_migration); `mig_rng`
/// is the interconnect's persistent RNG stream, advanced only by the
/// random-replacement draws. Returns an empty plan for fewer than two
/// islands or a zero emigrant count. Throws std::invalid_argument if the
/// subpopulations are not all the same nonzero size.
MigrationPlan plan_migration(const std::vector<std::vector<core::Member>>& pops,
                             Topology topology, const MigrationConfig& eff,
                             core::RngState& mig_rng, std::uint32_t gen);

/// Apply a plan to the populations it was computed from. Records reference
/// pre-migration state only, so application order cannot cascade.
void apply_plan(const MigrationPlan& plan, std::vector<std::vector<core::Member>>& pops);

/// The migration boundaries of a run: every multiple of `interval` in
/// (0, n_gens). Empty when migration is off or there is a single island.
std::vector<std::uint32_t> migration_boundaries(const MigrationConfig& eff, unsigned islands,
                                                std::uint32_t n_gens);

}  // namespace gaip::island
