// gaip-trace — record, filter, and diff run-telemetry streams.
//
//   gaip-trace record --fitness mBF6_2 --pop 64 --gens 64 -o run.jsonl --vcd run.vcd
//   gaip-trace record --backend lanes --fitness OneMax -o lanes.jsonl
//   gaip-trace record --flip best_fit:3:100 -o seu.jsonl
//   gaip-trace filter run.jsonl --kind generation,done --limit 10
//   gaip-trace diff rtl.jsonl lanes.jsonl --ignore rng_draws,crossovers,mutations
//
// `record` replays the full system flow (init handshake, start pulse,
// optimization) on the chosen substrate and streams the telemetry events to
// a JSONL file; `--vcd` additionally dumps the waveform. `--flip reg:bit:c`
// records a faulted run instead: the SEU layer plants the flip and the
// stream gains `fault_inject` and `divergence` events.
//
// `diff` compares two streams structurally (timestamps/cycles ignored
// unless --strict) and reports the first divergence.
//
// Exit status: 0 = success / streams match, 1 = streams differ, 2 = error.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "bench/gate_batch_runner.hpp"
#include "fault/seu_injector.hpp"
#include "gates/jit.hpp"
#include "fitness/functions.hpp"
#include "service/client.hpp"
#include "system/ga_system.hpp"
#include "trace/diff.hpp"
#include "trace/event.hpp"
#include "trace/jsonl.hpp"
#include "trace/vcd.hpp"

namespace {

using namespace gaip;

const std::map<std::string, fitness::FitnessId>& fitness_by_name() {
    static const std::map<std::string, fitness::FitnessId> m = {
        {"BF6", fitness::FitnessId::kBf6},
        {"F2", fitness::FitnessId::kF2},
        {"F3", fitness::FitnessId::kF3},
        {"mBF6_2", fitness::FitnessId::kMBf6_2},
        {"mBF7_2", fitness::FitnessId::kMBf7_2},
        {"mShubert2D", fitness::FitnessId::kMShubert2D},
        {"OneMax", fitness::FitnessId::kOneMax},
        {"RoyalRoad", fitness::FitnessId::kRoyalRoad},
    };
    return m;
}

void usage() {
    std::printf(
        "usage: gaip-trace <command> [options]\n"
        "\n"
        "  record   run the GA and stream telemetry to a JSONL file\n"
        "    --fitness NAME     BF6 F2 F3 mBF6_2 mBF7_2 mShubert2D OneMax RoyalRoad\n"
        "    --pop N --gens N   population / generations (defaults 32/32)\n"
        "    --xover T --mut T  crossover / mutation thresholds (0..15)\n"
        "    --seed S           RNG seed (decimal or 0x hex)\n"
        "    --preset M         preset mode 1..3 (overrides parameters)\n"
        "    --backend B        rtl | gates | lanes (default rtl)\n"
        "                       rtl   = RT-level system\n"
        "                       gates = gate-level GA module in the system\n"
        "                       lanes = lane 0 of the 64-lane batched gate sim\n"
        "    --flip REG:BIT:CYC plant an SEU (rtl backend; adds fault events)\n"
        "    --daemon SOCKET    record through a gaipd daemon (thin client;\n"
        "                       exit 4 = cannot connect, 5 = malformed response)\n"
        "    -o PATH            output JSONL (default trace.jsonl)\n"
        "    --vcd PATH         also dump a VCD waveform\n"
        "\n"
        "  filter <in.jsonl>  print selected events as JSONL on stdout\n"
        "    --kind K1,K2       keep only these event kinds\n"
        "    --limit N          stop after N events\n"
        "\n"
        "  diff <a.jsonl> <b.jsonl>  first structural divergence, if any\n"
        "    --kind K1,K2       compare only these event kinds\n"
        "    --ignore F1,F2     field keys excluded from comparison\n"
        "    --strict           also compare timestamps and cycle counts\n"
        "\n"
        "exit status: 0 = ok / match, 1 = streams differ, 2 = error\n");
}

std::vector<std::string> split_csv(const std::string& s) {
    std::vector<std::string> out;
    std::size_t pos = 0;
    while (pos <= s.size()) {
        const std::size_t comma = s.find(',', pos);
        const std::string item =
            s.substr(pos, comma == std::string::npos ? std::string::npos : comma - pos);
        if (!item.empty()) out.push_back(item);
        if (comma == std::string::npos) break;
        pos = comma + 1;
    }
    return out;
}

bool parse_u64(const char* s, std::uint64_t& out) {
    try {
        std::size_t used = 0;
        out = std::stoull(s, &used, 0);
        return used == std::strlen(s) && used > 0;
    } catch (...) {
        return false;
    }
}

/// Fail fast on an unwritable output path — BEFORE the (possibly long)
/// simulation runs, not after. An append-mode probe creates the file if the
/// directory allows it and touches nothing that already exists.
bool validate_writable(const std::string& path, const char* what) {
    std::ofstream probe(path, std::ios::app);
    if (!probe) {
        std::fprintf(stderr, "gaip-trace: cannot open %s '%s' for writing\n", what,
                     path.c_str());
        return false;
    }
    return true;
}

struct RecordOptions {
    fitness::FitnessId fn = fitness::FitnessId::kMBf6_2;
    core::GaParameters params{};
    std::uint8_t preset = 0;
    std::string backend = "rtl";
    std::optional<fault::FaultSite> flip;
    std::string out_path = "trace.jsonl";
    std::string vcd_path;
    std::string daemon_socket;
};

/// Thin-client recording: the daemon runs the job and streams its trace
/// events back; we append them to the JSONL file exactly as a local record
/// would have.
int record_via_daemon(const RecordOptions& opt) {
    if (opt.flip.has_value() || !opt.vcd_path.empty()) {
        std::fprintf(stderr, "gaip-trace: --daemon does not support --flip/--vcd\n");
        return 2;
    }
    try {
        service::JobSpec spec;
        spec.fn = opt.fn;
        spec.params = core::resolve_parameters(opt.preset, opt.params);
        if (opt.preset != 0) spec.params.seed = prng::kPresetSeeds[opt.preset - 1];
        spec.backend = opt.backend == "rtl" ? service::JobBackend::kRtl
                                            : service::JobBackend::kGates;
        trace::JsonlSink sink(opt.out_path);
        service::RetryPolicy policy;
        policy.attempts = 3;  // backoff dial keeps a dead daemon fast to diagnose
        service::Client client = service::Client::dial(opt.daemon_socket, policy);
        const service::Frame res =
            client.run_job(spec, [&](const trace::TraceEvent& e) { sink.on_event(e); });
        sink.flush();
        std::printf("daemon job %llu (%s): best=%llu cand=%llu, %llu events -> %s\n",
                    static_cast<unsigned long long>(res.u64("id")), opt.backend.c_str(),
                    static_cast<unsigned long long>(res.u64("best_fitness")),
                    static_cast<unsigned long long>(res.u64("best_candidate")),
                    static_cast<unsigned long long>(sink.events_written()),
                    opt.out_path.c_str());
        return 0;
    } catch (const service::ConnectError& e) {
        std::fprintf(stderr, "gaip-trace: %s\n", e.what());
        return 4;
    } catch (const service::MalformedResponse& e) {
        std::fprintf(stderr, "gaip-trace: %s\n", e.what());
        return 5;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "gaip-trace: %s\n", e.what());
        return 2;
    }
}

int cmd_record(const RecordOptions& opt) {
    if (!validate_writable(opt.out_path, "output file")) return 2;
    if (!opt.vcd_path.empty() && !validate_writable(opt.vcd_path, "VCD file")) return 2;
    if (!opt.daemon_socket.empty()) return record_via_daemon(opt);
    if (opt.flip.has_value()) {
        if (opt.backend != "rtl") {
            std::fprintf(stderr, "gaip-trace: --flip requires the rtl backend\n");
            return 2;
        }
        fault::InjectorConfig icfg;
        icfg.fn = opt.fn;
        icfg.params = opt.params;
        fault::SeuInjector injector(icfg);
        trace::JsonlSink sink(opt.out_path);
        injector.set_sink(&sink);
        const fault::FaultRecord rec =
            injector.run_rtl(*opt.flip, fault::InjectBackend::kPoke);
        sink.flush();
        std::printf("flip %s:%u @cycle %llu -> %s (best=%u cand=%u), %llu events -> %s\n",
                    rec.site.reg.c_str(), rec.site.bit,
                    static_cast<unsigned long long>(rec.inject_cycle),
                    fault::outcome_name(rec.outcome), rec.best_fitness, rec.best_candidate,
                    static_cast<unsigned long long>(sink.events_written()),
                    opt.out_path.c_str());
        return 0;
    }

    if (opt.backend == "lanes") {
        trace::JsonlSink sink(opt.out_path);
        // The compiled engines are built inside the runner constructor, so
        // the JIT telemetry sink (jit_compile / jit_cache_hit /
        // jit_fallback under GAIP_JIT=1) must be attached first; detached
        // before the sink dies.
        gates::jit::set_trace_sink(&sink);
        bench::BatchGateRunner runner(opt.fn, {opt.params});
        gates::jit::set_trace_sink(nullptr);
        runner.set_lane_sink(0, &sink);
        std::unique_ptr<trace::VcdWriter> vcd;
        if (!opt.vcd_path.empty()) {
            vcd = std::make_unique<trace::VcdWriter>(opt.vcd_path);
            runner.add_vcd(vcd.get(), {0});
        }
        const std::vector<bench::BatchLaneResult> res = runner.run();
        sink.flush();
        std::printf("lane 0: best=%u cand=%u gens=%u, %llu events -> %s\n",
                    res[0].best_fitness, res[0].best_candidate, res[0].generations,
                    static_cast<unsigned long long>(sink.events_written()),
                    opt.out_path.c_str());
        return 0;
    }

    system::GaSystemConfig cfg;
    cfg.params = opt.params;
    cfg.preset = opt.preset;
    cfg.internal_fems = {opt.fn};
    cfg.keep_populations = false;
    cfg.trace_path = opt.out_path;
    cfg.vcd_path = opt.vcd_path;
    cfg.use_gate_level_core = opt.backend == "gates";
    system::GaSystem sys(cfg);
    const core::RunResult res = sys.run();
    std::printf("%s: best=%u cand=%u evals=%llu cycles=%llu -> %s%s%s\n",
                opt.backend.c_str(), res.best_fitness, res.best_candidate,
                static_cast<unsigned long long>(res.evaluations),
                static_cast<unsigned long long>(sys.ga_cycles()), opt.out_path.c_str(),
                opt.vcd_path.empty() ? "" : " + ", opt.vcd_path.c_str());
    return 0;
}

int cmd_filter(const std::string& path, const std::vector<std::string>& kinds,
               std::uint64_t limit) {
    const std::vector<trace::TraceEvent> events = trace::load_jsonl(path);
    const std::vector<trace::TraceEvent> kept = trace::filter_events(events, kinds);
    std::uint64_t n = 0;
    for (const trace::TraceEvent& e : kept) {
        if (limit != 0 && n >= limit) break;
        std::printf("%s\n", trace::to_json_line(e).c_str());
        ++n;
    }
    return 0;
}

int cmd_diff(const std::string& path_a, const std::string& path_b,
             const trace::DiffOptions& opt) {
    const std::vector<trace::TraceEvent> a = trace::load_jsonl(path_a);
    const std::vector<trace::TraceEvent> b = trace::load_jsonl(path_b);
    const std::optional<trace::Divergence> d = trace::first_divergence(a, b, opt);
    if (!d.has_value()) {
        std::printf("match: %zu vs %zu events%s\n", a.size(), b.size(),
                    opt.kinds.empty() ? "" : " (filtered)");
        return 0;
    }
    std::printf("diverge at event %zu:\n", d->index);
    std::printf("  a: %s\n",
                d->missing_a ? "<stream ended>" : trace::to_json_line(d->a).c_str());
    std::printf("  b: %s\n",
                d->missing_b ? "<stream ended>" : trace::to_json_line(d->b).c_str());
    return 1;
}

}  // namespace

int main(int argc, char** argv) {
    if (argc < 2) {
        usage();
        return 2;
    }
    const std::string cmd = argv[1];
    if (cmd == "--help" || cmd == "-h" || cmd == "help") {
        usage();
        return 0;
    }

    try {
        auto need_value = [&](int& i) -> const char* {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "gaip-trace: %s needs a value\n", argv[i]);
                return nullptr;
            }
            return argv[++i];
        };
        auto need_u64 = [&](int& i, std::uint64_t& v) -> bool {
            const char* flag = argv[i];
            const char* s = need_value(i);
            if (s == nullptr) return false;
            if (!parse_u64(s, v)) {
                std::fprintf(stderr, "gaip-trace: %s wants a number, got '%s'\n", flag, s);
                return false;
            }
            return true;
        };

        if (cmd == "record") {
            RecordOptions opt;
            opt.params = {.pop_size = 32, .n_gens = 32, .xover_threshold = 10,
                          .mut_threshold = 1, .seed = 0x2961};
            for (int i = 2; i < argc; ++i) {
                const std::string a = argv[i];
                std::uint64_t v = 0;
                if (a == "--fitness") {
                    const char* s = need_value(i);
                    if (s == nullptr) return 2;
                    const auto it = fitness_by_name().find(s);
                    if (it == fitness_by_name().end()) {
                        std::fprintf(stderr, "gaip-trace: unknown fitness '%s'\n", s);
                        return 2;
                    }
                    opt.fn = it->second;
                } else if (a == "--pop") {
                    if (!need_u64(i, v)) return 2;
                    opt.params.pop_size = core::clamp_pop_size(static_cast<std::uint32_t>(v));
                } else if (a == "--gens") {
                    if (!need_u64(i, v)) return 2;
                    opt.params.n_gens = static_cast<std::uint32_t>(v);
                } else if (a == "--xover") {
                    if (!need_u64(i, v)) return 2;
                    opt.params.xover_threshold = static_cast<std::uint8_t>(v & 0xF);
                } else if (a == "--mut") {
                    if (!need_u64(i, v)) return 2;
                    opt.params.mut_threshold = static_cast<std::uint8_t>(v & 0xF);
                } else if (a == "--seed") {
                    if (!need_u64(i, v)) return 2;
                    opt.params.seed = static_cast<std::uint16_t>(v);
                } else if (a == "--preset") {
                    if (!need_u64(i, v)) return 2;
                    if (v > 3) {
                        std::fprintf(stderr,
                                     "gaip-trace: --preset wants a mode 0..3, got %llu\n",
                                     static_cast<unsigned long long>(v));
                        return 2;
                    }
                    opt.preset = static_cast<std::uint8_t>(v);
                } else if (a == "--backend") {
                    const char* s = need_value(i);
                    if (s == nullptr) return 2;
                    opt.backend = s;
                    if (opt.backend != "rtl" && opt.backend != "gates" &&
                        opt.backend != "lanes") {
                        std::fprintf(stderr, "gaip-trace: unknown backend '%s'\n", s);
                        return 2;
                    }
                } else if (a == "--flip") {
                    const char* s = need_value(i);
                    if (s == nullptr) return 2;
                    const std::string spec = s;
                    const std::size_t c1 = spec.find(':');
                    const std::size_t c2 = spec.find(':', c1 + 1);
                    std::uint64_t bit = 0, cyc = 0;
                    if (c1 == std::string::npos || c2 == std::string::npos ||
                        !parse_u64(spec.substr(c1 + 1, c2 - c1 - 1).c_str(), bit) ||
                        !parse_u64(spec.substr(c2 + 1).c_str(), cyc)) {
                        std::fprintf(stderr, "gaip-trace: --flip wants REG:BIT:CYCLE\n");
                        return 2;
                    }
                    opt.flip = fault::FaultSite{spec.substr(0, c1),
                                                static_cast<unsigned>(bit), cyc};
                } else if (a == "--daemon") {
                    const char* s = need_value(i);
                    if (s == nullptr) return 2;
                    opt.daemon_socket = s;
                } else if (a == "-o" || a == "--out") {
                    const char* s = need_value(i);
                    if (s == nullptr) return 2;
                    opt.out_path = s;
                } else if (a == "--vcd") {
                    const char* s = need_value(i);
                    if (s == nullptr) return 2;
                    opt.vcd_path = s;
                } else {
                    std::fprintf(stderr, "gaip-trace: unknown option '%s'\n", a.c_str());
                    return 2;
                }
            }
            return cmd_record(opt);
        }

        if (cmd == "filter") {
            std::string path;
            std::vector<std::string> kinds;
            std::uint64_t limit = 0;
            for (int i = 2; i < argc; ++i) {
                const std::string a = argv[i];
                if (a == "--kind") {
                    const char* s = need_value(i);
                    if (s == nullptr) return 2;
                    kinds = split_csv(s);
                } else if (a == "--limit") {
                    if (!need_u64(i, limit)) return 2;
                } else if (!a.empty() && a[0] != '-' && path.empty()) {
                    path = a;
                } else {
                    std::fprintf(stderr, "gaip-trace: unknown option '%s'\n", a.c_str());
                    return 2;
                }
            }
            if (path.empty()) {
                std::fprintf(stderr, "gaip-trace: filter needs an input file\n");
                return 2;
            }
            return cmd_filter(path, kinds, limit);
        }

        if (cmd == "diff") {
            std::vector<std::string> paths;
            trace::DiffOptions opt;
            for (int i = 2; i < argc; ++i) {
                const std::string a = argv[i];
                if (a == "--kind") {
                    const char* s = need_value(i);
                    if (s == nullptr) return 2;
                    opt.kinds = split_csv(s);
                } else if (a == "--ignore") {
                    const char* s = need_value(i);
                    if (s == nullptr) return 2;
                    opt.ignore_keys = split_csv(s);
                } else if (a == "--strict") {
                    opt.compare_time = true;
                    opt.compare_cycle = true;
                } else if (!a.empty() && a[0] != '-') {
                    paths.push_back(a);
                } else {
                    std::fprintf(stderr, "gaip-trace: unknown option '%s'\n", a.c_str());
                    return 2;
                }
            }
            if (paths.size() != 2) {
                std::fprintf(stderr, "gaip-trace: diff needs exactly two files\n");
                return 2;
            }
            return cmd_diff(paths[0], paths[1], opt);
        }

        std::fprintf(stderr, "gaip-trace: unknown command '%s'\n", cmd.c_str());
        usage();
        return 2;
    } catch (const std::exception& ex) {
        std::fprintf(stderr, "gaip-trace: %s\n", ex.what());
        return 2;
    }
}
