// gaipd — the GA IP core daemon: accepts GA job requests over a Unix-domain
// socket (newline-delimited JSON, docs/GAIPD.md) and schedules them onto a
// pool of worker threads, packing independent gate-level jobs as lanes of a
// shared compiled-netlist lane block.
//
//   gaipd --socket gaipd.sock --workers 4 --metrics gaipd_metrics.jsonl
//
// Runs in the foreground until SIGINT/SIGTERM or a `shutdown` verb; SIGHUP
// compacts + reopens the journal (log-rotation discipline).
// Exit status: 0 on clean shutdown, 1 on socket errors, 2 on bad arguments.
#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>

#include "service/server.hpp"

namespace {

using namespace gaip;

/// Touched from signal handlers: atomic so the store in main() is never
/// torn/reordered against a concurrently delivered signal.
std::atomic<service::Server*> g_server{nullptr};

void on_signal(int sig) {
    service::Server* s = g_server.load(std::memory_order_acquire);
    if (s == nullptr) return;
    // Both paths are async-signal-safe: flag + one pipe write.
    if (sig == SIGHUP) s->request_rotate();
    else s->stop();
}

void usage() {
    std::printf(
        "usage: gaipd [options]\n"
        "  --socket PATH      Unix-domain socket to listen on (default gaipd.sock)\n"
        "  --workers N        worker threads (default 1)\n"
        "  --max-queue N      admission-control queue bound (default 1024)\n"
        "  --max-batch N      gate-job lanes packed per batch (default 256)\n"
        "  --gate-backend K   auto | interp | jit (gate-lane evaluation engine)\n"
        "  --metrics PATH     append job lifecycle metrics as JSONL\n"
        "  --journal DIR      write-ahead job journal; replayed on boot (crash\n"
        "                     recovery: finished jobs restored, interrupted re-run)\n"
        "  --max-conns N      total connection cap (default 256; 0 = unlimited)\n"
        "  --max-conns-per-client N  per-client (pid) cap (default 32; 0 = unlimited)\n"
        "  --max-outbox BYTES per-connection write buffer; a consumer further\n"
        "                     behind is evicted (default 1048576)\n"
        "  --quiet            do not announce the socket on stderr\n");
}

bool parse_u32(const char* s, std::uint32_t& out) {
    try {
        out = static_cast<std::uint32_t>(std::stoul(s, nullptr, 0));
        return true;
    } catch (...) {
        return false;
    }
}

}  // namespace

int main(int argc, char** argv) {
    service::ServerConfig cfg;
    cfg.announce = true;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto need_value = [&]() -> const char* {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "gaipd: %s needs a value\n", a.c_str());
                return nullptr;
            }
            return argv[++i];
        };
        std::uint32_t v = 0;
        if (a == "--help" || a == "-h") {
            usage();
            return 0;
        } else if (a == "--socket") {
            const char* s = need_value();
            if (s == nullptr) return 2;
            cfg.socket_path = s;
        } else if (a == "--workers") {
            const char* s = need_value();
            if (s == nullptr || !parse_u32(s, v) || v == 0) {
                std::fprintf(stderr, "gaipd: --workers wants a number >= 1\n");
                return 2;
            }
            cfg.scheduler.workers = v;
        } else if (a == "--max-queue") {
            const char* s = need_value();
            if (s == nullptr || !parse_u32(s, v) || v == 0) {
                std::fprintf(stderr, "gaipd: --max-queue wants a number >= 1\n");
                return 2;
            }
            cfg.scheduler.max_queue = v;
        } else if (a == "--max-batch") {
            const char* s = need_value();
            if (s == nullptr || !parse_u32(s, v) || v == 0) {
                std::fprintf(stderr, "gaipd: --max-batch wants a number >= 1\n");
                return 2;
            }
            cfg.scheduler.max_batch_lanes = v;
        } else if (a == "--gate-backend") {
            const char* s = need_value();
            if (s == nullptr) return 2;
            if (std::strcmp(s, "auto") == 0) cfg.scheduler.gate_backend = gates::Backend::kAuto;
            else if (std::strcmp(s, "interp") == 0)
                cfg.scheduler.gate_backend = gates::Backend::kInterp;
            else if (std::strcmp(s, "jit") == 0) cfg.scheduler.gate_backend = gates::Backend::kJit;
            else {
                std::fprintf(stderr, "gaipd: unknown gate backend '%s'\n", s);
                return 2;
            }
        } else if (a == "--metrics") {
            const char* s = need_value();
            if (s == nullptr) return 2;
            cfg.metrics_path = s;
        } else if (a == "--journal") {
            const char* s = need_value();
            if (s == nullptr) return 2;
            cfg.journal_dir = s;
        } else if (a == "--max-conns") {
            const char* s = need_value();
            if (s == nullptr || !parse_u32(s, v)) {
                std::fprintf(stderr, "gaipd: --max-conns wants a number\n");
                return 2;
            }
            cfg.max_conns = v;
        } else if (a == "--max-conns-per-client") {
            const char* s = need_value();
            if (s == nullptr || !parse_u32(s, v)) {
                std::fprintf(stderr, "gaipd: --max-conns-per-client wants a number\n");
                return 2;
            }
            cfg.max_conns_per_client = v;
        } else if (a == "--max-outbox") {
            const char* s = need_value();
            if (s == nullptr || !parse_u32(s, v) || v == 0) {
                std::fprintf(stderr, "gaipd: --max-outbox wants a number >= 1\n");
                return 2;
            }
            cfg.max_outbox_bytes = v;
        } else if (a == "--quiet") {
            cfg.announce = false;
        } else {
            std::fprintf(stderr, "gaipd: unknown option '%s'\n", a.c_str());
            usage();
            return 2;
        }
    }

    try {
        service::Server server(std::move(cfg));
        g_server.store(&server, std::memory_order_release);
        struct sigaction sa{};
        sa.sa_handler = on_signal;
        ::sigaction(SIGINT, &sa, nullptr);
        ::sigaction(SIGTERM, &sa, nullptr);
        ::sigaction(SIGHUP, &sa, nullptr);
        server.run();
        g_server.store(nullptr, std::memory_order_release);
        return 0;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "gaipd: %s\n", e.what());
        return 1;
    }
}
