// gaipd — the GA IP core daemon: accepts GA job requests over a Unix-domain
// socket (newline-delimited JSON, docs/GAIPD.md) and schedules them onto a
// pool of worker threads, packing independent gate-level jobs as lanes of a
// shared compiled-netlist lane block.
//
//   gaipd --socket gaipd.sock --workers 4 --metrics gaipd_metrics.jsonl
//
// Runs in the foreground until SIGINT/SIGTERM or a `shutdown` verb.
// Exit status: 0 on clean shutdown, 1 on socket errors, 2 on bad arguments.
#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>

#include "service/server.hpp"

namespace {

using namespace gaip;

service::Server* g_server = nullptr;

void on_signal(int) {
    if (g_server != nullptr) g_server->stop();  // async-signal-safe (pipe write)
}

void usage() {
    std::printf(
        "usage: gaipd [options]\n"
        "  --socket PATH      Unix-domain socket to listen on (default gaipd.sock)\n"
        "  --workers N        worker threads (default 1)\n"
        "  --max-queue N      admission-control queue bound (default 1024)\n"
        "  --max-batch N      gate-job lanes packed per batch (default 256)\n"
        "  --gate-backend K   auto | interp | jit (gate-lane evaluation engine)\n"
        "  --metrics PATH     append job lifecycle metrics as JSONL\n"
        "  --quiet            do not announce the socket on stderr\n");
}

bool parse_u32(const char* s, std::uint32_t& out) {
    try {
        out = static_cast<std::uint32_t>(std::stoul(s, nullptr, 0));
        return true;
    } catch (...) {
        return false;
    }
}

}  // namespace

int main(int argc, char** argv) {
    service::ServerConfig cfg;
    cfg.announce = true;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto need_value = [&]() -> const char* {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "gaipd: %s needs a value\n", a.c_str());
                return nullptr;
            }
            return argv[++i];
        };
        std::uint32_t v = 0;
        if (a == "--help" || a == "-h") {
            usage();
            return 0;
        } else if (a == "--socket") {
            const char* s = need_value();
            if (s == nullptr) return 2;
            cfg.socket_path = s;
        } else if (a == "--workers") {
            const char* s = need_value();
            if (s == nullptr || !parse_u32(s, v) || v == 0) {
                std::fprintf(stderr, "gaipd: --workers wants a number >= 1\n");
                return 2;
            }
            cfg.scheduler.workers = v;
        } else if (a == "--max-queue") {
            const char* s = need_value();
            if (s == nullptr || !parse_u32(s, v) || v == 0) {
                std::fprintf(stderr, "gaipd: --max-queue wants a number >= 1\n");
                return 2;
            }
            cfg.scheduler.max_queue = v;
        } else if (a == "--max-batch") {
            const char* s = need_value();
            if (s == nullptr || !parse_u32(s, v) || v == 0) {
                std::fprintf(stderr, "gaipd: --max-batch wants a number >= 1\n");
                return 2;
            }
            cfg.scheduler.max_batch_lanes = v;
        } else if (a == "--gate-backend") {
            const char* s = need_value();
            if (s == nullptr) return 2;
            if (std::strcmp(s, "auto") == 0) cfg.scheduler.gate_backend = gates::Backend::kAuto;
            else if (std::strcmp(s, "interp") == 0)
                cfg.scheduler.gate_backend = gates::Backend::kInterp;
            else if (std::strcmp(s, "jit") == 0) cfg.scheduler.gate_backend = gates::Backend::kJit;
            else {
                std::fprintf(stderr, "gaipd: unknown gate backend '%s'\n", s);
                return 2;
            }
        } else if (a == "--metrics") {
            const char* s = need_value();
            if (s == nullptr) return 2;
            cfg.metrics_path = s;
        } else if (a == "--quiet") {
            cfg.announce = false;
        } else {
            std::fprintf(stderr, "gaipd: unknown option '%s'\n", a.c_str());
            usage();
            return 2;
        }
    }

    try {
        service::Server server(std::move(cfg));
        g_server = &server;
        struct sigaction sa{};
        sa.sa_handler = on_signal;
        ::sigaction(SIGINT, &sa, nullptr);
        ::sigaction(SIGTERM, &sa, nullptr);
        server.run();
        g_server = nullptr;
        return 0;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "gaipd: %s\n", e.what());
        return 1;
    }
}
