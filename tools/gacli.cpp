// gacli — command-line driver for the GA IP core model.
//
// Runs the full cycle-level system (or the fast behavioral model) on one of
// the built-in fitness functions with user-chosen GA parameters, and can
// dump per-generation convergence CSV and a VCD waveform.
//
//   gacli --fitness mBF6_2 --pop 64 --gens 64 --xover 10 --mut 1 --seed 0x061F
//   gacli --fitness mShubert2D --preset 2
//   gacli --fitness OneMax --behavioral --csv out.csv
//
// Exit status: 0 on success, 1 on bad arguments or a failed run.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <string>

#include "core/behavioral.hpp"
#include "fitness/functions.hpp"
#include "fitness/rom_builder.hpp"
#include "service/client.hpp"
#include "system/ga_system.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace gaip;

struct Options {
    fitness::FitnessId fn = fitness::FitnessId::kMBf6_2;
    core::GaParameters params{};
    std::uint8_t preset = 0;
    prng::RngKind rng = prng::RngKind::kCellularAutomaton;
    bool external = false;
    unsigned latency = 24;
    bool behavioral = false;
    bool gate_level = false;
    bool quiet = false;
    unsigned runs = 1;
    std::string csv_path;
    std::string vcd_path;
    std::string daemon_socket;
};

const std::map<std::string, fitness::FitnessId>& fitness_by_name() {
    static const std::map<std::string, fitness::FitnessId> m = {
        {"BF6", fitness::FitnessId::kBf6},
        {"F2", fitness::FitnessId::kF2},
        {"F3", fitness::FitnessId::kF3},
        {"mBF6_2", fitness::FitnessId::kMBf6_2},
        {"mBF7_2", fitness::FitnessId::kMBf7_2},
        {"mShubert2D", fitness::FitnessId::kMShubert2D},
        {"OneMax", fitness::FitnessId::kOneMax},
        {"RoyalRoad", fitness::FitnessId::kRoyalRoad},
    };
    return m;
}

void usage() {
    std::printf(
        "usage: gacli [options]\n"
        "  --fitness NAME   BF6 F2 F3 mBF6_2 mBF7_2 mShubert2D OneMax RoyalRoad\n"
        "  --pop N          population size (2..128, default 32)\n"
        "  --gens N         generations (default 32)\n"
        "  --xover T        crossover threshold 0..15 (rate = T/16, default 10)\n"
        "  --mut T          mutation threshold 0..15 (rate = T/16, default 1)\n"
        "  --seed S         RNG seed (decimal or 0x hex, default 0x2961)\n"
        "  --preset M       preset mode 1..3 (Table IV; overrides parameters)\n"
        "  --rng KIND       ca | lfsr | xorshift | weaklcg (default ca)\n"
        "  --external       serve fitness through the external FEM ports\n"
        "  --latency N      external FEM round-trip cycles (default 24)\n"
        "  --behavioral     run the untimed behavioral model (fast, bit-exact)\n"
        "  --gate-level     run the fully gate-level GA module (slow, bit-exact)\n"
        "  --csv PATH       write per-generation best/avg fitness CSV\n"
        "  --vcd PATH       dump a VCD waveform of the GA module (RTL only)\n"
        "  --runs N         repeat with N derived seeds; report summary stats\n"
        "  --daemon SOCKET  run the job through a gaipd daemon (thin client)\n"
        "  --quiet          print only the result line\n");
}

bool parse_u32(const char* s, std::uint32_t& out) {
    try {
        out = static_cast<std::uint32_t>(std::stoul(s, nullptr, 0));
        return true;
    } catch (...) {
        return false;
    }
}

bool parse(int argc, char** argv, Options& opt) {
    opt.params = {.pop_size = 32, .n_gens = 32, .xover_threshold = 10, .mut_threshold = 1,
                  .seed = 0x2961};
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto need_value = [&]() -> const char* {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "gacli: %s needs a value\n", a.c_str());
                return nullptr;
            }
            return argv[++i];
        };
        std::uint32_t v = 0;
        if (a == "--help" || a == "-h") {
            usage();
            std::exit(0);
        } else if (a == "--fitness") {
            const char* s = need_value();
            if (s == nullptr) return false;
            const auto it = fitness_by_name().find(s);
            if (it == fitness_by_name().end()) {
                std::fprintf(stderr, "gacli: unknown fitness '%s'\n", s);
                return false;
            }
            opt.fn = it->second;
        } else if (a == "--pop") {
            const char* s = need_value();
            if (s == nullptr || !parse_u32(s, v)) return false;
            opt.params.pop_size = core::clamp_pop_size(v);
        } else if (a == "--gens") {
            const char* s = need_value();
            if (s == nullptr || !parse_u32(s, v)) return false;
            opt.params.n_gens = v;
        } else if (a == "--xover") {
            const char* s = need_value();
            if (s == nullptr || !parse_u32(s, v)) return false;
            opt.params.xover_threshold = static_cast<std::uint8_t>(v & 0xF);
        } else if (a == "--mut") {
            const char* s = need_value();
            if (s == nullptr || !parse_u32(s, v)) return false;
            opt.params.mut_threshold = static_cast<std::uint8_t>(v & 0xF);
        } else if (a == "--seed") {
            const char* s = need_value();
            if (s == nullptr || !parse_u32(s, v)) return false;
            opt.params.seed = static_cast<std::uint16_t>(v);
        } else if (a == "--preset") {
            const char* s = need_value();
            if (s == nullptr || !parse_u32(s, v) || v > 3) return false;
            opt.preset = static_cast<std::uint8_t>(v);
        } else if (a == "--rng") {
            const char* s = need_value();
            if (s == nullptr) return false;
            if (std::strcmp(s, "ca") == 0) opt.rng = prng::RngKind::kCellularAutomaton;
            else if (std::strcmp(s, "lfsr") == 0) opt.rng = prng::RngKind::kLfsr;
            else if (std::strcmp(s, "xorshift") == 0) opt.rng = prng::RngKind::kXorShift;
            else if (std::strcmp(s, "weaklcg") == 0) opt.rng = prng::RngKind::kWeakLcg;
            else {
                std::fprintf(stderr, "gacli: unknown rng '%s'\n", s);
                return false;
            }
        } else if (a == "--external") {
            opt.external = true;
        } else if (a == "--latency") {
            const char* s = need_value();
            if (s == nullptr || !parse_u32(s, v)) return false;
            opt.latency = v;
        } else if (a == "--behavioral") {
            opt.behavioral = true;
        } else if (a == "--gate-level") {
            opt.gate_level = true;
        } else if (a == "--csv") {
            const char* s = need_value();
            if (s == nullptr) return false;
            opt.csv_path = s;
        } else if (a == "--vcd") {
            const char* s = need_value();
            if (s == nullptr) return false;
            opt.vcd_path = s;
        } else if (a == "--runs") {
            const char* s = need_value();
            if (s == nullptr || !parse_u32(s, v) || v == 0) return false;
            opt.runs = v;
        } else if (a == "--daemon") {
            const char* s = need_value();
            if (s == nullptr) return false;
            opt.daemon_socket = s;
        } else if (a == "--quiet") {
            opt.quiet = true;
        } else {
            std::fprintf(stderr, "gacli: unknown option '%s'\n", a.c_str());
            usage();
            return false;
        }
    }
    return true;
}

void write_csv(const std::string& path, const core::RunResult& r) {
    std::ofstream f(path);
    f << "generation,best_fitness,avg_fitness\n";
    for (const auto& s : r.history) {
        f << s.gen << ',' << s.best_fit << ',' << s.mean_fitness() << '\n';
    }
}

}  // namespace

namespace {

int run_summary(const Options& opt) {
    // Multi-run mode: derive one seed per run from the base seed with the
    // CA itself, run the behavioral engine (bit-exact with the RTL), and
    // print summary statistics.
    core::RngState seeder(opt.params.seed);
    std::vector<double> bests;
    std::uint16_t best_cand = 0;
    std::uint16_t best_fit = 0;
    for (unsigned i = 0; i < opt.runs; ++i) {
        core::GaParameters p = core::resolve_parameters(opt.preset, opt.params);
        if (opt.preset != 0) p.seed = prng::kPresetSeeds[opt.preset - 1];
        p.seed = i == 0 ? p.seed : seeder.next16();
        const core::RunResult r = core::run_behavioral_ga(
            p, [&](std::uint16_t x) { return fitness::fitness_u16(opt.fn, x); }, opt.rng,
            false);
        bests.push_back(r.best_fitness);
        if (r.best_fitness > best_fit) {
            best_fit = r.best_fitness;
            best_cand = r.best_candidate;
        }
    }
    const util::Summary s = util::summarize(bests);
    const auto opt_info = fitness::grid_optimum(opt.fn);
    std::printf("%s over %u runs: mean=%.1f stddev=%.1f min=%.0f max=%.0f"
                " (optimum %u)  best candidate 0x%04X\n",
                fitness::fitness_name(opt.fn).c_str(), opt.runs, s.mean, s.stddev, s.min,
                s.max, opt_info.best_value, best_cand);
    return 0;
}

// Thin-client mode: ship the job to a gaipd daemon and render its final
// status frame like a local run. Exit codes follow the service contract
// (4 = cannot connect, 5 = malformed response, 1 = job/remote error).
int run_daemon(const Options& opt) {
    if (opt.runs > 1 || opt.external || !opt.csv_path.empty() || !opt.vcd_path.empty()) {
        std::fprintf(stderr,
                     "gacli: --daemon runs plain single jobs only "
                     "(no --runs/--external/--csv/--vcd)\n");
        return 1;
    }
    try {
        service::JobSpec spec;
        spec.fn = opt.fn;
        spec.params = core::resolve_parameters(opt.preset, opt.params);
        if (opt.preset != 0) spec.params.seed = prng::kPresetSeeds[opt.preset - 1];
        spec.backend = opt.behavioral    ? service::JobBackend::kBehavioral
                       : opt.gate_level ? service::JobBackend::kGates
                                        : service::JobBackend::kRtl;
        service::RetryPolicy policy;
        policy.attempts = 3;  // backoff dial keeps a dead daemon fast to diagnose
        service::Client client = service::Client::dial(opt.daemon_socket, policy);
        const service::Frame res = client.run_job(spec);
        const auto opt_info = fitness::grid_optimum(opt.fn);
        const std::uint64_t best = res.u64("best_fitness");
        std::printf("%s best=%llu (optimum %u, %.2f%%) candidate=0x%04llX evaluations=%llu"
                    " [daemon job %llu, %s]\n",
                    fitness::fitness_name(opt.fn).c_str(),
                    static_cast<unsigned long long>(best), opt_info.best_value,
                    100.0 * static_cast<double>(best) /
                        std::max<unsigned>(1, opt_info.best_value),
                    static_cast<unsigned long long>(res.u64("best_candidate")),
                    static_cast<unsigned long long>(res.u64("evaluations")),
                    static_cast<unsigned long long>(res.u64("id")),
                    service::job_backend_name(spec.backend));
        return 0;
    } catch (const service::ConnectError& e) {
        std::fprintf(stderr, "gacli: %s\n", e.what());
        return 4;
    } catch (const service::MalformedResponse& e) {
        std::fprintf(stderr, "gacli: %s\n", e.what());
        return 5;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "gacli: %s\n", e.what());
        return 1;
    }
}

}  // namespace

int main(int argc, char** argv) {
    Options opt;
    if (!parse(argc, argv, opt)) return 1;
    if (!opt.daemon_socket.empty()) return run_daemon(opt);

    try {
        if (opt.runs > 1) return run_summary(opt);

        core::RunResult result;
        double hw_ms = -1.0;

        if (opt.behavioral) {
            const core::GaParameters eff = core::resolve_parameters(opt.preset, opt.params);
            core::GaParameters p = eff;
            if (opt.preset != 0) p.seed = prng::kPresetSeeds[opt.preset - 1];
            result = core::run_behavioral_ga(
                p, [&](std::uint16_t x) { return fitness::fitness_u16(opt.fn, x); }, opt.rng);
        } else {
            system::GaSystemConfig cfg;
            cfg.params = opt.params;
            cfg.preset = opt.preset;
            cfg.skip_initialization = opt.preset != 0;
            cfg.rng_kind = opt.rng;
            cfg.vcd_path = opt.vcd_path;
            cfg.use_gate_level_core = opt.gate_level;
            if (opt.external) {
                cfg.internal_fems = {};
                cfg.external_fem = opt.fn;
                cfg.external_latency_cycles = opt.latency;
                cfg.fitfunc_select = 4;
            } else {
                cfg.internal_fems = {opt.fn};
            }
            system::GaSystem sys(cfg);
            result = sys.run();
            hw_ms = sys.ga_seconds() * 1e3;
        }

        if (!opt.csv_path.empty()) write_csv(opt.csv_path, result);

        const auto opt_info = fitness::grid_optimum(opt.fn);
        std::printf("%s best=%u (optimum %u, %.2f%%) candidate=0x%04X evaluations=%llu%s\n",
                    fitness::fitness_name(opt.fn).c_str(), result.best_fitness,
                    opt_info.best_value,
                    100.0 * result.best_fitness / std::max<unsigned>(1, opt_info.best_value),
                    result.best_candidate,
                    static_cast<unsigned long long>(result.evaluations),
                    opt.behavioral ? " [behavioral]" : "");
        if (!opt.quiet) {
            if (hw_ms >= 0) std::printf("hardware time: %.3f ms at 50 MHz\n", hw_ms);
            std::printf("convergence: ");
            const std::size_t n = result.history.size();
            for (std::size_t g = 0; g < n; g += std::max<std::size_t>(1, n / 8))
                std::printf("g%zu:%u ", g, result.history[g].best_fit);
            std::printf("\n");
        }
        return 0;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "gacli: %s\n", e.what());
        return 1;
    }
}
