// gaipctl — control client for gaipd (the bessctl of this repo).
//
//   gaipctl ping
//   gaipctl submit --fitness OneMax --pop 32 --gens 64 [--follow]
//   gaipctl status 3
//   gaipctl list
//   gaipctl cancel 3
//   gaipctl stream 3
//   gaipctl stats
//   gaipctl shutdown
//
// All output is the daemon's own newline-delimited JSON, one frame or
// streamed trace event per line — pipe it to jq or the trace tools.
//
// Exit status (scripts rely on the split — see docs/GAIPD.md):
//   0  success           2  usage error
//   1  remote/job error  4  cannot connect to the daemon
//   6  op deadline hit   5  daemon answered a malformed frame
//
// Resilience: connects retry with exponential backoff + jitter
// (--retries/--backoff-ms), ops can carry a deadline (--timeout-ms),
// `ping --wait N` polls until the daemon answers (readiness probe), and
// `stream`/`submit --follow` survive a daemon restart mid-stream by
// reconnecting and resuming the same job id.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "service/client.hpp"
#include "trace/jsonl.hpp"

namespace {

using namespace gaip;
using service::Frame;

void usage() {
    std::printf(
        "usage: gaipctl [-s SOCKET] [--retries N] [--backoff-ms N] [--timeout-ms N] VERB [args]\n"
        "  -s, --socket PATH  daemon socket (default gaipd.sock)\n"
        "  --retries N        connect/stream retry budget (default 3)\n"
        "  --backoff-ms N     first retry delay; doubles, jittered (default 50)\n"
        "  --timeout-ms N     per-operation deadline; exit 6 when hit (default none)\n"
        "verbs:\n"
        "  ping [--wait N]     liveness check; --wait polls up to N seconds\n"
        "                      until the daemon answers (readiness probe)\n"
        "  submit [FIELDS] [--follow]\n"
        "                      queue a job; --follow streams it to completion\n"
        "                      (resumes across a daemon restart)\n"
        "  status ID           one job's record\n"
        "  list                every job the daemon knows\n"
        "  cancel ID           cooperative cancel\n"
        "  stream ID           follow a job's trace events until it ends;\n"
        "                      reconnects + resumes across a daemon restart\n"
        "  stats               aggregate daemon counters\n"
        "  shutdown [--drain]  stop the daemon; --drain finishes running jobs\n"
        "                      and journals the queue for the next boot\n"
        "submit fields (all optional; names match the submit frame schema):\n"
        "  --fitness NAME --backend rtl|behavioral|gates --pop N --gens N\n"
        "  --xover T --mut T --seed S --words W --islands N --topology ring|star\n"
        "  --interval G --count N --policy worst|random --mig-seed S\n"
        "  --supervise --deadline-ms N\n");
}

bool parse_u64(const char* s, std::uint64_t& out) {
    try {
        out = std::stoull(s, nullptr, 0);
        return true;
    } catch (...) {
        return false;
    }
}

void print_frame(const Frame& f) { std::printf("%s\n", service::to_line(f).c_str()); }

void print_event(const trace::TraceEvent& e) {
    std::printf("%s\n", trace::to_json_line(e).c_str());
    std::fflush(stdout);
}

/// Field names the submit verb forwards verbatim (value parsed as number) or
/// as a string. The daemon owns validation; gaipctl only shapes the frame.
struct SubmitField {
    const char* flag;
    const char* key;
    bool numeric;
};
constexpr SubmitField kSubmitFields[] = {
    {"--fitness", "fitness", false}, {"--backend", "backend", false},
    {"--pop", "pop", true},          {"--gens", "gens", true},
    {"--xover", "xover", true},      {"--mut", "mut", true},
    {"--seed", "seed", true},        {"--words", "words", true},
    {"--islands", "islands", true},  {"--topology", "topology", false},
    {"--interval", "interval", true},{"--count", "count", true},
    {"--policy", "policy", false},   {"--mig-seed", "mig_seed", true},
    {"--deadline-ms", "deadline_ms", true},
};

/// Shape the submit frame from CLI flags (daemon owns validation of the
/// values; unknown flags and non-numbers are usage errors here, caught
/// BEFORE connecting). Returns 0 and fills `req`/`follow`, or exit code 2.
int build_submit_frame(const std::vector<std::string>& args, Frame& req, bool& follow) {
    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string& a = args[i];
        if (a == "--follow") {
            follow = true;
            continue;
        }
        if (a == "--supervise") {
            req.add("supervise", std::uint64_t{1});
            continue;
        }
        const SubmitField* field = nullptr;
        for (const auto& f : kSubmitFields)
            if (a == f.flag) field = &f;
        if (field == nullptr) {
            std::fprintf(stderr, "gaipctl: unknown option '%s'\n", a.c_str());
            return 2;
        }
        if (i + 1 >= args.size()) {
            std::fprintf(stderr, "gaipctl: %s needs a value\n", a.c_str());
            return 2;
        }
        const std::string& val = args[++i];
        if (field->numeric) {
            std::uint64_t v = 0;
            if (!parse_u64(val.c_str(), v)) {
                std::fprintf(stderr, "gaipctl: %s wants a number, got '%s'\n", a.c_str(),
                             val.c_str());
                return 2;
            }
            req.add(field->key, v);
        } else {
            req.add(field->key, val);
        }
    }
    return 0;
}

int run(int argc, char** argv) {
    std::string socket_path = "gaipd.sock";
    service::RetryPolicy policy;
    policy.attempts = 3;  // keep a dead-daemon diagnosis fast (~150 ms)
    int i = 1;
    for (; i < argc; ++i) {
        const std::string a = argv[i];
        auto need_value = [&]() -> const char* {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "gaipctl: %s needs a value\n", a.c_str());
                return nullptr;
            }
            return argv[++i];
        };
        std::uint64_t v = 0;
        if (a == "--help" || a == "-h") {
            usage();
            return 0;
        } else if (a == "-s" || a == "--socket") {
            const char* s = need_value();
            if (s == nullptr) return 2;
            socket_path = s;
        } else if (a == "--retries") {
            const char* s = need_value();
            if (s == nullptr || !parse_u64(s, v) || v == 0) {
                std::fprintf(stderr, "gaipctl: --retries wants a number >= 1\n");
                return 2;
            }
            policy.attempts = static_cast<unsigned>(v);
        } else if (a == "--backoff-ms") {
            const char* s = need_value();
            if (s == nullptr || !parse_u64(s, v)) {
                std::fprintf(stderr, "gaipctl: --backoff-ms wants a number\n");
                return 2;
            }
            policy.base_ms = static_cast<unsigned>(v);
        } else if (a == "--timeout-ms") {
            const char* s = need_value();
            if (s == nullptr || !parse_u64(s, v)) {
                std::fprintf(stderr, "gaipctl: --timeout-ms wants a number\n");
                return 2;
            }
            policy.op_deadline_ms = v;
        } else {
            break;
        }
    }
    if (i >= argc) {
        usage();
        return 2;
    }
    const std::string verb = argv[i++];
    std::vector<std::string> args(argv + i, argv + argc);

    auto need_id = [&](std::uint64_t& id) {
        if (args.size() != 1 || !parse_u64(args[0].c_str(), id)) {
            std::fprintf(stderr, "gaipctl: %s wants one job id\n", verb.c_str());
            return false;
        }
        return true;
    };

    // Validate everything local (verb, ids, submit flags) BEFORE touching
    // the socket, so usage errors exit 2 even when no daemon is running.
    const bool known = verb == "ping" || verb == "submit" || verb == "status" ||
                       verb == "list" || verb == "cancel" || verb == "stream" ||
                       verb == "stats" || verb == "shutdown";
    if (!known) {
        std::fprintf(stderr, "gaipctl: unknown verb '%s'\n", verb.c_str());
        usage();
        return 2;
    }
    Frame submit_req(service::verb::kSubmit);
    bool follow = false;
    bool drain = false;
    double wait_s = -1;
    std::uint64_t id = 0;
    if (verb == "submit") {
        const int rc = build_submit_frame(args, submit_req, follow);
        if (rc != 0) return rc;
    } else if (verb == "status" || verb == "cancel" || verb == "stream") {
        if (!need_id(id)) return 2;
    } else if (verb == "ping" && args.size() == 2 && args[0] == "--wait") {
        try {
            wait_s = std::stod(args[1]);
        } catch (...) {
            wait_s = -1;
        }
        if (wait_s < 0) {
            std::fprintf(stderr, "gaipctl: ping --wait wants a number of seconds\n");
            return 2;
        }
    } else if (verb == "shutdown" && args.size() == 1 && args[0] == "--drain") {
        drain = true;
    } else if (!args.empty()) {
        std::fprintf(stderr, "gaipctl: bad arguments for '%s'\n", verb.c_str());
        return 2;
    }

    // Readiness probe and resilient stream manage their own connections
    // (they may have to dial more than once).
    if (verb == "ping" && wait_s >= 0) {
        if (service::ping_wait(socket_path, wait_s, policy)) {
            std::printf("pong\n");
            return 0;
        }
        std::fprintf(stderr, "gaipctl: daemon did not answer within %.3f s\n", wait_s);
        return 4;
    }
    if (verb == "stream") {
        const Frame end = service::stream_with_resume(socket_path, id, policy, print_event);
        print_frame(end);
        return end.str("state") == "done" ? 0 : 1;
    }

    service::Client c = service::Client::dial(socket_path, policy);
    if (verb == "ping") {
        c.ping();
        std::printf("pong\n");
        return 0;
    } else if (verb == "submit") {
        const Frame ack = c.rpc(submit_req);
        print_frame(ack);
        if (!follow) return 0;
        const Frame end =
            service::stream_with_resume(socket_path, ack.u64("id"), policy, print_event);
        print_frame(end);
        return end.str("state") == "done" ? 0 : 1;
    } else if (verb == "status") {
        print_frame(c.status(id));
        return 0;
    } else if (verb == "list") {
        c.send(Frame(service::verb::kList));
        for (;;) {
            const Frame f = c.read_frame();
            print_frame(f);
            if (f.verb == service::verb::kList) return f.ok() ? 0 : 1;
        }
    } else if (verb == "cancel") {
        switch (c.cancel(id)) {
            case service::CancelOutcome::kCancelled: std::printf("cancelled\n"); return 0;
            case service::CancelOutcome::kTooLate: std::printf("too late\n"); return 1;
            case service::CancelOutcome::kNotFound:
                std::fprintf(stderr, "gaipctl: no such job %llu\n",
                             static_cast<unsigned long long>(id));
                return 1;
        }
        return 1;
    } else if (verb == "stats") {
        print_frame(c.stats());
        return 0;
    } else if (verb == "shutdown") {
        Frame req(service::verb::kShutdown);
        if (drain) req.add("drain", std::uint64_t{1});
        c.rpc(req);
        std::printf(drain ? "draining\n" : "ok\n");
        return 0;
    }
    return 2;  // unreachable: verbs validated above
}

}  // namespace

int main(int argc, char** argv) {
    try {
        return run(argc, argv);
    } catch (const service::TimeoutError& e) {
        std::fprintf(stderr, "gaipctl: %s\n", e.what());
        return 6;
    } catch (const service::ConnectError& e) {
        std::fprintf(stderr, "gaipctl: %s\n", e.what());
        return 4;
    } catch (const service::MalformedResponse& e) {
        std::fprintf(stderr, "gaipctl: %s\n", e.what());
        return 5;
    } catch (const service::RemoteError& e) {
        std::fprintf(stderr, "gaipctl: %s: %s\n", e.code().c_str(), e.what());
        return 1;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "gaipctl: %s\n", e.what());
        return 1;
    }
}
