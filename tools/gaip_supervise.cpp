// gaip-supervise — run a GA job under the mission supervisor
// (src/supervisor/): cycle-budget watchdog, retry/backoff ladder, in-place
// restart, PRESET degradation, optional N-modular redundancy, and
// generation checkpoints with rollback.
//
//   gaip-supervise run --fitness mBF6_2 --pop 32 --gens 64
//   gaip-supervise run --flip state:2:200 --retries 1 --fallback 1 -o sup.jsonl
//   gaip-supervise run --nmr 3 --flip eff_pop:6:50 --checkpoint-every 8
//
// `--flip REG:BIT:CYC` plants one SEU into replica 0's primary attempt (at
// the first scan-safe cycle >= CYC, the SEU injector's convention) so the
// recovery ladder can be watched end to end; `-o` streams every supervisor
// decision (watchdog_trip / sup_* events) as JSONL for gaip-trace.
//
// Exit status: 0 = ok, 3 = ok-degraded (PRESET fallback delivered),
//              1 = aborted (structured), 2 = usage or internal error.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/ga_core.hpp"
#include "fault/fault_model.hpp"
#include "fitness/functions.hpp"
#include "service/client.hpp"
#include "supervisor/supervisor.hpp"
#include "system/ga_system.hpp"
#include "trace/jsonl.hpp"

namespace {

using namespace gaip;

const std::map<std::string, fitness::FitnessId>& fitness_by_name() {
    static const std::map<std::string, fitness::FitnessId> m = {
        {"BF6", fitness::FitnessId::kBf6},
        {"F2", fitness::FitnessId::kF2},
        {"F3", fitness::FitnessId::kF3},
        {"mBF6_2", fitness::FitnessId::kMBf6_2},
        {"mBF7_2", fitness::FitnessId::kMBf7_2},
        {"mShubert2D", fitness::FitnessId::kMShubert2D},
        {"OneMax", fitness::FitnessId::kOneMax},
        {"RoyalRoad", fitness::FitnessId::kRoyalRoad},
    };
    return m;
}

void usage() {
    std::printf(
        "usage: gaip-supervise run [options]\n"
        "\n"
        "  job:\n"
        "    --fitness NAME       BF6 F2 F3 mBF6_2 mBF7_2 mShubert2D OneMax RoyalRoad\n"
        "    --pop N --gens N     population / generations (defaults 32/32)\n"
        "    --xover T --mut T    crossover / mutation thresholds (0..15)\n"
        "    --seed S             RNG seed (decimal or 0x hex)\n"
        "    --backend B          rtl | behavioral | lanes (default rtl)\n"
        "\n"
        "  supervision:\n"
        "    --watchdog-factor N  watchdog = N x expected cycles (default 4)\n"
        "    --expected-cycles N  override the formula cycle estimate\n"
        "    --retries N          backoff retries after the primary (default 2)\n"
        "    --backoff F          budget growth per retry (default 2.0)\n"
        "    --reseed             derive a fresh seed per from-scratch retry\n"
        "    --no-restart         skip the in-place request_restart() rung\n"
        "    --fallback M         PRESET fallback mode 1..3, 0 = off (default 1)\n"
        "    --checkpoint-every N snapshot every N generations (default 0 = off)\n"
        "    --nmr N              N-modular redundant replicas (default 1)\n"
        "    --seeds S1,S2,...    per-replica seeds (nmr entries)\n"
        "\n"
        "  fault demo / output:\n"
        "    --flip REG:BIT:CYC   plant an SEU into replica 0's primary attempt\n"
        "    --daemon SOCKET      run supervised through a gaipd daemon (thin client)\n"
        "    -o PATH              stream supervisor decisions as JSONL\n"
        "\n"
        "exit status: 0 = ok, 3 = ok-degraded, 1 = aborted, 2 = error\n"
        "             with --daemon also: 4 = cannot connect, 5 = malformed response\n");
}

bool parse_u64(const char* s, std::uint64_t& out) {
    try {
        std::size_t used = 0;
        out = std::stoull(s, &used, 0);
        return used == std::strlen(s) && used > 0;
    } catch (...) {
        return false;
    }
}

std::vector<std::string> split_csv(const std::string& s) {
    std::vector<std::string> out;
    std::size_t pos = 0;
    while (pos <= s.size()) {
        const std::size_t comma = s.find(',', pos);
        const std::string item =
            s.substr(pos, comma == std::string::npos ? std::string::npos : comma - pos);
        if (!item.empty()) out.push_back(item);
        if (comma == std::string::npos) break;
        pos = comma + 1;
    }
    return out;
}

bool validate_writable(const std::string& path, const char* what) {
    std::ofstream probe(path, std::ios::app);
    if (!probe) {
        std::fprintf(stderr, "gaip-supervise: cannot open %s '%s' for writing\n", what,
                     path.c_str());
        return false;
    }
    return true;
}

/// Thin-client mode: submit the job with supervise=1 and let the daemon's
/// MissionSupervisor run it under the daemon's supervision policy; sup_*
/// events stream back into -o. --flip/--nmr/--seeds are local-only and
/// rejected by the caller.
int run_via_daemon(const supervisor::SupervisorConfig& cfg, const std::string& socket,
                   const std::string& out_path) {
    try {
        service::JobSpec spec;
        spec.fn = cfg.fn;
        spec.params = core::resolve_parameters(0, cfg.params);
        spec.supervise = true;
        switch (cfg.backend) {
            case supervisor::BackendKind::kRtl: spec.backend = service::JobBackend::kRtl; break;
            case supervisor::BackendKind::kBehavioral:
                spec.backend = service::JobBackend::kBehavioral;
                break;
            case supervisor::BackendKind::kGateLane:
                spec.backend = service::JobBackend::kGates;
                break;
        }
        std::unique_ptr<trace::JsonlSink> sink;
        if (!out_path.empty()) {
            if (!validate_writable(out_path, "output file")) return 2;
            sink = std::make_unique<trace::JsonlSink>(out_path);
        }
        service::RetryPolicy policy;
        policy.attempts = 3;  // backoff dial keeps a dead daemon fast to diagnose
        service::Client client = service::Client::dial(socket, policy);
        const service::Frame res = client.run_job(spec, [&](const trace::TraceEvent& e) {
            if (sink) sink->on_event(e);
        });
        if (sink) sink->flush();
        const std::string status = res.str("status", "ok");
        std::printf("status=%s best=%llu cand=%llu gens=%llu rollbacks=%llu retries=%llu"
                    " [daemon job %llu]\n",
                    status.c_str(), static_cast<unsigned long long>(res.u64("best_fitness")),
                    static_cast<unsigned long long>(res.u64("best_candidate")),
                    static_cast<unsigned long long>(res.u64("generations")),
                    static_cast<unsigned long long>(res.u64("rollbacks")),
                    static_cast<unsigned long long>(res.u64("retries")),
                    static_cast<unsigned long long>(res.u64("id")));
        return status == "ok-degraded" ? 3 : 0;
    } catch (const service::ConnectError& e) {
        std::fprintf(stderr, "gaip-supervise: %s\n", e.what());
        return 4;
    } catch (const service::MalformedResponse& e) {
        std::fprintf(stderr, "gaip-supervise: %s\n", e.what());
        return 5;
    } catch (const service::RemoteError& e) {
        // An aborted supervised job surfaces as a failed job (exit 1, same
        // as a local abort).
        std::fprintf(stderr, "gaip-supervise: %s\n", e.what());
        return 1;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "gaip-supervise: %s\n", e.what());
        return 2;
    }
}

}  // namespace

int main(int argc, char** argv) {
    if (argc < 2) {
        usage();
        return 2;
    }
    const std::string cmd = argv[1];
    if (cmd == "--help" || cmd == "-h" || cmd == "help") {
        usage();
        return 0;
    }
    if (cmd != "run") {
        std::fprintf(stderr, "gaip-supervise: unknown command '%s'\n", cmd.c_str());
        usage();
        return 2;
    }

    try {
        auto need_value = [&](int& i) -> const char* {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "gaip-supervise: %s needs a value\n", argv[i]);
                return nullptr;
            }
            return argv[++i];
        };
        auto need_u64 = [&](int& i, std::uint64_t& v) -> bool {
            const char* flag = argv[i];
            const char* s = need_value(i);
            if (s == nullptr) return false;
            if (!parse_u64(s, v)) {
                std::fprintf(stderr, "gaip-supervise: %s wants a number, got '%s'\n", flag, s);
                return false;
            }
            return true;
        };

        supervisor::SupervisorConfig cfg;
        cfg.params = {.pop_size = 32, .n_gens = 32, .xover_threshold = 10,
                      .mut_threshold = 1, .seed = 0x2961};
        std::optional<fault::FaultSite> flip;
        std::string out_path;
        std::string daemon_socket;

        for (int i = 2; i < argc; ++i) {
            const std::string a = argv[i];
            std::uint64_t v = 0;
            if (a == "--fitness") {
                const char* s = need_value(i);
                if (s == nullptr) return 2;
                const auto it = fitness_by_name().find(s);
                if (it == fitness_by_name().end()) {
                    std::fprintf(stderr, "gaip-supervise: unknown fitness '%s'\n", s);
                    return 2;
                }
                cfg.fn = it->second;
            } else if (a == "--pop") {
                if (!need_u64(i, v)) return 2;
                cfg.params.pop_size = core::clamp_pop_size(static_cast<std::uint32_t>(v));
            } else if (a == "--gens") {
                if (!need_u64(i, v)) return 2;
                cfg.params.n_gens = static_cast<std::uint32_t>(v);
            } else if (a == "--xover") {
                if (!need_u64(i, v)) return 2;
                cfg.params.xover_threshold = static_cast<std::uint8_t>(v & 0xF);
            } else if (a == "--mut") {
                if (!need_u64(i, v)) return 2;
                cfg.params.mut_threshold = static_cast<std::uint8_t>(v & 0xF);
            } else if (a == "--seed") {
                if (!need_u64(i, v)) return 2;
                cfg.params.seed = static_cast<std::uint16_t>(v);
            } else if (a == "--backend") {
                const char* s = need_value(i);
                if (s == nullptr) return 2;
                const std::string b = s;
                if (b == "rtl") {
                    cfg.backend = supervisor::BackendKind::kRtl;
                } else if (b == "behavioral") {
                    cfg.backend = supervisor::BackendKind::kBehavioral;
                } else if (b == "lanes") {
                    cfg.backend = supervisor::BackendKind::kGateLane;
                } else {
                    std::fprintf(stderr, "gaip-supervise: unknown backend '%s'\n", s);
                    return 2;
                }
            } else if (a == "--watchdog-factor") {
                if (!need_u64(i, v)) return 2;
                cfg.watchdog_factor = static_cast<unsigned>(v);
            } else if (a == "--expected-cycles") {
                if (!need_u64(i, v)) return 2;
                cfg.expected_cycles = v;
            } else if (a == "--retries") {
                if (!need_u64(i, v)) return 2;
                cfg.ladder.max_retries = static_cast<unsigned>(v);
            } else if (a == "--backoff") {
                const char* s = need_value(i);
                if (s == nullptr) return 2;
                try {
                    cfg.ladder.backoff_factor = std::stod(s);
                } catch (...) {
                    std::fprintf(stderr, "gaip-supervise: --backoff wants a number, got '%s'\n",
                                 s);
                    return 2;
                }
            } else if (a == "--reseed") {
                cfg.ladder.reseed_on_retry = true;
            } else if (a == "--no-restart") {
                cfg.ladder.restart_recovery = false;
            } else if (a == "--fallback") {
                if (!need_u64(i, v)) return 2;
                if (v > 3) {
                    std::fprintf(stderr, "gaip-supervise: --fallback wants a mode 0..3\n");
                    return 2;
                }
                cfg.ladder.fallback_preset = static_cast<std::uint8_t>(v);
            } else if (a == "--checkpoint-every") {
                if (!need_u64(i, v)) return 2;
                cfg.ladder.checkpoint_every = static_cast<std::uint32_t>(v);
            } else if (a == "--nmr") {
                if (!need_u64(i, v)) return 2;
                cfg.nmr = static_cast<unsigned>(v);
            } else if (a == "--seeds") {
                const char* s = need_value(i);
                if (s == nullptr) return 2;
                for (const std::string& item : split_csv(s)) {
                    std::uint64_t sv = 0;
                    if (!parse_u64(item.c_str(), sv)) {
                        std::fprintf(stderr, "gaip-supervise: bad seed '%s' in --seeds\n",
                                     item.c_str());
                        return 2;
                    }
                    cfg.replica_seeds.push_back(static_cast<std::uint16_t>(sv));
                }
            } else if (a == "--flip") {
                const char* s = need_value(i);
                if (s == nullptr) return 2;
                const std::string spec = s;
                const std::size_t c1 = spec.find(':');
                const std::size_t c2 = spec.find(':', c1 + 1);
                std::uint64_t bit = 0, cyc = 0;
                if (c1 == std::string::npos || c2 == std::string::npos ||
                    !parse_u64(spec.substr(c1 + 1, c2 - c1 - 1).c_str(), bit) ||
                    !parse_u64(spec.substr(c2 + 1).c_str(), cyc)) {
                    std::fprintf(stderr, "gaip-supervise: --flip wants REG:BIT:CYCLE\n");
                    return 2;
                }
                flip = fault::FaultSite{spec.substr(0, c1), static_cast<unsigned>(bit), cyc};
            } else if (a == "--daemon") {
                const char* s = need_value(i);
                if (s == nullptr) return 2;
                daemon_socket = s;
            } else if (a == "-o" || a == "--out") {
                const char* s = need_value(i);
                if (s == nullptr) return 2;
                out_path = s;
            } else {
                std::fprintf(stderr, "gaip-supervise: unknown option '%s'\n", a.c_str());
                return 2;
            }
        }

        if (flip.has_value() && cfg.backend != supervisor::BackendKind::kRtl) {
            std::fprintf(stderr, "gaip-supervise: --flip requires the rtl backend\n");
            return 2;
        }
        if (!daemon_socket.empty()) {
            if (flip.has_value() || cfg.nmr != 1 || !cfg.replica_seeds.empty()) {
                std::fprintf(stderr,
                             "gaip-supervise: --daemon does not support "
                             "--flip/--nmr/--seeds\n");
                return 2;
            }
            return run_via_daemon(cfg, daemon_socket, out_path);
        }
        std::unique_ptr<trace::JsonlSink> sink;
        if (!out_path.empty()) {
            if (!validate_writable(out_path, "output file")) return 2;
            sink = std::make_unique<trace::JsonlSink>(out_path);
            cfg.sink = sink.get();
        }

        // SEU demo: one poke-backend flip into replica 0's primary attempt,
        // at the first scan-safe cycle >= the requested one (the SEU
        // injector's convention), so the ladder has something to recover.
        bool injected = false;
        if (flip.has_value()) {
            const fault::FaultSite site = *flip;
            cfg.hook = [&injected, site](system::GaSystem& sys,
                                         const supervisor::AttemptInfo& info,
                                         std::uint64_t cycle) {
                if (injected || info.in_init || info.replica != 0 || info.attempt != 0) return;
                if (cycle >= site.cycle && fault::scan_safe_state(sys.core().state())) {
                    rtl::ScanChain& chain = sys.core().scan_chain();
                    chain.flip(chain.position_of(site.reg, site.bit));
                    sys.core().input_changed();
                    injected = true;
                }
            };
        }

        supervisor::MissionSupervisor sup(cfg);
        const supervisor::SupervisorReport rep = sup.run();

        std::printf("status=%s rung=%s best=%u cand=%u gens=%u cycles=%llu\n",
                    supervisor::status_name(rep.status), supervisor::rung_name(rep.final_rung),
                    rep.best_fitness, rep.best_candidate, rep.generations,
                    static_cast<unsigned long long>(rep.total_cycles));
        std::printf("trips=%u retries=%u restarts=%u rollbacks=%u checkpoints=%u fallbacks=%u\n",
                    rep.watchdog_trips, rep.retries, rep.restarts, rep.rollbacks,
                    rep.checkpoints, rep.fallbacks);
        if (rep.voted)
            std::printf("nmr: agree=%u/%u replaced=%u\n", rep.vote_agree, cfg.nmr,
                        rep.replicas_replaced);
        for (const supervisor::AttemptRecord& at : rep.attempts)
            std::printf("  attempt r%u#%u %s/%s: %s%s\n", at.replica, at.attempt,
                        supervisor::rung_name(at.rung),
                        supervisor::backend_kind_name(at.backend),
                        supervisor::attempt_outcome_name(at.outcome),
                        at.resumed ? (" (resumed gen " + std::to_string(at.resumed_gen) + ")")
                                         .c_str()
                                   : "");
        if (rep.status == supervisor::Status::kAborted)
            std::printf("abort: %s\n", rep.abort_reason.c_str());
        if (sink) sink->flush();

        switch (rep.status) {
            case supervisor::Status::kOk: return 0;
            case supervisor::Status::kOkDegraded: return 3;
            case supervisor::Status::kAborted: return 1;
        }
        return 2;
    } catch (const std::exception& ex) {
        std::fprintf(stderr, "gaip-supervise: %s\n", ex.what());
        return 2;
    }
}
